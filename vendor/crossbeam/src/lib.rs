//! Offline shim for the slice of `crossbeam` 0.8 the workspace uses:
//! `crossbeam::thread::scope` + `Scope::spawn`, implemented over
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantics match upstream for the success path. On a child panic, std's
//! scope resumes the panic in the parent instead of returning `Err`, so
//! callers' `.expect("worker thread panicked")` still terminates with the
//! panic payload — equivalent for every consumer in this workspace.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// A scope handle: spawn borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam style), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow local
    /// state; joins all of them before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &x) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
