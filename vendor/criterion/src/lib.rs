//! Offline shim of the Criterion benchmarking API subset the workspace
//! uses: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated to a target batch
//! duration, then timed over `sample_size` batches; the report prints the
//! median, minimum, and maximum ns/iteration. No statistics beyond that —
//! the goal is a dependency-free `cargo bench` that yields stable
//! before/after numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs the timed closure.
pub struct Bencher {
    iters_per_batch: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs for >= 5 ms.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(5) || n >= 1 << 24 {
                // Aim each sample at ~10 ms.
                let per_iter = took.as_nanos().max(1) / u128::from(n);
                self.iters_per_batch = (10_000_000 / per_iter.max(1)).clamp(1, 1 << 24) as u64;
                break;
            }
            n = n.saturating_mul(4);
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report_line(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".into();
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_batch as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        format!("time: [{} {} {}]", fmt_ns(lo), fmt_ns(median), fmt_ns(hi))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_batch: 1,
            samples: Vec::with_capacity(self.sample_size),
            sample_count: self.sample_size,
        };
        f(&mut b);
        println!("{}/{}  {}", self.name, id, b.report_line());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| black_box(1u64 + 1))
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
