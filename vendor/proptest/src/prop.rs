//! The `prop::` namespace: collection and bool strategies.

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`].
    pub trait IntoSizeBounds {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeBounds for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeBounds for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeBounds for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;
}

#[cfg(test)]
mod tests {
    use super::super::strategy::Strategy;
    use super::super::test_runner::TestRng;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = super::collection::vec(0u32..5, 2..6);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng).unwrap();
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = super::collection::vec(0u32..5, 3usize);
        assert_eq!(exact.gen_value(&mut rng).unwrap().len(), 3);
        let incl = super::collection::vec(0u32..5, 1..=2);
        let n = incl.gen_value(&mut rng).unwrap().len();
        assert!((1..=2).contains(&n));
    }

    #[test]
    fn bool_any_hits_both() {
        let mut rng = TestRng::seed_from_u64(4);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[usize::from(super::bool::ANY.gen_value(&mut rng).unwrap())] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
