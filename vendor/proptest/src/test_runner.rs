//! The case runner: deterministic RNG, config, and pass/reject/fail
//! bookkeeping.

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    pub fn seed_from_u64(mut state: u64) -> Self {
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n >= 1` (Lemire's method).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n >= 1);
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// How many cases each property runs, mirroring upstream's config struct.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on strategy/assumption rejections across the whole test.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was skipped (filter or `prop_assume!`); another is drawn.
    Reject(String),
    /// The property was falsified.
    Fail(String),
}

impl TestCaseError {
    /// A rejection.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        Self::Reject(reason.into())
    }

    /// A failure.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        Self::Fail(reason.into())
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure or when the rejection budget is exhausted.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or_else(|_| fnv1a(name.as_bytes())),
        Err(_) => fnv1a(name.as_bytes()),
    };
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejections \
                         ({rejected} rejects, {passed} passes, seed {seed})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` falsified on case {passed} \
                     (seed {seed}, no shrinking): {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
        }
    }

    #[test]
    fn runner_counts_passes() {
        let mut calls = 0;
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn runner_panics_on_failure() {
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejections")]
    fn runner_panics_on_reject_storm() {
        let cfg = ProptestConfig {
            cases: 1,
            max_global_rejects: 10,
        };
        run_cases(&cfg, "t", |_| Err(TestCaseError::reject("always")));
    }
}
