//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary_value(rng))
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = any::<u64>();
        let a = s.gen_value(&mut rng).unwrap();
        let b = s.gen_value(&mut rng).unwrap();
        assert_ne!(a, b);
        let _: bool = any::<bool>().gen_value(&mut rng).unwrap();
    }
}
