//! Offline shim of the `proptest` 1.x API subset the workspace uses.
//!
//! Provides [`strategy::Strategy`] with the `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_filter_map` combinators, range and tuple
//! strategies, [`strategy::Just`], `prop::collection::vec`,
//! `prop::bool::ANY`, `any::<T>()`, `ProptestConfig`, and the `proptest!`
//! / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name, so failures reproduce on
//! every run) and failing inputs are **not shrunk** — the failure message
//! reports the case number instead of a minimal counterexample.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod prop;
pub mod strategy;
pub mod test_runner;

/// One-line imports for tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in prop::collection::vec(0u64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let __strategy = ($($strat,)+);
                let __value =
                    match $crate::strategy::Strategy::gen_value(&__strategy, __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::reject(
                                    "strategy rejection",
                                ),
                            )
                        }
                    };
                let ($($pat,)+) = __value;
                (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
