//! The [`Strategy`] trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// `gen_value` returns `None` when a filter rejected the draw; the runner
/// (or an enclosing combinator) retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values satisfying `pred` (retrying locally).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }

    /// Maps values, dropping those mapped to `None` (retrying locally).
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            base: self,
            whence,
            f,
        }
    }
}

/// How many times filtering combinators retry before bubbling a rejection.
const LOCAL_RETRIES: u32 = 64;

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> Option<U> {
        self.base.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let inner = (self.f)(self.base.gen_value(rng)?);
        inner.gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.base.gen_value(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> Option<U> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.base.gen_value(rng) {
                if let Some(u) = (self.f)(v) {
                    return Some(u);
                }
            }
        }
        None
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(width) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                Some((lo as i128 + rng.below(width) as i128) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.gen_value(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (3u32..9).gen_value(&mut r).unwrap();
            assert!((3..9).contains(&x));
            let y = (1usize..=4).gen_value(&mut r).unwrap();
            assert!((1..=4).contains(&y));
            let z = (-5i32..5).gen_value(&mut r).unwrap();
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|x| x * 2)
            .prop_filter("even cap", |&x| x < 10)
            .prop_flat_map(|x| (Just(x), 0u32..=x));
        for _ in 0..200 {
            let (x, y) = s.gen_value(&mut r).unwrap();
            assert!(x < 10 && x % 2 == 0 && y <= x);
        }
    }

    #[test]
    fn filter_map_and_tuples() {
        let mut r = rng();
        let s = ((0u32..100), (0u32..100))
            .prop_filter_map("sum cap", |(a, b)| (a + b < 50).then_some(a + b));
        for _ in 0..100 {
            assert!(s.gen_value(&mut r).unwrap() < 50);
        }
    }

    #[test]
    fn impossible_filter_rejects() {
        let mut r = rng();
        let s = (0u32..10).prop_filter("never", |_| false);
        assert!(s.gen_value(&mut r).is_none());
    }
}
