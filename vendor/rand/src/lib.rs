//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The workspace is deliberately dependency-free; this vendored shim
//! provides exactly the surface the repo uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`rngs::StdRng`], and [`seq::SliceRandom`] — backed by
//! xoshiro256++ seeded through SplitMix64. It is **not** the upstream
//! crate: streams differ from rand 0.8's ChaCha-based `StdRng`, but every
//! consumer in this workspace only relies on determinism per seed, which
//! this shim guarantees.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this shim).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`Self::fill_bytes`] (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64
    /// (matching upstream rand's construction in spirit, not bit-for-bit).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lemire's nearly-divisionless uniform integer in `[0, n)`; `n >= 1`.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, width) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, width) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let width = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, width) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha-based `StdRng` — streams differ — but
    /// deterministic per seed, fast, and statistically strong.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exports the raw xoshiro256++ state, for checkpointing.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously exported [`Self::state`].
        ///
        /// Applies the same all-zero nudge as [`SeedableRng::from_seed`],
        /// so any input yields a usable generator; states produced by
        /// `state()` are never all-zero and round-trip exactly.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                let mut seed = [0u8; 32];
                for (chunk, w) in seed.chunks_mut(8).zip(s) {
                    chunk.copy_from_slice(&w.to_le_bytes());
                }
                return <Self as SeedableRng>::from_seed(seed);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64();
                for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: u64 = dynrng.gen();
        let y = dynrng.gen_range(0u32..10);
        assert!(y < 10);
        let _ = x;
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        assert!([1u8].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_round_trip_continues_identically() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..7 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn from_state_all_zero_is_nudged() {
        let a = StdRng::from_state([0, 0, 0, 0]).state();
        assert_ne!(a, [0, 0, 0, 0], "all-zero state is a fixed point");
        let b = StdRng::from_seed([0u8; 32]).state();
        assert_eq!(a, b);
    }

    #[test]
    fn fill_bytes_fills() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
