#!/usr/bin/env bash
# Kill-mid-run chaos gate for checkpoint/resume and the serve daemon.
# Usage: scripts/chaos.sh
#
# Three ways to die, one invariant: a run that is killed at any moment
# and then rerun with the same flags must produce results byte-identical
# to a run that was never interrupted. Plus the serving scenario: a
# server kill -9'd under live load and restarted on the same port must
# be invisible to a retrying client (zero failures, zero malformed
# responses), and a SIGTERM drain must exit 0 with conserving counters.
#
#   1. kill -9 at a random point after the first snapshot lands (the
#      signal can even hit mid-snapshot-write — the two-generation store
#      makes that recoverable too);
#   2. a deterministic torn snapshot write (OBLIVION_CKPT_CRASH tears the
#      slot file in half and aborts), so the fallback path is exercised
#      on every CI run, not only when the race above happens to hit it;
#   3. a single flipped byte in the newest snapshot, which must be
#      rejected by its CRC and recovered via the previous generation.
#
# "Byte-identical" means: stdout matches exactly, and the metrics files
# match after dropping wall-clock spans, the scheduling-dependent
# `runtime_` family (work-steal tallies, phase-latency histograms),
# and the ckpt_* resume-provenance fields (which honestly record that a
# resume happened and so exist only in the resumed file).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --quiet --bin oblivion
bin=target/debug/oblivion

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

base=(online --mesh 16x16 --router busch2d --rate 0.1 --steps 800 --seed 42
  --fault-links 0.05 --fault-mode transient --recovery resample --threads 2)

deterministic() { # <in.json> <out>
  grep -v '"type":"span' "$1" | grep -v '"type":"runtime_' \
    | sed -E 's/,"ckpt_[a-z_]+":("[^"]*"|[0-9]+)//g' > "$2"
}

echo "== chaos: uninterrupted reference run =="
"${bin}" "${base[@]}" --metrics-out "$tmp/ref.json" > "$tmp/ref.out"
deterministic "$tmp/ref.json" "$tmp/ref.det"

# Reruns the interrupted run in $tmp/<tag>/ckpt to completion and diffs
# stdout + deterministic metrics against the reference.
check_resume() { # <tag>
  local tag="$1"
  "${bin}" "${base[@]}" --checkpoint-dir "$tmp/$tag/ckpt" --checkpoint-every 25 \
    --metrics-out "$tmp/$tag/res.json" > "$tmp/$tag/res.out" 2> "$tmp/$tag/res.err"
  if ! grep -q "resuming from checkpoint generation" "$tmp/$tag/res.err"; then
    echo "chaos/$tag: rerun did not resume from a snapshot" >&2
    cat "$tmp/$tag/res.err" >&2
    return 1
  fi
  if ! cmp -s "$tmp/ref.out" "$tmp/$tag/res.out"; then
    echo "chaos/$tag: stdout differs from the uninterrupted run" >&2
    diff "$tmp/ref.out" "$tmp/$tag/res.out" | head >&2 || true
    return 1
  fi
  deterministic "$tmp/$tag/res.json" "$tmp/$tag/res.det"
  if ! cmp -s "$tmp/ref.det" "$tmp/$tag/res.det"; then
    echo "chaos/$tag: metrics differ from the uninterrupted run" >&2
    diff "$tmp/ref.det" "$tmp/$tag/res.det" | head >&2 || true
    return 1
  fi
  echo "chaos/$tag: resumed run is byte-identical to the reference"
}

echo "== chaos: kill -9 at a random point mid-run =="
mkdir -p "$tmp/kill9"
"${bin}" "${base[@]}" --checkpoint-dir "$tmp/kill9/ckpt" --checkpoint-every 25 \
  > /dev/null 2>&1 &
pid=$!
for _ in $(seq 1 600); do
  if [[ -e "$tmp/kill9/ckpt/snap-a.ckpt" || -e "$tmp/kill9/ckpt/snap-b.ckpt" ]]; then
    break
  fi
  if ! kill -0 "$pid" 2> /dev/null; then
    break
  fi
  sleep 0.05
done
kill -9 "$pid" 2> /dev/null || {
  echo "chaos/kill9: run finished before it could be killed; raise --steps" >&2
  exit 1
}
wait "$pid" 2> /dev/null || true
if [[ ! -e "$tmp/kill9/ckpt/snap-a.ckpt" && ! -e "$tmp/kill9/ckpt/snap-b.ckpt" ]]; then
  echo "chaos/kill9: no snapshot on disk after the kill" >&2
  exit 1
fi
check_resume kill9

echo "== chaos: torn snapshot write (crash mid-write) =="
mkdir -p "$tmp/midwrite"
if OBLIVION_CKPT_CRASH="mid-write:3" "${bin}" "${base[@]}" \
  --checkpoint-dir "$tmp/midwrite/ckpt" --checkpoint-every 25 > /dev/null 2>&1; then
  echo "chaos/midwrite: crash directive did not kill the run" >&2
  exit 1
fi
check_resume midwrite
if ! grep -q "rejected" "$tmp/midwrite/res.err"; then
  echo "chaos/midwrite: torn slot was not rejected on resume" >&2
  cat "$tmp/midwrite/res.err" >&2
  exit 1
fi

echo "== chaos: flipped byte in the newest snapshot =="
mkdir -p "$tmp/corrupt"
if "${bin}" "${base[@]}" --checkpoint-dir "$tmp/corrupt/ckpt" \
  --checkpoint-every 25 --ckpt-stop-at 120 > /dev/null 2>&1; then
  echo "chaos/corrupt: --ckpt-stop-at did not interrupt the run" >&2
  exit 1
fi
# Generations 1..4 were saved (t = 25..100); the newest, 4, sits in
# snap-a by generation parity. Flip one byte in its middle.
slot="$tmp/corrupt/ckpt/snap-a.ckpt"
size=$(stat -c %s "$slot")
off=$((size / 2))
byte=$(od -An -tu1 -j "$off" -N1 "$slot" | tr -d ' ')
flipped=$(((byte + 1) % 256))
# shellcheck disable=SC2059 — building a single escaped octal byte
printf "$(printf '\\%03o' "$flipped")" \
  | dd of="$slot" bs=1 seek="$off" conv=notrunc status=none
check_resume corrupt
if ! grep -q "rejected" "$tmp/corrupt/res.err"; then
  echo "chaos/corrupt: corrupted slot was not rejected on resume" >&2
  cat "$tmp/corrupt/res.err" >&2
  exit 1
fi
if ! grep -q "generation 3" "$tmp/corrupt/res.err"; then
  echo "chaos/corrupt: resume did not fall back to generation 3" >&2
  cat "$tmp/corrupt/res.err" >&2
  exit 1
fi

echo "== chaos: kill -9 one worker process of a --procs run =="
# The multi-process invariant: a worker process kill -9'd mid-run is
# restored from its shadow and replayed, and the run's stdout and
# deterministic metrics stay byte-identical to the (thread-engine)
# reference — the kill must be invisible in every deterministic byte.
procs_dir="$tmp/procs_kill"
mkdir -p "$procs_dir"
pbase=("${base[@]::${#base[@]}-2}") # the reference flags minus --threads 2
"${bin}" "${pbase[@]}" --procs 2 --checkpoint-dir "$procs_dir/ckpt" \
  --metrics-out "$procs_dir/run.json" \
  > "$procs_dir/run.out" 2> "$procs_dir/run.err" &
sup_pid=$!
worker_pid=""
for _ in $(seq 1 200); do
  worker_pid=$(awk '/^proc worker 1 pid /{print $5; exit}' "$procs_dir/run.err" 2> /dev/null)
  if [[ -n "$worker_pid" ]]; then
    break
  fi
  if ! kill -0 "$sup_pid" 2> /dev/null; then
    break
  fi
  sleep 0.05
done
if [[ -z "$worker_pid" ]]; then
  echo "chaos/procs: supervisor never announced a worker pid" >&2
  cat "$procs_dir/run.err" >&2
  exit 1
fi
sleep 0.3 # let the run clear a few step barriers first
kill -9 "$worker_pid" 2> /dev/null || {
  echo "chaos/procs: run finished before the worker could be killed; raise --steps" >&2
  exit 1
}
if ! wait "$sup_pid"; then
  echo "chaos/procs: supervisor did not survive the worker kill" >&2
  cat "$procs_dir/run.err" >&2
  exit 1
fi
if ! grep -q "proc worker 1 died" "$procs_dir/run.err" \
  || ! grep -q "proc worker 1 recovered" "$procs_dir/run.err"; then
  echo "chaos/procs: stderr does not record the death and recovery" >&2
  cat "$procs_dir/run.err" >&2
  exit 1
fi
if ! cmp -s "$tmp/ref.out" "$procs_dir/run.out"; then
  echo "chaos/procs: stdout differs from the uninterrupted reference" >&2
  diff "$tmp/ref.out" "$procs_dir/run.out" | head >&2 || true
  exit 1
fi
deterministic "$procs_dir/run.json" "$procs_dir/run.det"
if ! cmp -s "$tmp/ref.det" "$procs_dir/run.det"; then
  echo "chaos/procs: metrics differ from the uninterrupted reference" >&2
  diff "$tmp/ref.det" "$procs_dir/run.det" | head >&2 || true
  exit 1
fi
echo "chaos/procs: worker kill -9 recovered byte-identically"

echo "== chaos: kill -9 the serve daemon mid-load, restart, retries converge =="
# The serving invariant: a server that is kill -9'd under live load and
# restarted on the same port loses nothing the client can observe — the
# loadgen's retries (transport errors are retryable) converge with every
# request answered and ZERO malformed responses. Then a SIGTERM drain of
# the restarted server must exit 0 with a conserving final account.
serve_dir="$tmp/serve"
mkdir -p "$serve_dir"
serve_port=""
serve_pid=""
start_serve() { # <extra flags...>
  # Fresh stderr per attempt: the "listening" wait below must see THIS
  # process's announcement, not a stale one from before a kill.
  : > "$serve_dir/serve.err"
  "${bin}" serve --mesh 16x16 --router busch2d --port "$serve_port" \
    --threads 2 --queue 32 --deadline-ms 500 --drain-ms 2000 "$@" \
    >> "$serve_dir/serve.out" 2>> "$serve_dir/serve.err" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    if grep -q "serve: listening" "$serve_dir/serve.err" 2> /dev/null; then
      return 0
    fi
    if ! kill -0 "$serve_pid" 2> /dev/null; then
      return 1
    fi
    sleep 0.05
  done
  return 1
}
# Ports can collide with other suites on shared CI hosts: retry the whole
# bind with a fresh random port. (SO_REUSEADDR makes the *restart* on the
# same port safe; only the first pick can lose a race.)
for _ in $(seq 1 10); do
  serve_port=$((21000 + RANDOM % 30000))
  if start_serve --no-health; then
    break
  fi
  serve_pid=""
done
if [[ -z "$serve_pid" ]]; then
  echo "chaos/serve: could not bind a port after 10 attempts" >&2
  cat "$serve_dir/serve.err" >&2
  exit 1
fi
"${bin}" loadgen --mesh 16x16 --port "$serve_port" --requests 400 \
  --concurrency 8 --retries 40 --backoff-ms 5 --backoff-cap-ms 200 \
  --timeout-ms 2000 --seed 77 > "$serve_dir/loadgen.out" 2> "$serve_dir/loadgen.err" &
loadgen_pid=$!
sleep 0.4
kill -9 "$serve_pid" 2> /dev/null || {
  echo "chaos/serve: server died before the kill (see serve.err)" >&2
  cat "$serve_dir/serve.err" >&2
  exit 1
}
wait "$serve_pid" 2> /dev/null || true
# Restart on the SAME port while the loadgen is mid-retry.
if ! start_serve --no-health --metrics-out "$serve_dir/serve_metrics.json"; then
  echo "chaos/serve: restart on port $serve_port failed" >&2
  cat "$serve_dir/serve.err" >&2
  exit 1
fi
if ! wait "$loadgen_pid"; then
  echo "chaos/serve: loadgen failed across the kill/restart" >&2
  cat "$serve_dir/loadgen.out" "$serve_dir/loadgen.err" >&2
  exit 1
fi
if ! grep -q " failed=0 malformed=0 " "$serve_dir/loadgen.out"; then
  echo "chaos/serve: retries did not converge cleanly" >&2
  cat "$serve_dir/loadgen.out" >&2
  exit 1
fi
# Graceful drain of the restarted server: exit 0, conserving account,
# and the obs run report carries the serve_* counters.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
  echo "chaos/serve: SIGTERM drain did not exit 0" >&2
  cat "$serve_dir/serve.out" "$serve_dir/serve.err" >&2
  exit 1
fi
if ! grep -q "counters conserve: yes" "$serve_dir/serve.out"; then
  echo "chaos/serve: final account does not conserve" >&2
  cat "$serve_dir/serve.out" >&2
  exit 1
fi
if ! grep -q "serve_accepted" "$serve_dir/serve_metrics.json"; then
  echo "chaos/serve: run report is missing serve_* counters" >&2
  cat "$serve_dir/serve_metrics.json" >&2
  exit 1
fi
echo "chaos/serve: kill -9 + restart converged with zero malformed responses"

echo "== chaos: hot-retire a tenant mid-load, kill -9, restart, ADMIN ADD it back =="
# The multi-tenant invariant: RETIRE answers a tenant's lines with
# MESH_RETIRED and a restart that forgot the tenant answers UNKNOWN_MESH
# — both retryable, because an operator may ADD the mesh back at any
# moment. So a two-tenant load that survives retire → kill -9 → restart
# (tenant b missing) → hot ADMIN ADD must still converge with every
# request answered: failed=0, malformed=0, no restart of the client.
mt_dir="$tmp/serve_mt"
mkdir -p "$mt_dir"
mt_port=""
mt_health=""
mt_pid=""
start_mt() { # <mesh flags...>
  : > "$mt_dir/serve.err"
  "${bin}" serve "$@" --router busch2d --port "$mt_port" \
    --health-port "$mt_health" --threads 2 --queue 64 \
    --deadline-ms 500 --drain-ms 2000 \
    >> "$mt_dir/serve.out" 2>> "$mt_dir/serve.err" &
  mt_pid=$!
  for _ in $(seq 1 100); do
    if grep -q "serve: listening" "$mt_dir/serve.err" 2> /dev/null; then
      return 0
    fi
    if ! kill -0 "$mt_pid" 2> /dev/null; then
      return 1
    fi
    sleep 0.05
  done
  return 1
}
# One ADMIN line over the health port (admission-free, answers even at
# full overload), first response line to stdout.
admin() { # <line>
  exec 3<> "/dev/tcp/127.0.0.1/$mt_health"
  printf '%s\n' "$1" >&3
  IFS= read -r -t 5 reply <&3
  exec 3>&- 3<&-
  printf '%s\n' "$reply"
}
for _ in $(seq 1 10); do
  mt_port=$((21000 + RANDOM % 30000))
  mt_health=$((mt_port + 1))
  if start_mt --mesh 16x16:a --mesh 16x16:b; then
    break
  fi
  mt_pid=""
done
if [[ -z "$mt_pid" ]]; then
  echo "chaos/serve_mt: could not bind a port after 10 attempts" >&2
  cat "$mt_dir/serve.err" >&2
  exit 1
fi
# Paced open-loop load split across both tenants, generous retries: the
# client must ride out every disruption below without intervention.
"${bin}" loadgen --mesh 16x16 --port "$mt_port" --tenant-mix a=0.5,b=0.5 \
  --requests 600 --open-loop --rate 300 --concurrency 8 --retries 60 \
  --backoff-ms 5 --backoff-cap-ms 200 --timeout-ms 2000 --seed 78 \
  > "$mt_dir/loadgen.out" 2> "$mt_dir/loadgen.err" &
mt_loadgen_pid=$!
sleep 0.3
reply=$(admin "ADMIN RETIRE b")
if [[ "$reply" != "OK retired b" ]]; then
  echo "chaos/serve_mt: RETIRE under load answered: $reply" >&2
  exit 1
fi
sleep 0.2
kill -9 "$mt_pid" 2> /dev/null || {
  echo "chaos/serve_mt: server died before the kill (see serve.err)" >&2
  cat "$mt_dir/serve.err" >&2
  exit 1
}
wait "$mt_pid" 2> /dev/null || true
# Restart on the SAME ports knowing only tenant a: b's lines now bounce
# with UNKNOWN_MESH until the operator adds the mesh back — live.
if ! start_mt --mesh 16x16:a --metrics-out "$mt_dir/serve_metrics.json"; then
  echo "chaos/serve_mt: restart on port $mt_port failed" >&2
  cat "$mt_dir/serve.err" >&2
  exit 1
fi
reply=$(admin "ADMIN ADD b 16x16 busch2d")
if [[ "$reply" != OK\ added\ b* ]]; then
  echo "chaos/serve_mt: hot ADD answered: $reply" >&2
  exit 1
fi
if ! wait "$mt_loadgen_pid"; then
  echo "chaos/serve_mt: loadgen failed across retire/kill/restart/add" >&2
  cat "$mt_dir/loadgen.out" "$mt_dir/loadgen.err" >&2
  exit 1
fi
if ! grep -q " failed=0 malformed=0 " "$mt_dir/loadgen.out"; then
  echo "chaos/serve_mt: retries did not converge cleanly" >&2
  cat "$mt_dir/loadgen.out" >&2
  exit 1
fi
# The disruption must actually have been observed on the wire, or this
# scenario silently degrades into a plain happy-path run.
if grep -q "unknown_mesh=0 mesh_retired=0" "$mt_dir/loadgen.out"; then
  echo "chaos/serve_mt: client never saw MESH_RETIRED or UNKNOWN_MESH —" \
    "the retire/restart raced past the load; retune the sleeps" >&2
  cat "$mt_dir/loadgen.out" >&2
  exit 1
fi
kill -TERM "$mt_pid"
if ! wait "$mt_pid"; then
  echo "chaos/serve_mt: SIGTERM drain did not exit 0" >&2
  cat "$mt_dir/serve.out" "$mt_dir/serve.err" >&2
  exit 1
fi
if ! grep -q "counters conserve: yes" "$mt_dir/serve.out"; then
  echo "chaos/serve_mt: final account does not conserve" >&2
  cat "$mt_dir/serve.out" >&2
  exit 1
fi
echo "chaos/serve_mt: retire + kill -9 + hot re-add converged with zero failures"

echo "chaos: all kill/corruption scenarios recovered byte-identically"
