#!/usr/bin/env bash
# Workspace-wide CI gate: formatting, lints, docs, and the full test suite.
# Usage: scripts/ci.sh
# Used locally, by .github/workflows/ci.yml, and as the preflight of
# scripts/run_experiments.sh. Per-stage wall-clock times are echoed at
# the end so slow stages are visible in CI logs.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_names=()
stage_secs=()
retried_stages=()
timed() {
  local name="$1"
  shift
  echo "== $name =="
  local start end
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  stage_names+=("$name")
  stage_secs+=($((end - start)))
}

# Flaky-soak quarantine: the live-socket stages (serve soak, metrics
# gate, chaos gate) depend on wall-clock timing and loaded-runner
# scheduling, so a single structured retry is allowed. The retry is
# logged and counted in the stage summary — a stage that needs its
# retry is visible, not silent — and two consecutive failures still
# fail CI. Output is captured to ci_logs/<slug>.log for artifact upload.
timed_retry() {
  local name="$1"
  shift
  local slug log
  slug=$(echo "$name" | tr -cs 'a-zA-Z0-9' '-' | sed 's/^-//;s/-$//')
  mkdir -p ci_logs
  log="ci_logs/$slug.log"
  echo "== $name =="
  local start end attempts=1
  start=$(date +%s)
  if ! "$@" 2>&1 | tee "$log"; then
    attempts=2
    retried_stages+=("$name")
    echo "RETRY: stage '$name' failed; retrying once (flaky-soak quarantine," \
      "log: $log). A second consecutive failure fails CI." >&2
    if ! "$@" 2>&1 | tee -a "$log"; then
      echo "FAIL: stage '$name' failed twice consecutively (log: $log)" >&2
      return 1
    fi
  fi
  end=$(date +%s)
  local tag=""
  if [[ $attempts == 2 ]]; then
    tag=" [retried]"
  fi
  stage_names+=("$name$tag")
  stage_secs+=($((end - start)))
}

timed "cargo fmt --check" \
  cargo fmt --all --check

timed "cargo clippy (workspace, -D warnings)" \
  cargo clippy --workspace --all-targets --offline -- -D warnings

timed "cargo doc (no deps, warnings denied)" \
  env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

timed "cargo test (workspace minus serve)" \
  cargo test --workspace --exclude oblivion-serve --offline -q

# The serve crate's suites (soak, pipelining, differential) drive real
# sockets against wall-clock deadlines, so they get the quarantine
# wrapper: one logged retry, two consecutive failures still fail.
timed_retry "serve soak + pipelining tests" \
  cargo test -p oblivion-serve --offline -q

# Fault-injected runs must be byte-identical across every execution
# engine: run the same faulted online simulation at --threads 1 and 8
# and in 4 worker *processes* (--procs 4), and compare every
# deterministic metrics line (wall-clock spans and the whole
# scheduling-dependent `runtime_` family excluded).
fault_differential() {
  local tmp
  tmp=$(mktemp -d)
  local base=(online --mesh 16x16 --router busch2d --rate 0.05 --steps 200
    --seed 99 --fault-links 0.08 --fault-mode transient --recovery resample)
  for threads in 1 8; do
    cargo run --offline --quiet --bin oblivion -- "${base[@]}" \
      --threads "$threads" --metrics-out "$tmp/t$threads.json" > /dev/null
    grep -v '"type":"span' "$tmp/t$threads.json" \
      | grep -v '"type":"runtime_' > "$tmp/t$threads.det"
  done
  cargo run --offline --quiet --bin oblivion -- "${base[@]}" \
    --procs 4 --checkpoint-dir "$tmp/ckpt" --metrics-out "$tmp/p4.json" \
    > /dev/null
  grep -v '"type":"span' "$tmp/p4.json" \
    | grep -v '"type":"runtime_' > "$tmp/p4.det"
  if ! cmp -s "$tmp/t1.det" "$tmp/t8.det"; then
    echo "fault differential: metrics differ between --threads 1 and 8" >&2
    diff "$tmp/t1.det" "$tmp/t8.det" | head >&2 || true
    rm -rf "$tmp"
    return 1
  fi
  if ! cmp -s "$tmp/t1.det" "$tmp/p4.det"; then
    echo "fault differential: metrics differ between --threads 1 and --procs 4" >&2
    diff "$tmp/t1.det" "$tmp/p4.det" | head >&2 || true
    rm -rf "$tmp"
    return 1
  fi
  rm -rf "$tmp"
}

timed "fault differential (--threads 1 vs 8 vs --procs 4)" \
  fault_differential

# Live telemetry: a daemon under load must answer METRICS with a
# parseable, conserving exposition on every scrape (`oblivion top
# --check` validates each frame), and the background stats flusher's
# JSONL stream must agree with the final report on serve_accepted —
# proving the final report was *appended* after the flushed lines, not
# clobbered over them.
metrics_gate() {
  local tmp port pid up lg
  tmp=$(mktemp -d)
  cargo build --offline --quiet --bin oblivion
  local bin=target/debug/oblivion
  pid=""
  # The daemon needs port AND port+1 (health); retry with fresh random
  # ports on bind races, same as the chaos gate.
  for _ in $(seq 1 10); do
    port=$((21000 + RANDOM % 30000))
    : > "$tmp/serve.err"
    "$bin" serve --mesh 16x16 --port "$port" --threads 2 --queue 32 \
      --stats-every 40 --metrics-out "$tmp/telemetry.jsonl" \
      > "$tmp/serve.out" 2> "$tmp/serve.err" &
    pid=$!
    up=0
    for _ in $(seq 1 100); do
      if grep -q "serve: listening" "$tmp/serve.err" 2> /dev/null; then
        up=1
        break
      fi
      if ! kill -0 "$pid" 2> /dev/null; then
        break
      fi
      sleep 0.05
    done
    if [[ $up == 1 ]]; then
      break
    fi
    wait "$pid" 2> /dev/null || true
    pid=""
  done
  if [[ -z "$pid" ]]; then
    echo "metrics gate: could not start the daemon after 10 attempts" >&2
    cat "$tmp/serve.err" >&2
    rm -rf "$tmp"
    return 1
  fi
  "$bin" loadgen --mesh 16x16 --port "$port" --requests 300 \
    --concurrency 16 --seed 7 > "$tmp/loadgen.out" 2>&1 &
  lg=$!
  if ! "$bin" top --port $((port + 1)) --interval-ms 40 --iterations 5 \
    --check > "$tmp/top.out" 2> "$tmp/top.err"; then
    echo "metrics gate: oblivion top --check failed against the live daemon" >&2
    cat "$tmp/top.out" "$tmp/top.err" >&2
    kill -9 "$pid" 2> /dev/null || true
    kill -9 "$lg" 2> /dev/null || true
    rm -rf "$tmp"
    return 1
  fi
  if ! wait "$lg"; then
    echo "metrics gate: loadgen failed" >&2
    cat "$tmp/loadgen.out" >&2
    kill -9 "$pid" 2> /dev/null || true
    rm -rf "$tmp"
    return 1
  fi
  kill -TERM "$pid"
  if ! wait "$pid"; then
    echo "metrics gate: SIGTERM drain did not exit 0" >&2
    cat "$tmp/serve.out" "$tmp/serve.err" >&2
    rm -rf "$tmp"
    return 1
  fi
  local flushed reported
  flushed=$(grep '"type":"serve_stats"' "$tmp/telemetry.jsonl" | tail -1 \
    | grep -o '"serve_accepted":[0-9]*' | grep -o '[0-9]*$' || true)
  reported=$(grep '"name":"serve_accepted"' "$tmp/telemetry.jsonl" | tail -1 \
    | grep -o '"value":[0-9]*' | grep -o '[0-9]*$' || true)
  if [[ -z "$flushed" || -z "$reported" || "$flushed" != "$reported" ]]; then
    echo "metrics gate: flusher stream (accepted=${flushed:-missing}) and" \
      "final report (accepted=${reported:-missing}) disagree" >&2
    cat "$tmp/telemetry.jsonl" >&2
    rm -rf "$tmp"
    return 1
  fi
  rm -rf "$tmp"
}

timed_retry "metrics gate (METRICS scrape + top --check + flusher/report diff)" \
  metrics_gate

# Straggler resilience: a daemon with deterministic chaos injection
# (heavy-tailed stalls, slow writes, connection resets, worker pauses)
# must survive a hedged open-loop load with zero failed requests, and
# its SIGTERM drain must still exit 0 — `serve` errors on exit if the
# final request ledger does not conserve, so a clean drain proves the
# chaos events (stalls settling as completions, resets as io errors,
# abandoned hedge losers) all landed in exactly one terminal bucket.
chaos_serve_gate() {
  local tmp port pid up
  tmp=$(mktemp -d)
  cargo build --offline --quiet --bin oblivion
  local bin=target/debug/oblivion
  pid=""
  for _ in $(seq 1 10); do
    port=$((21000 + RANDOM % 30000))
    : > "$tmp/serve.err"
    "$bin" serve --mesh 16x16 --port "$port" --threads 3 --queue 32 \
      --chaos-seed 7 --chaos-stall-prob 0.2 --chaos-stall-ms 8 \
      --chaos-write-prob 0.1 --chaos-write-ms 2 \
      --chaos-reset-prob 0.15 --chaos-pause-prob 0.05 --chaos-pause-ms 2 \
      > "$tmp/serve.out" 2> "$tmp/serve.err" &
    pid=$!
    up=0
    for _ in $(seq 1 100); do
      if grep -q "serve: listening" "$tmp/serve.err" 2> /dev/null; then
        up=1
        break
      fi
      if ! kill -0 "$pid" 2> /dev/null; then
        break
      fi
      sleep 0.05
    done
    if [[ $up == 1 ]]; then
      break
    fi
    wait "$pid" 2> /dev/null || true
    pid=""
  done
  if [[ -z "$pid" ]]; then
    echo "chaos-serve gate: could not start the daemon after 10 attempts" >&2
    cat "$tmp/serve.err" >&2
    rm -rf "$tmp"
    return 1
  fi
  # Open-loop hedged load: loadgen exits nonzero if any request fails or
  # any reply is malformed, so hedging must absorb every injected stall
  # and reset within the retry budget.
  if ! "$bin" loadgen --mesh 16x16 --port "$port" --requests 200 \
    --concurrency 8 --rate 250 --open-loop --hedge-after 12 \
    --retries 8 --timeout-ms 4000 --seed 7 > "$tmp/loadgen.out" 2>&1; then
    echo "chaos-serve gate: hedged loadgen failed under injected chaos" >&2
    cat "$tmp/loadgen.out" >&2
    kill -9 "$pid" 2> /dev/null || true
    rm -rf "$tmp"
    return 1
  fi
  if ! grep -q "failed=0" "$tmp/loadgen.out"; then
    echo "chaos-serve gate: loadgen report does not show failed=0" >&2
    cat "$tmp/loadgen.out" >&2
    kill -9 "$pid" 2> /dev/null || true
    rm -rf "$tmp"
    return 1
  fi
  kill -TERM "$pid"
  if ! wait "$pid"; then
    echo "chaos-serve gate: SIGTERM drain did not exit 0 (ledger violation?)" >&2
    cat "$tmp/serve.out" "$tmp/serve.err" >&2
    rm -rf "$tmp"
    return 1
  fi
  rm -rf "$tmp"
}

timed_retry "chaos-serve gate (hedged open-loop load vs injected stalls/resets)" \
  chaos_serve_gate

# Crash consistency: kill -9 mid-run, torn snapshot writes, flipped
# bytes, and a kill -9'd worker process of a --procs run must all
# recover to byte-identical results — and the serve daemon must survive
# kill -9 + restart under live load with zero malformed responses
# (scripts/chaos.sh).
timed_retry "chaos gate (kill -9 / torn write / corruption / worker kill / serve restart)" \
  scripts/chaos.sh

# The perf-regression gate itself must be able to catch a regression
# before CI trusts it: synthesize a 25% throughput drop and a 40% p99
# inflation from the committed baselines and require both to fail (and
# a 10% wobble to pass). The real gate runs in the bench CI job, which
# has fresh release-mode results to compare.
timed "bench gate self-test (synthetic 25% regression must fail)" \
  scripts/bench_gate.sh --self-test

# The error-path crates must not grow panicking shortcuts: any new
# .unwrap()/.expect( in non-test code needs an explicit
# `// ci-allow-unwrap: why` justification on the same line.
unwrap_gate() {
  local bad=0 file
  while IFS= read -r file; do
    awk '
      /#\[cfg\(test\)\]/ { intest = 1 }
      intest { next }
      /\.unwrap\(\)|\.expect\(/ && !/ci-allow-unwrap/ {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        found = 1
      }
      END { exit found ? 1 : 0 }
    ' "$file" || bad=1
  done < <(find crates/workloads/src crates/faults/src crates/serve/src \
    crates/wire/src -name '*.rs' | sort)
  if [[ $bad -ne 0 ]]; then
    echo "unannotated unwrap()/expect( in error-path crates;" \
      "add \`// ci-allow-unwrap: <why>\` only if provably unreachable" >&2
    return 1
  fi
}

timed "unwrap/expect gate (workloads, faults, serve)" \
  unwrap_gate

echo "ci: all checks passed"
if [[ ${#retried_stages[@]} -gt 0 ]]; then
  echo "flaky-soak quarantine: ${#retried_stages[@]} stage(s) needed their retry:"
  for s in "${retried_stages[@]}"; do
    echo "  $s"
  done
fi
echo "stage timings:"
for i in "${!stage_names[@]}"; do
  printf '  %-45s %3ss\n' "${stage_names[$i]}" "${stage_secs[$i]}"
done
