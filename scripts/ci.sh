#!/usr/bin/env bash
# Workspace-wide CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
# Used locally and as the preflight of scripts/run_experiments.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --offline -q

echo "ci: all checks passed"
