#!/usr/bin/env bash
# Workspace-wide CI gate: formatting, lints, docs, and the full test suite.
# Usage: scripts/ci.sh
# Used locally, by .github/workflows/ci.yml, and as the preflight of
# scripts/run_experiments.sh. Per-stage wall-clock times are echoed at
# the end so slow stages are visible in CI logs.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_names=()
stage_secs=()
timed() {
  local name="$1"
  shift
  echo "== $name =="
  local start end
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  stage_names+=("$name")
  stage_secs+=($((end - start)))
}

timed "cargo fmt --check" \
  cargo fmt --all --check

timed "cargo clippy (workspace, -D warnings)" \
  cargo clippy --workspace --all-targets --offline -- -D warnings

timed "cargo doc (no deps, warnings denied)" \
  env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

timed "cargo test (workspace)" \
  cargo test --workspace --offline -q

echo "ci: all checks passed"
echo "stage timings:"
for i in "${!stage_names[@]}"; do
  printf '  %-45s %3ss\n' "${stage_names[$i]}" "${stage_secs[$i]}"
done
