#!/usr/bin/env bash
# Perf-regression gate: compares freshly generated bench results against
# the committed baselines in bench_baselines/ and fails on
#   - throughput regression  > 20% (paths/s, req/s below baseline), or
#   - p99 latency inflation  > 30% (above baseline).
#
# Usage: scripts/bench_gate.sh [--self-test] [results-dir]
#   results-dir defaults to results/ and must contain BENCH_route.json
#   (from exp_route_bench) and serve_load.json (from exp_serve).
#   --self-test synthesizes a 25% throughput regression and a 40% p99
#   inflation from the committed baselines and asserts the gate FAILS on
#   both, and that a 10% wobble PASSES — proving the gate can actually
#   catch a regression before trusting it in CI.
#
# Baselines are hardware-dependent; after an intentional perf change or
# a runner change, regenerate them (scripts/run_experiments.sh, then
# copy results/BENCH_route.json and the report lines of
# results/serve_load.json, results/serve_hedging.json and
# results/serve_tenants.json into bench_baselines/) in the same PR. The
# serve_hedging and serve_tenants baselines are optional: their metrics
# (hedged p999 / tail-reduction, quiet-tenant contended p99 / isolation
# goodput ratio) are gated only when the matching
# bench_baselines/*.json exists. For a
# one-off waiver, write a single line of justification into
# bench_baselines/OVERRIDE: the gate then reports the regressions but
# exits 0. Delete the file to re-arm the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=bench_baselines
THROUGHPUT_DROP_PCT=20
P99_INFLATE_PCT=30

command -v jq > /dev/null || {
  echo "bench_gate: jq is required" >&2
  exit 1
}

# within_threshold <kind: thru|p99> <current> <baseline> → exit 0/1
within_threshold() {
  awk -v kind="$1" -v cur="$2" -v base="$3" \
    -v td="$THROUGHPUT_DROP_PCT" -v pi="$P99_INFLATE_PCT" 'BEGIN {
      if (base + 0 <= 0) exit 0
      if (kind == "thru") exit (cur < base * (1 - td / 100.0)) ? 1 : 0
      exit (cur > base * (1 + pi / 100.0)) ? 1 : 0
    }'
}

# Emit "<metric> <kind> <value>" rows for each file format. The serve
# file may be full experiment JSONL or just its committed report line;
# both carry a type=report object.
rows_route() {
  jq -r '.configs[]
    | "route_\(.router)_\(.rng)_paths_per_sec thru \(.paths_per_sec)",
      "route_\(.router)_\(.rng)_ns_p99 p99 \(.ns_per_path_p99)"' "$1"
}

rows_serve() {
  jq -r 'select(.type == "report")
    | "serve_per_conn_plateau_rps thru \(.per_conn_plateau_rps)",
      "serve_pipelined_peak_rps thru \(.pipelined_peak_rps)",
      "serve_pipelined_p99_ms p99 \([.sweep[] | select(.mode == "pipelined") | .p99_ms] | max)"' \
    "$1"
}

# Open-loop hedging (E27): the corrected hedged tail must not inflate,
# and the tail-reduction factor vs no mitigation must not collapse. The
# reduction is a ratio of two latencies on the same host, so unlike the
# raw ms columns it is fairly hardware-independent; it rides the
# throughput threshold (fail when it drops >20% below baseline).
rows_hedging() {
  jq -r 'select(.type == "report")
    | "serve_hedged_p999_ms p99 \(.hedged_p999_ms)",
      "serve_hedging_tail_reduction thru \(.tail_reduction_vs_none)"' "$1"
}

# Multi-tenant isolation (E28): the quiet tenant's contended p99 must
# not inflate, and its goodput ratio under the noisy neighbour's
# stampede (a same-host ratio, hardware-independent like the hedging
# reduction) must not collapse below baseline.
rows_tenants() {
  jq -r 'select(.type == "report")
    | "serve_tenant_b_contended_p99_ms p99 \(.b_contended_p99_ms)",
      "serve_tenant_isolation_goodput thru \(.b_goodput_ratio)"' "$1"
}

run_gate() {
  local results="$1" fails=0 metric kind cur base
  for f in BENCH_route serve_load; do
    if [[ ! -f "$results/$f.json" ]]; then
      echo "bench_gate: missing $results/$f.json (run exp_route_bench and exp_serve first)" >&2
      return 1
    fi
    if [[ ! -f "$BASE/$f.json" ]]; then
      echo "bench_gate: missing baseline $BASE/$f.json" >&2
      return 1
    fi
  done
  # The open-loop hedging metrics ride along only once their baseline is
  # committed, so the closed-loop serve_load gate never trips on a
  # checkout that predates E27.
  local hedging=0
  if [[ -f "$BASE/serve_hedging.json" ]]; then
    hedging=1
    if [[ ! -f "$results/serve_hedging.json" ]]; then
      echo "bench_gate: missing $results/serve_hedging.json (run exp_serve_hedging first)" >&2
      return 1
    fi
  fi
  # Same deal for the E28 multi-tenant isolation metrics.
  local tenants=0
  if [[ -f "$BASE/serve_tenants.json" ]]; then
    tenants=1
    if [[ ! -f "$results/serve_tenants.json" ]]; then
      echo "bench_gate: missing $results/serve_tenants.json (run exp_serve_tenants first)" >&2
      return 1
    fi
  fi

  declare -A baseline
  while read -r metric kind base; do
    baseline["$metric"]="$kind $base"
  done < <(
    rows_route "$BASE/BENCH_route.json"
    rows_serve "$BASE/serve_load.json"
    [[ $hedging == 1 ]] && rows_hedging "$BASE/serve_hedging.json"
    [[ $tenants == 1 ]] && rows_tenants "$BASE/serve_tenants.json"
  )

  printf '%-42s %-5s %14s %14s  %s\n' metric kind current baseline verdict
  while read -r metric kind cur; do
    if [[ -z "${baseline[$metric]:-}" ]]; then
      printf '%-42s %-5s %14.1f %14s  %s\n' "$metric" "$kind" "$cur" "-" "new (no baseline)"
      continue
    fi
    base=${baseline[$metric]#* }
    if within_threshold "$kind" "$cur" "$base"; then
      printf '%-42s %-5s %14.1f %14.1f  ok\n' "$metric" "$kind" "$cur" "$base"
    else
      printf '%-42s %-5s %14.1f %14.1f  REGRESSED\n' "$metric" "$kind" "$cur" "$base"
      fails=$((fails + 1))
    fi
  done < <(
    rows_route "$results/BENCH_route.json"
    rows_serve "$results/serve_load.json"
    [[ $hedging == 1 ]] && rows_hedging "$results/serve_hedging.json"
    [[ $tenants == 1 ]] && rows_tenants "$results/serve_tenants.json"
  )

  if [[ $fails -gt 0 ]]; then
    if [[ "${BENCH_GATE_IGNORE_OVERRIDE:-0}" != 1 && -s "$BASE/OVERRIDE" ]]; then
      echo "bench_gate: $fails regression(s) WAIVED by $BASE/OVERRIDE:" >&2
      head -1 "$BASE/OVERRIDE" >&2
      return 0
    fi
    echo "bench_gate: $fails metric(s) regressed past threshold" \
      "(>${THROUGHPUT_DROP_PCT}% throughput drop or >${P99_INFLATE_PCT}% p99 inflation)" >&2
    return 1
  fi
  echo "bench_gate: all metrics within thresholds"
}

self_test() {
  local tmp
  tmp=$(mktemp -d)
  # shellcheck disable=SC2064  # expand now: tmp is local to this function
  trap "rm -rf '$tmp'" EXIT
  export BENCH_GATE_IGNORE_OVERRIDE=1

  # The hedging metrics are optional (only gated once a baseline is
  # committed); when present they must be perturbed alongside the rest
  # so the self-test exercises them too.
  local hedging=0
  [[ -f "$BASE/serve_hedging.json" ]] && hedging=1
  local tenants=0
  [[ -f "$BASE/serve_tenants.json" ]] && tenants=1

  # 25% throughput regression on every metric: the gate MUST fail.
  jq '(.configs[].paths_per_sec) *= 0.75' "$BASE/BENCH_route.json" > "$tmp/BENCH_route.json"
  jq -c 'select(.type == "report")
    | .per_conn_plateau_rps *= 0.75 | .pipelined_peak_rps *= 0.75' \
    "$BASE/serve_load.json" > "$tmp/serve_load.json"
  [[ $hedging == 1 ]] && jq -c 'select(.type == "report")
    | .tail_reduction_vs_none *= 0.75' \
    "$BASE/serve_hedging.json" > "$tmp/serve_hedging.json"
  [[ $tenants == 1 ]] && jq -c 'select(.type == "report")
    | .b_goodput_ratio *= 0.75' \
    "$BASE/serve_tenants.json" > "$tmp/serve_tenants.json"
  if run_gate "$tmp" > /dev/null 2>&1; then
    echo "bench_gate self-test: FAILED — a synthetic 25% throughput regression passed the gate" >&2
    return 1
  fi
  echo "self-test: 25% throughput regression correctly rejected"

  # 40% p99 inflation (throughput intact): the gate MUST fail.
  jq '(.configs[].ns_per_path_p99) *= 1.4' "$BASE/BENCH_route.json" > "$tmp/BENCH_route.json"
  jq -c 'select(.type == "report") | (.sweep[].p99_ms) *= 1.4' \
    "$BASE/serve_load.json" > "$tmp/serve_load.json"
  [[ $hedging == 1 ]] && jq -c 'select(.type == "report")
    | .hedged_p999_ms *= 1.4' \
    "$BASE/serve_hedging.json" > "$tmp/serve_hedging.json"
  [[ $tenants == 1 ]] && jq -c 'select(.type == "report")
    | .b_contended_p99_ms *= 1.4' \
    "$BASE/serve_tenants.json" > "$tmp/serve_tenants.json"
  if run_gate "$tmp" > /dev/null 2>&1; then
    echo "bench_gate self-test: FAILED — a synthetic 40% p99 inflation passed the gate" >&2
    return 1
  fi
  echo "self-test: 40% p99 inflation correctly rejected"

  # 10% wobble in the bad direction on everything: normal noise, MUST pass.
  jq '(.configs[].paths_per_sec) *= 0.9 | (.configs[].ns_per_path_p99) *= 1.1' \
    "$BASE/BENCH_route.json" > "$tmp/BENCH_route.json"
  jq -c 'select(.type == "report")
    | .per_conn_plateau_rps *= 0.9 | .pipelined_peak_rps *= 0.9
    | (.sweep[].p99_ms) *= 1.1' \
    "$BASE/serve_load.json" > "$tmp/serve_load.json"
  [[ $hedging == 1 ]] && jq -c 'select(.type == "report")
    | .tail_reduction_vs_none *= 0.9 | .hedged_p999_ms *= 1.1' \
    "$BASE/serve_hedging.json" > "$tmp/serve_hedging.json"
  [[ $tenants == 1 ]] && jq -c 'select(.type == "report")
    | .b_goodput_ratio *= 0.9 | .b_contended_p99_ms *= 1.1' \
    "$BASE/serve_tenants.json" > "$tmp/serve_tenants.json"
  if ! run_gate "$tmp" > /dev/null 2>&1; then
    echo "bench_gate self-test: FAILED — a 10% wobble tripped the gate" >&2
    return 1
  fi
  echo "self-test: 10% wobble correctly tolerated"
  echo "bench_gate self-test: ok"
}

if [[ "${1:-}" == "--self-test" ]]; then
  self_test
else
  run_gate "${1:-results}"
fi
