#!/usr/bin/env bash
# Regenerates every experiment table (E1-E20) into results/.
# Usage: scripts/run_experiments.sh [results-dir]
set -euo pipefail
out="${1:-results}"
mkdir -p "$out"

echo "== building =="
cargo build --release -p oblivion-bench --bins --quiet
cargo build --release --examples --quiet

run() {
  echo "== $1 =="
  cargo run --release --quiet -p oblivion-bench --bin "$1" > "$out/$1.txt"
}

cargo run --release --quiet --example decomposition_gallery > "$out/e1_e2_figures.txt"
run exp_stretch2d            # E3
run exp_congestion2d         # E4
run exp_stretch_d            # E5
run exp_congestion_d         # E6
run exp_bridge_height        # E7
run exp_randbits             # E8
run exp_lower_bound          # E9
run exp_baselines            # E10
run exp_delivery             # E11
run exp_ablation_bridges     # E12
run exp_concentration        # E13
run exp_torus                # E14
run exp_choices              # E15
run exp_delays               # E16
run exp_scaling              # E17
run exp_online               # E18
run exp_expected_congestion  # E19
run exp_offline_gap          # E20

echo "all experiment outputs written to $out/"
