#!/usr/bin/env bash
# Regenerates every experiment table (E1-E29, plus the BENCH_route
# hot-path microbenchmark, whose timings are machine-dependent) into
# results/.
# Usage: scripts/run_experiments.sh [--force] [results-dir]
#   Experiments whose machine-readable results/<exp>.json already exists
#   are skipped, so an interrupted sweep resumes where it left off; pass
#   --force to regenerate everything from scratch.
#   Set SKIP_CI=1 to bypass the scripts/ci.sh preflight.
#   Set OBLIVION_THREADS=N to pin the thread count the parallel benches
#   (exp_online, exp_delays, exp_online_threads) run with; the default is
#   the machine's available parallelism.
# Fail-fast: the first failing experiment aborts the run with its name.
# Each experiment also reports its wall-clock time, and binaries wired to
# oblivion-bench::report drop a machine-readable $out/<exp>.json next to
# the .txt capture (render with `oblivion stats`).
set -euo pipefail
cd "$(dirname "$0")/.."
force=0
out=results
for arg in "$@"; do
  case "$arg" in
    --force) force=1 ;;
    *) out="$arg" ;;
  esac
done
mkdir -p "$out"
export OBLIVION_RESULTS_DIR="$out"

# Regression check: with `set -o pipefail`, a failing producer must fail
# the whole pipeline even though the consumer (tee, below) succeeds. If
# this branch is ever taken, experiment failures would be silently
# swallowed by the capture pipeline.
if (exit 9) | cat; then
  echo "pipefail is not active: experiment failures would be masked" >&2
  exit 1
fi

if [[ "${SKIP_CI:-0}" != "1" ]]; then
  echo "== preflight: scripts/ci.sh (SKIP_CI=1 to skip) =="
  scripts/ci.sh
fi

echo "== building =="
cargo build --release -p oblivion-bench --bins --quiet
cargo build --release --examples --quiet
# exp_online_procs drives the oblivion CLI as a subprocess (the process
# engine's supervisor spawns `oblivion proc-worker` children).
cargo build --release --bin oblivion --quiet

run() {
  # Binaries wired to oblivion-bench::report write $out/<exp>.json where
  # <exp> is the bin name minus its exp_ prefix (exp_checkpoint overrides
  # this via $2). If that file already exists the experiment is done —
  # skip it unless --force, so an interrupted sweep resumes cheaply.
  local json="${2:-${1#exp_}}"
  if [[ "$force" != 1 && -f "$out/$json.json" ]]; then
    echo "== $1 == skipped ($out/$json.json exists; --force regenerates)"
    return 0
  fi
  echo "== $1 =="
  local start end
  start=$(date +%s)
  # tee keeps a capture in $out while pipefail (verified above) still
  # propagates the experiment's exit code through the pipeline.
  if ! cargo run --release --quiet -p oblivion-bench --bin "$1" | tee "$out/$1.txt" > /dev/null; then
    echo "FAILED: $1 (partial output in $out/$1.txt)" >&2
    exit 1
  fi
  end=$(date +%s)
  echo "   $1 done in $((end - start))s"
}

cargo run --release --quiet --example decomposition_gallery > "$out/e1_e2_figures.txt"
run exp_stretch2d            # E3
run exp_congestion2d         # E4
run exp_stretch_d            # E5
run exp_congestion_d         # E6
run exp_bridge_height        # E7
run exp_randbits             # E8
run exp_lower_bound          # E9
run exp_baselines            # E10
run exp_delivery             # E11
run exp_ablation_bridges     # E12
run exp_concentration        # E13
run exp_torus                # E14
run exp_choices              # E15
run exp_delays               # E16
run exp_scaling              # E17
run exp_online               # E18
run exp_expected_congestion  # E19
run exp_offline_gap          # E20
run exp_online_threads       # E21
run exp_faults               # E22
run exp_checkpoint checkpoint_overhead  # E23
run exp_serve serve_load     # E24
run exp_serve_phases         # E25
run exp_serve_pipeline       # E26
run exp_serve_hedging serve_hedging  # E27
run exp_serve_tenants serve_tenants  # E28
run exp_online_procs         # E29
run exp_route_bench BENCH_route  # hot-path ns/path microbenchmark

echo "all experiment outputs written to $out/"
