//! The Section-5 story in one run: build the adversarial problem `Π_A`
//! against a deterministic router, watch it congest, then watch the
//! randomized bridge algorithm shrug it off — and count the random bits
//! that buy the difference.
//!
//! ```sh
//! cargo run --release --example adversarial_lower_bound
//! ```

use oblivion::prelude::*;
use oblivion::routing::route_all_metered;
use oblivion::{metrics, workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 32u32;
    let l = 8u32;
    let mesh = Mesh::new_mesh(&[side, side]);
    let det = DimOrder::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(5);

    // Π_A: distance-l permutation, modal paths, keep the hot-edge packets.
    let adv = workloads::pi_a(&det, l, 1, &mut rng);
    println!(
        "Pi_A against '{}' with l = {l}: {} packets share one edge",
        det.name(),
        adv.workload.len()
    );
    println!(
        "Lemma 5.1 (kappa = 1): deterministic congestion >= l/d = {}",
        l / 2
    );

    let (det_paths, _, _) = route_all_metered(&det, &adv.workload.pairs, &mut rng);
    let det_c = metrics::PathSetMetrics::measure(&mesh, &det_paths).congestion;

    let rand_router = Busch2D::new(mesh.clone());
    let (rand_paths, bits, _) = route_all_metered(&rand_router, &adv.workload.pairs, &mut rng);
    let rand_c = metrics::PathSetMetrics::measure(&mesh, &rand_paths).congestion;
    let lb = metrics::congestion_lower_bound(&mesh, &adv.workload.pairs);

    println!("\n  deterministic dim-order : C = {det_c}");
    println!("  randomized busch-2d     : C = {rand_c}  (lower bound {lb:.1})");
    println!(
        "  randomness spent        : {:.1} bits/packet (Lemma 5.4 budget ~ d*log2(D'*d) = {:.1})",
        bits as f64 / adv.workload.len() as f64,
        2.0 * ((f64::from(l) * 2.0).log2()),
    );
    assert!(det_c >= l / 2);
    println!(
        "\nThe same packets, the same network: {det_c}x vs {rand_c}x max edge load.\n\
         That factor is what Section 5 proves no deterministic algorithm can avoid."
    );
}
