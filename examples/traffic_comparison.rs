//! Compare all routers on two opposite traffic extremes — global
//! (transpose) and local (neighbor exchange) — and watch who controls
//! congestion *and* stretch at the same time.
//!
//! ```sh
//! cargo run --release --example traffic_comparison
//! ```

use oblivion::prelude::*;
use oblivion::routing::route_all;
use oblivion::{metrics, sim, workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 32u32;
    let mesh = Mesh::new_mesh(&[side, side]);
    let mut rng = StdRng::seed_from_u64(1);

    let routers: Vec<Box<dyn ObliviousRouter>> = vec![
        Box::new(Busch2D::new(mesh.clone())),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
    ];
    let workloads = [
        workloads::transpose(&mesh).without_self_loops(),
        workloads::neighbor_exchange(&mesh, 0),
    ];

    for w in &workloads {
        let lb = metrics::congestion_lower_bound(&mesh, &w.pairs);
        println!(
            "\n=== {} ({} packets, C* lower bound {:.1}) ===",
            w.name,
            w.len(),
            lb
        );
        println!(
            "{:<16} {:>5} {:>5} {:>12} {:>10} {:>10}",
            "router", "C", "D", "max stretch", "C+D", "makespan"
        );
        for r in &routers {
            let paths = route_all(r.as_ref(), &w.pairs, &mut rng);
            let m = metrics::PathSetMetrics::measure(&mesh, &paths);
            let res =
                sim::Simulation::new(&mesh, paths).run(sim::SchedulingPolicy::FurthestToGo, 2);
            println!(
                "{:<16} {:>5} {:>5} {:>12.2} {:>10} {:>10}",
                r.name(),
                m.congestion,
                m.dilation,
                m.max_stretch,
                m.c_plus_d(),
                res.makespan
            );
        }
    }
    println!(
        "\nTranspose: dim-order's C explodes; hierarchical/valiant routers stay near\n\
         the bound. Neighbor exchange: valiant and the access tree drag distance-1\n\
         packets across the mesh (huge D and makespan); busch-2d keeps both small."
    );
}
