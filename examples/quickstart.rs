//! Quickstart: route packets obliviously on a mesh, with simultaneous
//! congestion and stretch guarantees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oblivion::prelude::*;
use oblivion::routing::route_all_metered;
use oblivion::{metrics, sim, workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 32x32 mesh (sides must be equal powers of two for algorithm H).
    let mesh = Mesh::new_mesh(&[32, 32]);
    let router = Busch2D::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(42);

    // --- Route a single packet -------------------------------------------
    let s = Coord::new(&[3, 4]);
    let t = Coord::new(&[28, 9]);
    let routed = router.select_path(&s, &t, &mut rng);
    println!(
        "single packet {s} -> {t}: length {} (shortest {}), stretch {:.2}, {} random bits",
        routed.path.len(),
        mesh.dist(&s, &t),
        routed.path.stretch(&mesh),
        routed.random_bits,
    );

    // --- Route a whole permutation ---------------------------------------
    let workload = workloads::transpose(&mesh).without_self_loops();
    let (paths, total_bits, _) = route_all_metered(&router, &workload.pairs, &mut rng);
    let m = metrics::PathSetMetrics::measure(&mesh, &paths);
    let lb = metrics::congestion_lower_bound(&mesh, &workload.pairs);
    println!(
        "\ntranspose on 32x32: {} packets, congestion C = {} (lower bound {:.1}), \
         dilation D = {}, max stretch {:.2}, {:.1} bits/packet",
        workload.len(),
        m.congestion,
        lb,
        m.dilation,
        m.max_stretch,
        total_bits as f64 / workload.len() as f64,
    );

    // --- Deliver the packets through the synchronous network --------------
    let result = sim::Simulation::new(&mesh, paths).run(sim::SchedulingPolicy::FurthestToGo, 7);
    println!(
        "delivered in {} steps (trivial lower bound C + D = {})",
        result.makespan,
        m.c_plus_d(),
    );

    // The guarantees that make this interesting (Theorems 3.4 / 3.9):
    assert!(m.max_stretch <= 64.0);
    println!("\nTheorem 3.4 check passed: every path within 64x of shortest.");
}
