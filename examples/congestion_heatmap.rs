//! See the congestion: ASCII heat-maps of edge loads under different
//! routers on the transpose permutation.
//!
//! Dimension-order routing concentrates the transpose along the diagonal
//! band; algorithm H's randomized hierarchy spreads it almost uniformly.
//!
//! ```sh
//! cargo run --release --example congestion_heatmap
//! ```

use oblivion::metrics::{render_heatmap_with_legend, EdgeLoads, PathSetMetrics};
use oblivion::prelude::*;
use oblivion::routing::route_all;
use oblivion::workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let w = workloads::transpose(&mesh).without_self_loops();
    let mut rng = StdRng::seed_from_u64(11);

    let routers: Vec<Box<dyn ObliviousRouter>> = vec![
        Box::new(DimOrder::new(mesh.clone())),
        Box::new(Busch2D::new(mesh.clone())),
    ];
    for r in &routers {
        let paths = route_all(r.as_ref(), &w.pairs, &mut rng);
        let m = PathSetMetrics::measure(&mesh, &paths);
        let loads = EdgeLoads::from_paths(&mesh, &paths);
        println!(
            "=== {} on transpose (16x16): C = {}, used edges = {} ===",
            r.name(),
            m.congestion,
            loads.used_edges()
        );
        println!("{}", render_heatmap_with_legend(&mesh, &loads));
    }
    println!(
        "The dim-order map shows the hot anti-diagonal band; the busch-2d map is a\n\
         nearly uniform wash — same traffic, same mesh, different fates."
    );
}
