//! E1 + E2: reproduces the paper's Figure 1 and Figure 2 as ASCII art.
//!
//! Figure 1: the 8x8 mesh decomposition — type-1 (recursive quadrants) and
//! type-2 (half-side-shifted bridges) at levels 1 and 2.
//!
//! Figure 2: the 3-dimensional decomposition with side 4, where the shift
//! unit is λ = 1 and there are 4 block types; a 2-D slice of each is shown.
//!
//! ```sh
//! cargo run --release --example decomposition_gallery
//! ```

use oblivion::decomp::{render, Decomp2, DecompD, TorusDecomp};

fn main() {
    println!("=== Figure 1: decomposition of the 8x8 mesh ===\n");
    let d2 = Decomp2::new(3);
    for level in [1u32, 2] {
        println!("Level {level}, type 1 (side {}):", d2.block_side(level));
        println!("{}", render::render_2d_type1(&d2, level));
        println!(
            "Level {level}, type 2 (shift {}; '..' marks discarded corner regions):",
            d2.block_side(level) / 2
        );
        println!("{}", render::render_2d_type2(&d2, level));
    }

    println!("=== Figure 2: 3-D mesh, side 4, lambda = 1 (slice at z = 0) ===\n");
    let d3 = DecompD::new(3, 2);
    let level = 0; // block side 4 = 2^k: the paper's m_l = 4 example
    println!(
        "block side {}, lambda {}, {} types\n",
        d3.block_side(level),
        d3.lambda(level),
        d3.num_types(level)
    );
    for j in 1..=d3.num_types(level) {
        println!("Type {j} (diagonal shift {}):", (j - 1) * d3.lambda(level));
        println!("{}", render::render_d_slice(&d3, level, j, 0));
    }

    println!("=== Bonus: the torus model (8x8, level-1 type-2 family) ===\n");
    let dt = TorusDecomp::new(2, 3);
    println!(
        "On the torus the shifted family tiles perfectly — blocks wrap across\n\
         the page edges instead of being clipped (the model the proofs use):\n"
    );
    println!("{}", render::render_torus_slice(&dt, 1, 2, 0));

    println!(
        "Note how every type-2/type-j block straddles the boundaries of the type-1\n\
         grid: two nearby nodes separated by a type-1 cut always share a small\n\
         shifted block — the 'bridge' that keeps the paper's paths short."
    );
}
