//! End-of-run structured reports and the JSON-lines metrics format.
//!
//! A metrics file is plain JSONL: one object per line, each tagged with a
//! `"type"` field — `"counter"`, `"gauge"`, `"histogram"`,
//! `"runtime_counter"`, `"runtime_histogram"`, `"span"`, `"span_event"`,
//! `"serve_stats"`, or `"report"`. The final `"report"` line carries
//! run-level summary fields (command, mesh, congestion, stretch, ...) and
//! a `"schema"` version ([`SCHEMA_VERSION`]; files written before the
//! telemetry layer carry no field and are schema 1). The same writer
//! backs `--metrics-out` in the CLI and `results/*.json` in the bench
//! harness; [`render`] turns a file back into human-readable text for
//! `oblivion stats`.

use crate::json::Json;
use crate::registry::{Histogram, Snapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Version of the metrics JSONL schema this writer produces. Bumped to 2
/// when gauges, runtime histograms, and periodic `serve_stats` snapshot
/// lines were added; reports without a `"schema"` field are version 1.
pub const SCHEMA_VERSION: u64 = 2;

/// An ordered, append-only set of run-level summary fields.
///
/// Serialization is deterministic: fields appear exactly in insertion
/// order, so two runs that insert the same keys and values produce
/// byte-identical JSON.
#[derive(Debug, Clone)]
pub struct RunReport {
    fields: Vec<(String, Json)>,
}

impl RunReport {
    /// A new report for the given top-level command/experiment name.
    pub fn new(command: &str) -> Self {
        Self {
            fields: vec![
                ("command".to_string(), Json::from(command)),
                ("schema".to_string(), Json::from(SCHEMA_VERSION)),
            ],
        }
    }

    /// Appends (or overwrites) a summary field.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
        self
    }

    /// The report as one `{"type":"report",...}` JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("type", "report");
        for (k, v) in &self.fields {
            obj.set(k, v.clone());
        }
        obj
    }

    /// The full metrics document: counter/histogram/span lines from the
    /// snapshot followed by the report line, newline-terminated.
    ///
    /// With `include_timings` false, span lines, captured span events,
    /// and runtime counters are omitted — wall-clock times and
    /// scheduling-dependent stats are the only non-deterministic parts of
    /// a snapshot, so the remainder is byte-identical across same-seed
    /// runs.
    pub fn to_jsonl(&self, snap: &Snapshot, include_timings: bool) -> String {
        let mut out = String::new();
        for line in snapshot_lines(snap, include_timings) {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&self.to_json().to_string());
        out.push('\n');
        out
    }
}

/// Serializes a snapshot to tagged JSONL lines (no trailing newline per
/// entry; the caller joins them).
pub fn snapshot_lines(snap: &Snapshot, include_timings: bool) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, value) in &snap.counters {
        let mut obj = Json::obj();
        obj.set("type", "counter")
            .set("name", name.as_str())
            .set("value", *value);
        lines.push(obj.to_string());
    }
    for (name, value) in &snap.gauges {
        let mut obj = Json::obj();
        obj.set("type", "gauge")
            .set("name", name.as_str())
            .set("value", *value);
        lines.push(obj.to_string());
    }
    for (name, hist) in &snap.histograms {
        lines.push(histogram_json("histogram", name, hist).to_string());
    }
    if include_timings {
        for (name, value) in &snap.runtime_counters {
            let mut obj = Json::obj();
            obj.set("type", "runtime_counter")
                .set("name", name.as_str())
                .set("value", *value);
            lines.push(obj.to_string());
        }
        for (name, hist) in &snap.runtime_histograms {
            lines.push(histogram_json("runtime_histogram", name, hist).to_string());
        }
        for (path, stats) in &snap.spans {
            let mut obj = Json::obj();
            obj.set("type", "span")
                .set("name", path.as_str())
                .set("count", stats.count)
                .set("total_ns", stats.total_ns)
                .set("max_ns", stats.max_ns);
            lines.push(obj.to_string());
        }
        lines.extend(snap.events.iter().cloned());
    }
    lines
}

/// Serializes one histogram as a tagged JSON object (`kind` becomes the
/// `"type"` field: `"histogram"` or `"runtime_histogram"`).
pub fn histogram_json(kind: &str, name: &str, hist: &Histogram) -> Json {
    let mut obj = Json::obj();
    obj.set("type", kind)
        .set("name", name)
        .set("count", hist.count)
        .set("sum", hist.sum)
        .set("min", if hist.count == 0 { 0 } else { hist.min })
        .set("max", hist.max);
    let mut buckets = Vec::new();
    for (i, &count) in hist.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (lo, hi) = Histogram::bucket_range(i);
        let mut b = Json::obj();
        b.set("lo", lo).set("hi", hi).set("count", count);
        buckets.push(b);
    }
    obj.set("buckets", Json::Arr(buckets));
    obj
}

/// Rebuilds a [`Histogram`] from a serialized histogram line (the inverse
/// of [`histogram_json`]), so renderers can compute quantiles from a
/// parsed metrics file. Returns `None` when the object is missing fields
/// or a bucket does not sit on a power-of-two boundary.
pub fn histogram_from_json(h: &Json) -> Option<Histogram> {
    let mut hist = Histogram::new();
    hist.count = h.get("count")?.as_u64()?;
    hist.sum = h.get("sum")?.as_u64()?;
    hist.max = h.get("max")?.as_u64()?;
    hist.min = if hist.count == 0 {
        u64::MAX
    } else {
        h.get("min")?.as_u64()?
    };
    let Some(Json::Arr(buckets)) = h.get("buckets") else {
        return None;
    };
    for b in buckets {
        let lo = b.get("lo")?.as_u64()?;
        let n = b.get("count")?.as_u64()?;
        let idx = Histogram::bucket_of(lo);
        if idx >= HISTOGRAM_BUCKETS || Histogram::bucket_range(idx).0 != lo {
            return None;
        }
        hist.buckets[idx] += n;
    }
    Some(hist)
}

/// The schema version of each `"report"` line in a parsed document, in
/// file order. Reports written before the version field existed count as
/// version 1. A document whose versions are not all equal mixes writer
/// generations and should be flagged to the reader.
pub fn report_schemas(entries: &[(String, Json)]) -> Vec<u64> {
    entries
        .iter()
        .filter(|(t, _)| t == "report")
        .map(|(_, v)| v.get("schema").and_then(|s| s.as_u64()).unwrap_or(1))
        .collect()
}

/// Parses a JSONL metrics document into its typed lines.
///
/// Blank lines are skipped; a malformed line or a line without a string
/// `"type"` field is an error naming the line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<(String, Json)>, String> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {}", idx + 1, e))?;
        let kind = value
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("line {}: missing \"type\" field", idx + 1))?
            .to_string();
        entries.push((kind, value));
    }
    Ok(entries)
}

/// Skipped lines from a lossy parse: `(1-based line number, error)`.
pub type SkippedLines = Vec<(usize, String)>;

/// Lossy variant of [`parse_jsonl`] for corrupt metrics files: every
/// unparseable line (bad JSON, or no string `"type"` field) is skipped
/// and reported as `(line number, error)` instead of aborting the parse.
/// The good entries come back in file order.
pub fn parse_jsonl_lossy(text: &str) -> (Vec<(String, Json)>, SkippedLines) {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Json::parse(line) {
            Err(e) => bad.push((idx + 1, e)),
            Ok(value) => match value.get("type").and_then(|t| t.as_str()) {
                None => bad.push((idx + 1, "missing \"type\" field".to_string())),
                Some(kind) => entries.push((kind.to_string(), value)),
            },
        }
    }
    (entries, bad)
}

/// Renders a parsed metrics document as human-readable text (the body of
/// `oblivion stats`).
pub fn render(entries: &[(String, Json)]) -> String {
    fn of_kind_in<'a>(
        entries: &'a [(String, Json)],
        kind: &'a str,
    ) -> impl Iterator<Item = &'a Json> + 'a {
        entries
            .iter()
            .filter(move |(t, _)| t == kind)
            .map(|(_, v)| v)
    }
    let mut out = String::new();
    let of_kind = |k: &'static str| of_kind_in(entries, k);

    for report in of_kind("report") {
        out.push_str("run report\n");
        if let Json::Obj(fields) = report {
            for (key, value) in fields {
                if key == "type" {
                    continue;
                }
                let _ = writeln!(out, "  {:<24} {}", key, render_scalar(value));
            }
        }
        out.push('\n');
    }

    if of_kind("counter").next().is_some() {
        out.push_str("counters\n");
        for c in of_kind("counter") {
            let name = c.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            let value = c.get("value").and_then(|v| v.as_u64()).unwrap_or(0);
            let _ = writeln!(out, "  {:<32} {}", name, value);
        }
        out.push('\n');
    }

    if of_kind("gauge").next().is_some() {
        out.push_str("gauges (instantaneous levels)\n");
        for g in of_kind("gauge") {
            let name = g.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            let value = g.get("value").and_then(|v| v.as_i64()).unwrap_or(0);
            let _ = writeln!(out, "  {:<32} {}", name, value);
        }
        out.push('\n');
    }

    for h in of_kind("histogram") {
        render_histogram(&mut out, h, "histogram");
    }

    for h in of_kind("runtime_histogram") {
        render_histogram(&mut out, h, "runtime histogram");
    }

    if of_kind("runtime_counter").next().is_some() {
        out.push_str("runtime counters (scheduling-dependent)\n");
        for c in of_kind("runtime_counter") {
            let name = c.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            let value = c.get("value").and_then(|v| v.as_u64()).unwrap_or(0);
            let _ = writeln!(out, "  {:<32} {}", name, value);
        }
        out.push('\n');
    }

    if of_kind("span").next().is_some() {
        out.push_str("spans\n");
        let _ = writeln!(
            out,
            "  {:<40} {:>8} {:>14} {:>14}",
            "path", "count", "total", "max"
        );
        for s in of_kind("span") {
            let name = s.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            let count = s.get("count").and_then(|v| v.as_u64()).unwrap_or(0);
            let total = s.get("total_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let max = s.get("max_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<40} {:>8} {:>14} {:>14}",
                name,
                count,
                fmt_ns(total),
                fmt_ns(max)
            );
        }
        out.push('\n');
    }

    let n_events = of_kind("span_event").count();
    if n_events > 0 {
        let _ = writeln!(out, "({n_events} trace events; view raw file for detail)");
    }

    if out.is_empty() {
        out.push_str("(empty metrics file)\n");
    }
    out
}

fn render_histogram(out: &mut String, h: &Json, label: &str) {
    let name = h.get("name").and_then(|n| n.as_str()).unwrap_or("?");
    let count = h.get("count").and_then(|v| v.as_u64()).unwrap_or(0);
    let sum = h.get("sum").and_then(|v| v.as_u64()).unwrap_or(0);
    let min = h.get("min").and_then(|v| v.as_u64()).unwrap_or(0);
    let max = h.get("max").and_then(|v| v.as_u64()).unwrap_or(0);
    let mean = if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    };
    let quantiles = histogram_from_json(h)
        .filter(|hist| hist.count > 0)
        .map(|hist| format!(", p50 {}, p99 {}", hist.quantile(0.50), hist.quantile(0.99)))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "{label} {name}  (count {count}, mean {mean:.2}, min {min}, max {max}{quantiles})"
    );
    if let Some(Json::Arr(buckets)) = h.get("buckets") {
        let peak = buckets
            .iter()
            .filter_map(|b| b.get("count").and_then(|c| c.as_u64()))
            .max()
            .unwrap_or(1)
            .max(1);
        for b in buckets {
            let lo = b.get("lo").and_then(|v| v.as_u64()).unwrap_or(0);
            let hi = b.get("hi").and_then(|v| v.as_u64()).unwrap_or(0);
            let n = b.get("count").and_then(|v| v.as_u64()).unwrap_or(0);
            let width = ((n as f64 / peak as f64) * 40.0).ceil() as usize;
            let range = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}..{hi}")
            };
            let _ = writeln!(out, "  {:>16}  {:>10}  {}", range, n, "#".repeat(width));
        }
    }
    out.push('\n');
}

fn render_scalar(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SpanStats;

    fn sample_snapshot() -> Snapshot {
        let mut hist = Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; crate::registry::HISTOGRAM_BUCKETS],
        };
        // Mirror Histogram::record without going through the registry.
        for v in [0u64, 3, 3, 17] {
            hist.count += 1;
            hist.sum += v;
            hist.min = hist.min.min(v);
            hist.max = hist.max.max(v);
            hist.buckets[Histogram::bucket_of(v)] += 1;
        }
        let mut phase = Histogram::new();
        phase.record(1_000);
        phase.record(4_000);
        Snapshot {
            counters: vec![("packets_routed".to_string(), 42)],
            runtime_counters: vec![("pool_steals".to_string(), 3)],
            gauges: vec![("queue_depth".to_string(), 5)],
            histograms: vec![("random_bits_per_packet".to_string(), hist)],
            runtime_histograms: vec![("phase_route_ns".to_string(), phase)],
            spans: vec![(
                "route/path_selection".to_string(),
                SpanStats {
                    count: 42,
                    total_ns: 1_500_000,
                    max_ns: 90_000,
                },
            )],
            events: vec![],
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut report = RunReport::new("route");
        report.set("packets", 42u64).set("max_congestion", 7u64);
        let doc = report.to_jsonl(&sample_snapshot(), true);
        let entries = parse_jsonl(&doc).unwrap();
        let kinds: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "counter",
                "gauge",
                "histogram",
                "runtime_counter",
                "runtime_histogram",
                "span",
                "report"
            ]
        );
        let report_line = &entries[6].1;
        assert_eq!(report_line.get("command").unwrap().as_str(), Some("route"));
        assert_eq!(report_line.get("packets").unwrap().as_u64(), Some(42));
        assert_eq!(
            report_line.get("schema").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(report_schemas(&entries), vec![SCHEMA_VERSION]);
    }

    #[test]
    fn timings_excluded_when_asked() {
        let report = RunReport::new("route");
        let doc = report.to_jsonl(&sample_snapshot(), false);
        assert!(!doc.contains("\"span\""));
        assert!(!doc.contains("total_ns"));
        assert!(!doc.contains("runtime_counter"));
        assert!(!doc.contains("runtime_histogram"));
        let entries = parse_jsonl(&doc).unwrap();
        assert_eq!(entries.len(), 4); // counter + gauge + histogram + report
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut report = RunReport::new("x");
        report.set("a", 1u64).set("b", 2u64).set("a", 3u64);
        let json = report.to_json().to_string();
        assert_eq!(
            json,
            "{\"type\":\"report\",\"command\":\"x\",\"schema\":2,\"a\":3,\"b\":2}"
        );
    }

    #[test]
    fn histogram_json_roundtrips_through_parse() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 3, 17, 900] {
            h.record(v);
        }
        let line = histogram_json("histogram", "lat", &h).to_string();
        let parsed = Json::parse(&line).unwrap();
        let back = histogram_from_json(&parsed).unwrap();
        assert_eq!(back.count, h.count);
        assert_eq!(back.sum, h.sum);
        assert_eq!(back.min, h.min);
        assert_eq!(back.max, h.max);
        assert_eq!(back.buckets, h.buckets);
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    fn missing_schema_reads_as_version_one() {
        let doc = "{\"type\":\"report\",\"command\":\"old\"}\n\
                   {\"type\":\"report\",\"command\":\"new\",\"schema\":2}\n";
        let entries = parse_jsonl(doc).unwrap();
        assert_eq!(report_schemas(&entries), vec![1, 2]);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let mut report = RunReport::new("route");
        report.set("max_congestion", 7u64);
        let doc = report.to_jsonl(&sample_snapshot(), true);
        let entries = parse_jsonl(&doc).unwrap();
        let text = render(&entries);
        assert!(text.contains("packets_routed"));
        assert!(text.contains("42"));
        assert!(text.contains("max_congestion"));
        assert!(text.contains("random_bits_per_packet"));
        assert!(text.contains("route/path_selection"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"type\":\"counter\"}\nnot json\n").is_err());
        assert!(parse_jsonl("{\"notype\":1}\n").is_err());
        assert!(parse_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn lossy_parse_skips_bad_lines_with_context() {
        let text = "{\"type\":\"counter\",\"name\":\"a\",\"value\":1}\n\
                    not json at all\n\
                    {\"notype\":1}\n\
                    {\"type\":\"report\",\"command\":\"x\"}\n";
        let (entries, bad) = parse_jsonl_lossy(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "counter");
        assert_eq!(entries[1].0, "report");
        assert_eq!(bad.len(), 2);
        assert_eq!(bad[0].0, 2);
        assert_eq!(bad[1].0, 3);
        assert!(bad[1].1.contains("type"));
        // A clean document parses with no complaints.
        let (ok, none) = parse_jsonl_lossy("{\"type\":\"counter\"}\n");
        assert_eq!(ok.len(), 1);
        assert!(none.is_empty());
    }
}
