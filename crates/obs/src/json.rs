//! A small hand-rolled JSON value type, writer, and parser.
//!
//! The workspace is dependency-free, so machine-readable output cannot
//! lean on serde. This module provides the minimum the observability layer
//! needs: a [`Json`] tree with **order-preserving** objects (serialization
//! is deterministic — required by the byte-identical `RunReport`
//! regression test), a compact writer, and a strict recursive-descent
//! parser for reading metrics files back (`oblivion stats`).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    U64(u64),
    /// A signed integer (serialized without a decimal point).
    I64(i64),
    /// A float, serialized via Rust's shortest round-trip formatting.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects).
    pub fn set<S: Into<String>, V: Into<Json>>(&mut self, key: S, value: V) -> &mut Self {
        match self {
            Json::Obj(entries) => entries.push((key.into(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric and representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(x) => Some(x),
            Json::I64(x) => u64::try_from(x).ok(),
            Json::F64(x) if x >= 0.0 && x.fract() == 0.0 && x < 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it fits (gauges may be negative).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::U64(x) => i64::try_from(x).ok(),
            Json::I64(x) => Some(x),
            Json::F64(x) if x.fract() == 0.0 && x.abs() < 2f64.powi(53) => Some(x as i64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(x) => Some(x as f64),
            Json::I64(x) => Some(x as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(x) => {
                let _ = write!(out, "{x}");
            }
            Json::I64(x) => {
                let _ = write!(out, "{x}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // {:?} is the shortest representation that round-trips,
                    // and always contains a '.' or exponent for non-integers;
                    // integral floats print as "1.0", keeping the type
                    // distinction visible.
                    let _ = write!(out, "{x:?}");
                } else {
                    // JSON has no NaN/Inf; degrade to null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

/// Compact (no whitespace), deterministic serialization.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::U64(x)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::U64(u64::from(x))
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::U64(x as u64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Self {
        Json::I64(x)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos:?}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(x) = text.parse::<u64>() {
            return Ok(Json::U64(x));
        }
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(x) = text.parse::<i64>() {
            return Ok(Json::I64(x));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is valid UTF-8 by
                // construction: it came from a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos:?}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_deterministically_and_in_order() {
        let mut j = Json::obj();
        j.set("b", 1u64).set("a", 2u64).set("pi", 3.25);
        assert_eq!(j.to_string(), r#"{"b":1,"a":2,"pi":3.25}"#);
        assert_eq!(j.to_string(), j.clone().to_string());
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn round_trips() {
        let mut j = Json::obj();
        j.set("name", "route/path_selection")
            .set("count", 64u64)
            .set("neg", Json::I64(-3))
            .set("ratio", 1.5)
            .set("flag", true)
            .set("none", Json::Null)
            .set("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n":42,"f":2.5,"s":"x","neg":-7}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("neg").unwrap().as_f64(), Some(-7.0));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn nan_degrades_to_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn big_u64_survives() {
        let x = u64::MAX;
        let text = Json::U64(x).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(x));
    }
}
