//! Global observability registry: counters, fixed-bucket histograms, and
//! nestable wall-clock spans.
//!
//! Everything is gated on one process-wide flag. When disabled (the
//! default), every instrumentation call is a single relaxed atomic load
//! and an early return — cheap enough for per-packet hot paths. When
//! enabled, updates take a global mutex; observability runs are
//! measurement runs, where microsecond-scale lock overhead is acceptable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns instrumentation off (in-flight spans record nothing).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether instrumentation is on. Inlined into every hot-path call site.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram of `u64` observations.
///
/// Bucket 0 counts exact zeros; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index for a value.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive value range `[lo, hi]` covered by a bucket.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else {
            (
                1 << (index - 1),
                ((1u128 << index) - 1).min(u64::MAX as u128) as u64,
            )
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`), resolved to
    /// bucket granularity: the high edge of the bucket holding the
    /// rank-`ceil(q * count)` observation, clamped to the observed
    /// `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Aggregate timing of one span path.
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    /// Times the span closed.
    pub count: u64,
    /// Total nanoseconds across closures.
    pub total_ns: u64,
    /// Longest single closure in nanoseconds.
    pub max_ns: u64,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    runtime_counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    runtime_histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<String, SpanStats>,
    events: Vec<String>,
    capture_events: bool,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Adds `delta` to a named counter. No-op when disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    *reg.counters.entry(name).or_insert(0) += delta;
}

/// Adds `delta` to a named **runtime counter**. No-op when disabled.
///
/// Runtime counters are for facts that depend on thread scheduling —
/// work-steal counts, pool task distribution — rather than on the
/// simulated computation. They live next to span timings on the
/// non-deterministic side of the metrics document: serialized only when
/// timings are (`include_timings`), and excluded from the byte-identical
/// guarantee that deterministic counters, histograms, and the
/// [`crate::RunReport`] line carry across same-seed runs.
#[inline]
pub fn runtime_counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    *reg.runtime_counters.entry(name).or_insert(0) += delta;
}

/// Records a value into a named histogram. No-op when disabled.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    reg.histograms.entry(name).or_default().record(value);
}

/// Records a value into a named **runtime histogram**. No-op when
/// disabled.
///
/// Runtime histograms hold wall-clock facts — per-phase latencies,
/// scheduling-dependent queue waits — and live on the non-deterministic
/// side of the metrics document alongside spans and runtime counters:
/// serialized only with `include_timings`, excluded from byte-identity
/// comparisons across same-seed runs.
#[inline]
pub fn record_runtime(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    reg.runtime_histograms
        .entry(name)
        .or_default()
        .record(value);
}

/// Sets a named gauge to an absolute level. No-op when disabled.
///
/// Gauges are instantaneous levels (queue depth, in-flight requests)
/// rather than monotone totals. They sit on the deterministic side: a
/// gauge driven by simulated state (e.g. packets in flight at the final
/// step) is reproducible across same-seed runs.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    reg.gauges.insert(name, value);
}

/// Adds `delta` (possibly negative) to a named gauge. No-op when
/// disabled.
#[inline]
pub fn gauge_add(name: &'static str, delta: i64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    *reg.gauges.entry(name).or_insert(0) += delta;
}

/// A write handle over the registry held open for one atomic batch; see
/// [`update`].
pub struct Batch<'a> {
    reg: &'a mut Registry,
}

impl Batch<'_> {
    /// Adds to a counter within the batch.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.reg.counters.entry(name).or_insert(0) += delta;
    }

    /// Adds to a gauge within the batch.
    pub fn gauge_add(&mut self, name: &'static str, delta: i64) {
        *self.reg.gauges.entry(name).or_insert(0) += delta;
    }

    /// Sets a gauge within the batch.
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        self.reg.gauges.insert(name, value);
    }

    /// Records into a histogram within the batch.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.reg.histograms.entry(name).or_default().record(value);
    }

    /// Records into a runtime histogram within the batch.
    pub fn record_runtime(&mut self, name: &'static str, value: u64) {
        self.reg
            .runtime_histograms
            .entry(name)
            .or_default()
            .record(value);
    }
}

/// Applies several registry updates as one atomic transition: the whole
/// closure runs under the registry lock, so a concurrent [`snapshot`]
/// sees either none or all of its effects. This is how writers maintain
/// cross-metric invariants (conservation laws) that a reader may check.
/// No-op when disabled.
#[inline]
pub fn update(f: impl FnOnce(&mut Batch<'_>)) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    f(&mut Batch { reg: &mut reg });
}

/// An RAII span: measures wall-clock time from creation to drop and
/// records it under the nesting path (`outer/inner`). Created disabled,
/// it does nothing at all.
#[must_use = "a span measures until dropped; binding to _ drops immediately"]
pub struct SpanGuard {
    start: Option<Instant>,
    depth: usize,
}

/// Opens a span. No-op (one atomic load) when disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            start: None,
            depth: 0,
        };
    }
    let depth = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.len() - 1
    });
    SpanGuard {
        start: Some(Instant::now()),
        depth,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut reg = registry().lock().unwrap();
        let stats = reg.spans.entry(path.clone()).or_default();
        stats.count += 1;
        stats.total_ns += elapsed_ns;
        stats.max_ns = stats.max_ns.max(elapsed_ns);
        if reg.capture_events {
            let mut line = crate::json::Json::obj();
            line.set("type", "span_event")
                .set("name", path)
                .set("depth", self.depth)
                .set("ns", elapsed_ns);
            let line = line.to_string();
            reg.events.push(line);
        }
    }
}

/// Starts capturing one JSON-lines event per span closure (implies the
/// cost of formatting each event; used by `--trace`).
pub fn capture_events(on: bool) {
    let mut reg = registry().lock().unwrap();
    reg.capture_events = on;
}

/// A point-in-time copy of the whole registry.
///
/// Taken under the registry lock, so it is *consistent*: every update
/// applied through one [`update`] batch is either fully visible or not
/// visible at all.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Runtime (scheduling-dependent) counter values by name.
    pub runtime_counters: Vec<(String, u64)>,
    /// Gauge levels by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Runtime (wall-clock) histograms by name.
    pub runtime_histograms: Vec<(String, Histogram)>,
    /// Span timings by nesting path.
    pub spans: Vec<(String, SpanStats)>,
    /// Captured span events (JSON lines), if event capture was on.
    pub events: Vec<String>,
}

/// Copies the current registry contents (sorted by name — deterministic).
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap();
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        runtime_counters: reg
            .runtime_counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        runtime_histograms: reg
            .runtime_histograms
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        spans: reg
            .spans
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        events: reg.events.clone(),
    }
}

/// Replaces the **deterministic** registry contents — counters and
/// histograms — with the given values, wholesale. Runtime counters,
/// runtime histograms, spans, and captured events (the
/// scheduling/wall-clock side) are left untouched, and so are gauges:
/// a gauge is a level the run re-establishes as it replays, not an
/// accumulation to reinstate.
///
/// This is the restore half of checkpoint/resume: a resumed run
/// reinstates the counters and histograms the interrupted run had
/// accumulated, so its final metrics are identical to an uninterrupted
/// run's. Counter and histogram names are `&'static str` keys; restored
/// names are interned with `Box::leak` (bounded — at most one restore
/// per process resume).
pub fn restore_deterministic(counters: &[(String, u64)], histograms: &[(String, Histogram)]) {
    let mut reg = registry().lock().unwrap();
    reg.counters = counters
        .iter()
        .map(|(k, v)| (&*Box::leak(k.clone().into_boxed_str()), *v))
        .collect();
    reg.histograms = histograms
        .iter()
        .map(|(k, v)| (&*Box::leak(k.clone().into_boxed_str()), v.clone()))
        .collect();
}

/// Named counter deltas, in the owned form they cross process
/// boundaries in (the registry itself keys by `&'static str`).
pub type CounterDeltas = Vec<(String, u64)>;

/// Named histogram deltas, in the owned cross-process form.
pub type HistogramDeltas = Vec<(String, Histogram)>;

/// Removes and returns the **deterministic** registry contents —
/// counters and histograms — leaving the runtime/wall-clock side in
/// place. Returns empty vectors when disabled.
///
/// This is the shipping half of cross-process metrics: a multi-process
/// worker drains its deterministic observations after every step and
/// sends them to the supervisor, which folds them in with
/// [`merge_deterministic`]. Draining (rather than snapshotting) makes
/// each shipment a delta, so re-sends after a crash replay can simply be
/// discarded.
pub fn take_deterministic() -> (CounterDeltas, HistogramDeltas) {
    if !is_enabled() {
        return (Vec::new(), Vec::new());
    }
    let mut reg = registry().lock().unwrap();
    let counters = std::mem::take(&mut reg.counters)
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let histograms = std::mem::take(&mut reg.histograms)
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    (counters, histograms)
}

/// Folds deterministic observations captured in another process into
/// this registry: counters are added, histograms merged
/// ([`Histogram::merge`]). Both operations are commutative and
/// associative, so the fold order across processes does not affect the
/// result. No-op when disabled.
///
/// Names are interned with `Box::leak` only on first sight; repeated
/// merges of the same names (once per step per worker) allocate nothing.
pub fn merge_deterministic(counters: &[(String, u64)], histograms: &[(String, Histogram)]) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    for (k, v) in counters {
        match reg.counters.get_mut(k.as_str()) {
            Some(slot) => *slot += v,
            None => {
                reg.counters
                    .insert(&*Box::leak(k.clone().into_boxed_str()), *v);
            }
        }
    }
    for (k, h) in histograms {
        match reg.histograms.get_mut(k.as_str()) {
            Some(slot) => slot.merge(h),
            None => {
                reg.histograms
                    .insert(&*Box::leak(k.clone().into_boxed_str()), h.clone());
            }
        }
    }
}

/// Clears all counters, gauges, histograms, spans, and captured events.
/// The enabled flag and event-capture setting are unchanged.
pub fn reset() {
    let mut reg = registry().lock().unwrap();
    reg.counters.clear();
    reg.runtime_counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
    reg.runtime_histograms.clear();
    reg.spans.clear();
    reg.events.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that enable it must not
    /// run concurrently with each other.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_a_noop() {
        let _guard = serial();
        disable();
        reset();
        counter_add("x", 5);
        record("h", 3);
        let _span = span("s");
        drop(_span);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _guard = serial();
        enable();
        reset();
        counter_add("pkts", 3);
        counter_add("pkts", 4);
        record("bits", 0);
        record("bits", 1);
        record("bits", 5);
        record("bits", 1024);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counters, vec![("pkts".to_string(), 7)]);
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[3], 1); // 4..8
        assert_eq!(h.buckets[11], 1); // 1024..2048
    }

    #[test]
    fn runtime_counters_are_separate() {
        let _guard = serial();
        enable();
        reset();
        counter_add("det", 1);
        runtime_counter_add("sched", 2);
        runtime_counter_add("sched", 3);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counters, vec![("det".to_string(), 1)]);
        assert_eq!(snap.runtime_counters, vec![("sched".to_string(), 5)]);
    }

    #[test]
    fn gauges_set_and_add() {
        let _guard = serial();
        enable();
        reset();
        gauge_set("depth", 7);
        gauge_add("depth", -3);
        gauge_add("inflight", 2);
        let snap = snapshot();
        disable();
        assert_eq!(
            snap.gauges,
            vec![("depth".to_string(), 4), ("inflight".to_string(), 2)]
        );
    }

    #[test]
    fn runtime_histograms_are_separate() {
        let _guard = serial();
        enable();
        reset();
        record("det_h", 1);
        record_runtime("phase_ns", 100);
        record_runtime("phase_ns", 200);
        let snap = snapshot();
        disable();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.runtime_histograms.len(), 1);
        let (name, h) = &snap.runtime_histograms[0];
        assert_eq!(name, "phase_ns");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 300);
    }

    #[test]
    fn update_batch_is_atomic_under_the_lock() {
        let _guard = serial();
        enable();
        reset();
        update(|b| {
            b.counter_add("accepted", 1);
            b.gauge_add("in_flight", 1);
            b.record("h", 5);
            b.record_runtime("rt", 9);
        });
        update(|b| {
            b.counter_add("completed", 1);
            b.gauge_add("in_flight", -1);
            b.gauge_set("queue", 0);
        });
        let snap = snapshot();
        disable();
        assert_eq!(
            snap.counters,
            vec![("accepted".to_string(), 1), ("completed".to_string(), 1)]
        );
        assert_eq!(
            snap.gauges,
            vec![("in_flight".to_string(), 0), ("queue".to_string(), 0)]
        );
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.runtime_histograms[0].1.count, 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_edges() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        // rank(0.5 * 6) = 3 -> the value 3 lives in bucket [2,3].
        assert_eq!(h.quantile(0.5), 3);
        // p99 of six observations is the max's bucket, clamped to max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let mut zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.quantile(0.99), 0);
    }

    #[test]
    fn merge_folds_counts_and_bounds() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(8);
        let mut b = Histogram::new();
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1033);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 1024);
        assert_eq!(a.buckets[11], 1);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(3), (4, 7));
    }

    #[test]
    fn spans_nest_by_path() {
        let _guard = serial();
        enable();
        reset();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let snap = snapshot();
        disable();
        let names: Vec<&str> = snap.spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["outer", "outer/inner"]);
        assert!(snap.spans.iter().all(|(_, s)| s.count == 1));
    }

    #[test]
    fn event_capture_emits_json_lines() {
        let _guard = serial();
        enable();
        capture_events(true);
        reset();
        {
            let _s = span("phase");
        }
        let snap = snapshot();
        capture_events(false);
        disable();
        assert_eq!(snap.events.len(), 1);
        let parsed = crate::json::Json::parse(&snap.events[0]).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("span_event"));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("phase"));
    }

    #[test]
    fn restore_replaces_deterministic_state_only() {
        let _guard = serial();
        enable();
        reset();
        counter_add("stale", 99);
        record("stale_h", 1);
        runtime_counter_add("sched", 4);
        let mut h = Histogram::new();
        h.record(8);
        h.record(8);
        restore_deterministic(
            &[("restored".to_string(), 42)],
            &[("restored_h".to_string(), h)],
        );
        // Accumulation continues on top of the restored values.
        counter_add("restored", 1);
        record("restored_h", 8);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counters, vec![("restored".to_string(), 43)]);
        assert_eq!(snap.runtime_counters, vec![("sched".to_string(), 4)]);
        assert_eq!(snap.histograms.len(), 1);
        let (name, rh) = &snap.histograms[0];
        assert_eq!(name, "restored_h");
        assert_eq!(rh.count, 3);
        assert_eq!(rh.sum, 24);
    }

    #[test]
    fn take_and_merge_ship_deltas_across_registries() {
        let _guard = serial();
        enable();
        reset();
        counter_add("hits", 2);
        record("h", 4);
        let (c, h) = take_deterministic();
        // Drained: the deterministic side is empty until new activity.
        assert!(snapshot().counters.is_empty());
        assert!(snapshot().histograms.is_empty());
        counter_add("hits", 1);
        record("h", 16);
        merge_deterministic(&c, &h);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counters, vec![("hits".to_string(), 3)]);
        let (_, hh) = &snap.histograms[0];
        assert_eq!(hh.count, 2);
        assert_eq!(hh.sum, 20);
        assert_eq!(hh.min, 4);
        assert_eq!(hh.max, 16);
    }

    #[test]
    fn reset_clears() {
        let _guard = serial();
        enable();
        reset();
        counter_add("c", 1);
        reset();
        let snap = snapshot();
        disable();
        assert!(snap.counters.is_empty());
    }
}
