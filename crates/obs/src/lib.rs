//! `oblivion-obs`: dependency-free observability for the oblivion
//! workspace.
//!
//! Three pieces, all hand-rolled so the workspace keeps building with no
//! external crates:
//!
//! * [`registry`] — a process-global registry of named counters, gauges,
//!   power-of-two-bucket histograms (deterministic and wall-clock
//!   "runtime" flavors), and nestable wall-clock spans, with an atomic
//!   [`update`] batch API so readers only ever see
//!   invariant-preserving snapshots. Instrumentation is off by default;
//!   every call site then costs one relaxed atomic load, so hot paths
//!   (per-packet routing, per-step simulation) can stay instrumented
//!   unconditionally.
//! * [`json`] — a small deterministic JSON writer/parser with
//!   order-preserving objects, so same-seed runs serialize to
//!   byte-identical documents.
//! * [`report`] — the JSON-lines metrics format: tagged
//!   counter/histogram/span lines plus a final [`RunReport`] line,
//!   written by `--metrics-out` and the bench harness and rendered back
//!   by `oblivion stats`.
//!
//! Typical use:
//!
//! ```
//! oblivion_obs::enable();
//! {
//!     let _span = oblivion_obs::span("path_selection");
//!     oblivion_obs::counter_add("packets_routed", 1);
//!     oblivion_obs::record("random_bits_per_packet", 12);
//! }
//! let snap = oblivion_obs::snapshot();
//! let mut report = oblivion_obs::RunReport::new("demo");
//! report.set("packets", 1u64);
//! let jsonl = report.to_jsonl(&snap, true);
//! assert!(jsonl.contains("packets_routed"));
//! oblivion_obs::reset();
//! oblivion_obs::disable();
//! ```

pub mod json;
pub mod registry;
pub mod report;

pub use json::Json;
pub use registry::{
    capture_events, counter_add, disable, enable, gauge_add, gauge_set, is_enabled,
    merge_deterministic, record, record_runtime, reset, restore_deterministic, runtime_counter_add,
    snapshot, span, take_deterministic, update, Batch, Histogram, Snapshot, SpanGuard, SpanStats,
    HISTOGRAM_BUCKETS,
};
pub use report::{
    histogram_from_json, histogram_json, parse_jsonl, parse_jsonl_lossy, render, report_schemas,
    snapshot_lines, RunReport, SCHEMA_VERSION,
};
