//! Classic mesh traffic patterns.

use crate::Workload;
use oblivion_mesh::{Coord, Mesh};
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random permutation: every node sources one packet and sinks
/// one packet.
pub fn random_permutation<R: Rng + ?Sized>(mesh: &Mesh, rng: &mut R) -> Workload {
    let mut targets: Vec<Coord> = mesh.coords().collect();
    targets.shuffle(rng);
    let pairs = mesh.coords().zip(targets).collect();
    Workload::new("random-perm", pairs)
}

/// `count` independent uniform `(s, t)` pairs (not a permutation).
pub fn random_pairs<R: Rng + ?Sized>(mesh: &Mesh, count: usize, rng: &mut R) -> Workload {
    let n = mesh.node_count();
    let pairs = (0..count)
        .map(|_| {
            let s = mesh.coord(oblivion_mesh::NodeId(rng.gen_range(0..n)));
            let t = mesh.coord(oblivion_mesh::NodeId(rng.gen_range(0..n)));
            (s, t)
        })
        .collect();
    Workload::new("random-pairs", pairs)
}

/// Matrix transpose, `(x, y) → (y, x)`: the classic adversary for
/// deterministic XY routing on the 2-D mesh.
///
/// # Panics
/// Panics unless the mesh is 2-D and square.
pub fn transpose(mesh: &Mesh) -> Workload {
    assert_eq!(mesh.dim(), 2);
    assert_eq!(mesh.side(0), mesh.side(1));
    let pairs = mesh
        .coords()
        .map(|c| (c, Coord::new(&[c[1], c[0]])))
        .collect();
    Workload::new("transpose", pairs)
}

/// Bit reversal of the concatenated coordinate bits, `d`-dimensional,
/// power-of-two sides: reverses the bit string of each coordinate.
///
/// # Panics
/// Panics unless every side is a power of two.
pub fn bit_reversal(mesh: &Mesh) -> Workload {
    assert!(mesh.dims().iter().all(|m| m.is_power_of_two()));
    let pairs = mesh
        .coords()
        .map(|c| {
            let mut t = c;
            for i in 0..mesh.dim() {
                let bits = mesh.side(i).trailing_zeros();
                t[i] = c[i].reverse_bits() >> (32 - bits);
            }
            (c, t)
        })
        .collect();
    Workload::new("bit-reversal", pairs)
}

/// Bit complement: `x_i → (m_i - 1) - x_i` on every axis — every packet
/// crosses the center of the mesh.
pub fn bit_complement(mesh: &Mesh) -> Workload {
    let pairs = mesh
        .coords()
        .map(|c| {
            let mut t = c;
            for i in 0..mesh.dim() {
                t[i] = mesh.side(i) - 1 - c[i];
            }
            (c, t)
        })
        .collect();
    Workload::new("bit-complement", pairs)
}

/// Tornado: along axis 0, `x → (x + ⌈m/2⌉ - 1) mod m` — the classic
/// near-half-way rotation that defeats locally minimal schemes on rings.
pub fn tornado(mesh: &Mesh) -> Workload {
    let m = mesh.side(0);
    // shift = ⌈m/2⌉ - 1, but at least 1 so the pattern is non-trivial.
    let shift = if m >= 2 { ((m - 1) / 2).max(1) } else { 0 };
    let pairs = mesh
        .coords()
        .map(|c| (c, c.with(0, (c[0] + shift) % m)))
        .collect();
    Workload::new("tornado", pairs)
}

/// Perfect shuffle: rotate the bit string of each coordinate left by one
/// (power-of-two sides) — the FFT/sorting-network communication pattern.
///
/// # Panics
/// Panics unless every side is a power of two.
pub fn shuffle(mesh: &Mesh) -> Workload {
    assert!(mesh.dims().iter().all(|m| m.is_power_of_two()));
    let pairs = mesh
        .coords()
        .map(|c| {
            let mut t = c;
            for i in 0..mesh.dim() {
                let bits = mesh.side(i).trailing_zeros();
                if bits > 0 {
                    let x = c[i];
                    t[i] = ((x << 1) | (x >> (bits - 1))) & (mesh.side(i) - 1);
                }
            }
            (c, t)
        })
        .collect();
    Workload::new("shuffle", pairs)
}

/// Neighbor exchange along `axis`: nodes swap with their partner in
/// adjacent pairs (`2i ↔ 2i+1`) — purely local traffic with distance 1.
///
/// # Panics
/// Panics if the side along `axis` is odd.
pub fn neighbor_exchange(mesh: &Mesh, axis: usize) -> Workload {
    assert_eq!(mesh.side(axis) % 2, 0, "need an even side for pairing");
    let pairs = mesh
        .coords()
        .map(|c| {
            let x = c[axis];
            let partner = if x % 2 == 0 { x + 1 } else { x - 1 };
            (c, c.with(axis, partner))
        })
        .collect();
    Workload::new("neighbor-exchange", pairs)
}

/// Pairs straddling the central hyperplane cut along `axis`: for every
/// position of the other axes, `(center-1, …) ↔ (center, …)` in both
/// directions. Distance-1 traffic that maximally embarrasses access-tree
/// routing (every pair's tree LCA is the root).
pub fn central_cut_neighbors(mesh: &Mesh, axis: usize) -> Workload {
    let m = mesh.side(axis);
    assert!(m >= 2);
    let lo = m / 2 - 1;
    let hi = m / 2;
    let mut pairs = Vec::new();
    for c in mesh.coords() {
        if c[axis] == lo {
            pairs.push((c, c.with(axis, hi)));
        } else if c[axis] == hi {
            pairs.push((c, c.with(axis, lo)));
        }
    }
    Workload::new("central-cut", pairs)
}

/// Hotspot traffic: `count` random sources all send to `target`.
pub fn hotspot<R: Rng + ?Sized>(mesh: &Mesh, target: Coord, count: usize, rng: &mut R) -> Workload {
    let n = mesh.node_count();
    let pairs = (0..count)
        .map(|_| {
            let s = mesh.coord(oblivion_mesh::NodeId(rng.gen_range(0..n)));
            (s, target)
        })
        .collect();
    Workload::new("hotspot", pairs)
}

/// Every node sends to a single sink (complete convergecast).
pub fn all_to_one(mesh: &Mesh, target: Coord) -> Workload {
    let pairs = mesh.coords().map(|c| (c, target)).collect();
    Workload::new("all-to-one", pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn is_permutation(mesh: &Mesh, w: &Workload) -> bool {
        let srcs: HashSet<_> = w.pairs.iter().map(|(s, _)| *s).collect();
        let dsts: HashSet<_> = w.pairs.iter().map(|(_, t)| *t).collect();
        srcs.len() == mesh.node_count() && dsts.len() == mesh.node_count()
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let mut rng = StdRng::seed_from_u64(1);
        let w = random_permutation(&mesh, &mut rng);
        assert_eq!(w.len(), 64);
        assert!(is_permutation(&mesh, &w));
    }

    #[test]
    fn transpose_fixed_points_on_diagonal() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let w = transpose(&mesh);
        assert!(is_permutation(&mesh, &w));
        let diag = w.pairs.iter().filter(|(s, t)| s == t).count();
        assert_eq!(diag, 4);
    }

    #[test]
    fn bit_reversal_is_involution_permutation() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = bit_reversal(&mesh);
        assert!(is_permutation(&mesh, &w));
        // Applying twice is the identity.
        for (s, t) in &w.pairs {
            let again = w
                .pairs
                .iter()
                .find(|(s2, _)| s2 == t)
                .map(|(_, t2)| *t2)
                .unwrap();
            assert_eq!(again, *s);
        }
    }

    #[test]
    fn bit_complement_distance_is_constant() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = bit_complement(&mesh);
        assert!(is_permutation(&mesh, &w));
        // Every pair has |7-2x| + |7-2y| distance; max at corners = 14.
        assert_eq!(w.max_distance(&mesh), 14);
    }

    #[test]
    fn tornado_is_permutation_even_and_odd() {
        for m in [8u32, 9] {
            let mesh = Mesh::new_mesh(&[m, m]);
            let w = tornado(&mesh);
            assert!(is_permutation(&mesh, &w), "m={m}");
        }
    }

    #[test]
    fn shuffle_is_permutation_and_periodic() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = shuffle(&mesh);
        assert!(is_permutation(&mesh, &w));
        // Applying the rotation log2(8) = 3 times returns to the start.
        let step = |c: &Coord| -> Coord {
            w.pairs
                .iter()
                .find(|(s, _)| s == c)
                .map(|(_, t)| *t)
                .unwrap()
        };
        let start = Coord::new(&[5, 3]);
        let thrice = step(&step(&step(&start)));
        assert_eq!(thrice, start);
    }

    #[test]
    fn neighbor_exchange_distance_one() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = neighbor_exchange(&mesh, 1);
        assert!(is_permutation(&mesh, &w));
        assert!(w.pairs.iter().all(|(s, t)| mesh.dist(s, t) == 1));
    }

    #[test]
    fn central_cut_pairs() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = central_cut_neighbors(&mesh, 0);
        assert_eq!(w.len(), 16); // 8 rows, both directions
        assert!(w.pairs.iter().all(|(s, t)| mesh.dist(s, t) == 1));
    }

    #[test]
    fn hotspot_targets_single_node() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let mut rng = StdRng::seed_from_u64(2);
        let tgt = Coord::new(&[4, 4]);
        let w = hotspot(&mesh, tgt, 100, &mut rng);
        assert_eq!(w.len(), 100);
        assert!(w.pairs.iter().all(|(_, t)| *t == tgt));
    }

    #[test]
    fn all_to_one_covers_sources() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let w = all_to_one(&mesh, Coord::new(&[0, 0]));
        assert_eq!(w.len(), 16);
    }

    #[test]
    fn without_self_loops() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let w = transpose(&mesh).without_self_loops();
        assert_eq!(w.len(), 12);
    }
}
