//! # oblivion-workloads
//!
//! Routing-problem generators for mesh networks: the classic permutation
//! benchmarks (transpose, bit-reversal, bit-complement, tornado), local
//! and random traffic, and the paper's adversarial constructions — the
//! distance-`ℓ` pairing underlying Section 5.1 and the congestion-forcing
//! subset `Π_A` of Lemma 5.1.
//!
//! A routing problem is a list of `(source, destination)` pairs (the
//! paper's `Π = {(s_i, t_i)}`); generators return a [`Workload`] carrying
//! a descriptive name for reports.
//!
//! ```
//! use oblivion_mesh::Mesh;
//! use oblivion_workloads::{transpose, distance_permutation};
//!
//! let mesh = Mesh::new_mesh(&[16, 16]);
//! let w = transpose(&mesh).without_self_loops();
//! assert_eq!(w.len(), 240); // 256 nodes minus the 16 diagonal fixpoints
//! assert_eq!(w.max_distance(&mesh), 30);
//!
//! // The Section-5 base construction: every packet travels exactly 4.
//! let d4 = distance_permutation(&mesh, 4);
//! assert!(d4.pairs.iter().all(|(s, t)| mesh.dist(s, t) == 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod classic;
pub mod io;

pub use adversarial::{distance_permutation, pi_a, PiA};
pub use classic::{
    all_to_one, bit_complement, bit_reversal, central_cut_neighbors, hotspot, neighbor_exchange,
    random_pairs, random_permutation, shuffle, tornado, transpose,
};

use oblivion_mesh::Coord;

/// A named routing problem.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name for tables ("transpose", "random-perm", …).
    pub name: String,
    /// The source/destination pairs.
    pub pairs: Vec<(Coord, Coord)>,
}

impl Workload {
    /// Creates a workload from a name and pair list.
    pub fn new(name: impl Into<String>, pairs: Vec<(Coord, Coord)>) -> Self {
        Self {
            name: name.into(),
            pairs,
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no packets.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Drops pairs with `s == t` (they route trivially).
    pub fn without_self_loops(mut self) -> Self {
        self.pairs.retain(|(s, t)| s != t);
        self
    }

    /// Maximum shortest-path distance `D'` over the pairs.
    pub fn max_distance(&self, mesh: &oblivion_mesh::Mesh) -> u64 {
        self.pairs
            .iter()
            .map(|(s, t)| mesh.dist(s, t))
            .max()
            .unwrap_or(0)
    }
}
