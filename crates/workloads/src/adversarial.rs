//! The paper's adversarial constructions (Section 5.1).
//!
//! To lower-bound the randomness any good oblivious algorithm needs, the
//! paper builds, *from the algorithm `A` itself*, a routing problem `Π_A`:
//!
//! 1. take a permutation in which every packet travels distance exactly
//!    `ℓ` (partition the mesh into side-`ℓ` blocks and exchange adjacent
//!    blocks);
//! 2. give every packet its **most probable** path under `A`;
//! 3. some edge `e` is crossed by `≥ ℓ/d` of these modal paths (averaging
//!    argument); `Π_A` keeps exactly the packets crossing `e`.
//!
//! A κ-choice algorithm then routes each `Π_A` packet across `e` with
//! probability `≥ 1/κ`, forcing expected congestion `≥ ℓ/(dκ)`
//! (Lemma 5.1) — so deterministic (κ = 1) algorithms congest, and
//! comparable-congestion algorithms need `Ω((ℓ/d^{1+1/d}) log d / …)`
//! random bits (Lemma 5.3).
//!
//! For deterministic baselines the modal path is exact (κ = 1). For
//! randomized algorithms we *estimate* the mode from `samples` draws —
//! the substitution documented in DESIGN.md §5.

use crate::Workload;
use oblivion_core::ObliviousRouter;
use oblivion_mesh::{Coord, Mesh, Path};
use rand::RngCore;
use std::collections::HashMap;

/// A permutation in which every packet travels distance exactly `ℓ`
/// along axis 0: side-`ℓ` slabs are exchanged pairwise.
///
/// This is the base permutation of the `Π_A` construction ("dividing the
/// network into submeshes of side length ℓ, and then forming pairs of
/// submeshes which exchange their packets at the respective nodes").
///
/// # Panics
/// Panics unless `ℓ ≥ 1` and `m₀ / ℓ` is a positive even number.
pub fn distance_permutation(mesh: &Mesh, l: u32) -> Workload {
    assert!(l >= 1);
    let m = mesh.side(0);
    let slabs = m / l;
    assert!(
        slabs >= 2 && slabs.is_multiple_of(2) && slabs * l == m,
        "side {m} must split into an even number of side-{l} slabs"
    );
    let pairs = mesh
        .coords()
        .map(|c| {
            let slab = c[0] / l;
            let partner_slab = if slab.is_multiple_of(2) {
                slab + 1
            } else {
                slab - 1
            };
            (c, c.with(0, partner_slab * l + (c[0] % l)))
        })
        .collect();
    Workload::new(format!("distance-{l}"), pairs)
}

/// The result of the `Π_A` construction.
#[derive(Debug, Clone)]
pub struct PiA {
    /// The packets of `Π_A`: all pairs whose modal path crosses the most
    /// congested edge.
    pub workload: Workload,
    /// The modal paths of those packets (one per pair, same order).
    pub modal_paths: Vec<Path>,
    /// Modal-path congestion of the chosen edge (`= |Π_A|`).
    pub edge_load: u32,
}

/// Builds `Π_A` for a router (Section 5.1).
///
/// `samples` controls the modal-path estimate: `1` suffices for
/// deterministic routers; use ~10–30 for randomized ones.
pub fn pi_a<A: ObliviousRouter + ?Sized>(
    router: &A,
    l: u32,
    samples: usize,
    rng: &mut dyn RngCore,
) -> PiA {
    assert!(samples >= 1);
    let mesh = router.mesh();
    let base = distance_permutation(mesh, l);

    // Modal path per pair.
    let modal: Vec<Path> = base
        .pairs
        .iter()
        .map(|(s, t)| {
            if samples == 1 {
                return router.select_path(s, t, rng).path;
            }
            let mut counts: HashMap<Vec<Coord>, (u32, Path)> = HashMap::new();
            for _ in 0..samples {
                let p = router.select_path(s, t, rng).path;
                let key = p.nodes().to_vec();
                counts
                    .entry(key)
                    .and_modify(|(c, _)| *c += 1)
                    .or_insert((1, p));
            }
            counts
                .into_values()
                .max_by_key(|(c, _)| *c)
                .map(|(_, p)| p)
                .unwrap() // ci-allow-unwrap: samples >= 1, so counts is non-empty
        })
        .collect();

    // Edge loads of the modal paths.
    let mut loads = vec![0u32; mesh.edge_count()];
    for p in &modal {
        for e in p.edge_ids(mesh) {
            loads[e.0] += 1;
        }
    }
    let (hot_edge, &edge_load) = loads
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("mesh has edges"); // ci-allow-unwrap: every mesh has at least one edge

    // Keep the packets crossing the hot edge.
    let mut pairs = Vec::new();
    let mut kept_paths = Vec::new();
    for (p, pair) in modal.iter().zip(&base.pairs) {
        if p.edge_ids(mesh).any(|e| e.0 == hot_edge) {
            pairs.push(*pair);
            kept_paths.push(p.clone());
        }
    }
    PiA {
        workload: Workload::new(format!("pi-a(l={l}, {})", router.name()), pairs),
        modal_paths: kept_paths,
        edge_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_core::DimOrder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn distance_permutation_properties() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        for l in [1u32, 2, 4, 8] {
            let w = distance_permutation(&mesh, l);
            assert_eq!(w.len(), 256);
            assert!(w.pairs.iter().all(|(s, t)| mesh.dist(s, t) == u64::from(l)));
            let dsts: HashSet<_> = w.pairs.iter().map(|(_, t)| *t).collect();
            assert_eq!(dsts.len(), 256, "l={l} not a permutation");
        }
    }

    #[test]
    #[should_panic]
    fn distance_permutation_rejects_odd_slab_count() {
        let mesh = Mesh::new_mesh(&[12, 12]);
        let _ = distance_permutation(&mesh, 4); // 3 slabs
    }

    #[test]
    fn pi_a_on_deterministic_router_forces_big_load() {
        // Lemma 5.1 with κ = 1: the average edge sees ≥ l/d packets, and
        // every Π_A packet *always* crosses the hot edge.
        let mesh = Mesh::new_mesh(&[16, 16]);
        let router = DimOrder::new(mesh);
        let mut rng = StdRng::seed_from_u64(5);
        let l = 8;
        let res = pi_a(&router, l, 1, &mut rng);
        assert!(
            res.edge_load >= l / 2,
            "hot edge load {} below l/d = {}",
            res.edge_load,
            l / 2
        );
        assert_eq!(res.workload.len() as u32, res.edge_load);
        // Every kept packet has distance l.
        assert!(res
            .workload
            .pairs
            .iter()
            .all(|(s, t)| router.mesh().dist(s, t) == u64::from(l)));
    }

    #[test]
    fn pi_a_with_sampling_runs_on_randomized_router() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let router = oblivion_core::Busch2D::new(mesh);
        let mut rng = StdRng::seed_from_u64(6);
        let res = pi_a(&router, 2, 5, &mut rng);
        assert!(res.edge_load >= 1);
        assert_eq!(res.workload.len() as u32, res.edge_load);
    }
}
