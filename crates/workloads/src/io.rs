//! Plain-text workload serialization.
//!
//! Routing problems are exchanged as a simple line format so they can be
//! produced by other tools, checked into repositories, and replayed:
//!
//! ```text
//! # optional comment / blank lines
//! 3,4 -> 28,9
//! 0,0 -> 31,31
//! ```
//!
//! One pair per line, coordinates comma-separated, `->` between source and
//! destination. The parser validates dimensionality and bounds against the
//! mesh it is given, and failures come back as a typed
//! [`WorkloadIoError`] carrying the file and line — never a panic — so
//! callers (the CLI in particular) can print a clean message and exit.

use crate::Workload;
use oblivion_mesh::{Coord, Mesh};
use std::fmt;
use std::fmt::Write as _;

/// Why a workload file failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadIoErrorKind {
    /// The file could not be read at all.
    Io(String),
    /// A pair line has no `->` separator.
    MissingArrow,
    /// A coordinate component is not a number.
    BadNumber(String),
    /// A coordinate has the wrong number of components for the mesh.
    WrongDim {
        /// Components the mesh requires.
        expected: usize,
        /// Components the line supplied.
        got: usize,
    },
    /// A coordinate lies outside the mesh.
    OutOfBounds(String),
}

/// A typed workload-loading failure with file/line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadIoError {
    /// The file (or logical source name) being read.
    pub file: String,
    /// 1-based line of the offending text; `None` for whole-file I/O
    /// failures.
    pub line: Option<usize>,
    /// What went wrong.
    pub kind: WorkloadIoErrorKind,
}

impl WorkloadIoError {
    fn at(file: &str, line: usize, kind: WorkloadIoErrorKind) -> Self {
        Self {
            file: file.to_string(),
            line: Some(line),
            kind,
        }
    }
}

impl fmt::Display for WorkloadIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "{}: line {}: ", self.file, n)?,
            None => write!(f, "{}: ", self.file)?,
        }
        match &self.kind {
            WorkloadIoErrorKind::Io(e) => write!(f, "{e}"),
            WorkloadIoErrorKind::MissingArrow => write!(f, "missing `->`"),
            WorkloadIoErrorKind::BadNumber(e) => write!(f, "{e}"),
            WorkloadIoErrorKind::WrongDim { expected, got } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
            WorkloadIoErrorKind::OutOfBounds(c) => write!(f, "{c} outside the mesh"),
        }
    }
}

impl std::error::Error for WorkloadIoError {}

/// Serializes a workload to the line format.
pub fn to_text(w: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# workload: {} ({} pairs)", w.name, w.len());
    for (s, t) in &w.pairs {
        let fmt = |c: &Coord| {
            c.as_slice()
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{} -> {}", fmt(s), fmt(t));
    }
    out
}

/// Reads and parses a workload file, validating against `mesh`.
///
/// All failure modes — unreadable file, truncated or malformed lines,
/// out-of-range coordinates — come back as a [`WorkloadIoError`].
pub fn read_file(path: &str, mesh: &Mesh) -> Result<Workload, WorkloadIoError> {
    let text = std::fs::read_to_string(path).map_err(|e| WorkloadIoError {
        file: path.to_string(),
        line: None,
        kind: WorkloadIoErrorKind::Io(e.to_string()),
    })?;
    from_text(path, &text, mesh)
}

/// Parses the line format, validating every coordinate against `mesh`.
///
/// Returns a typed error naming the offending line on failure.
pub fn from_text(name: &str, text: &str, mesh: &Mesh) -> Result<Workload, WorkloadIoError> {
    let mut pairs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (lhs, rhs) = line.split_once("->").ok_or_else(|| {
            WorkloadIoError::at(name, lineno + 1, WorkloadIoErrorKind::MissingArrow)
        })?;
        let parse = |part: &str| -> Result<Coord, WorkloadIoError> {
            let xs: Result<Vec<u32>, _> = part.trim().split(',').map(str::parse::<u32>).collect();
            let xs = xs.map_err(|e| {
                WorkloadIoError::at(
                    name,
                    lineno + 1,
                    WorkloadIoErrorKind::BadNumber(e.to_string()),
                )
            })?;
            if xs.len() != mesh.dim() {
                return Err(WorkloadIoError::at(
                    name,
                    lineno + 1,
                    WorkloadIoErrorKind::WrongDim {
                        expected: mesh.dim(),
                        got: xs.len(),
                    },
                ));
            }
            let c = Coord::new(&xs);
            if !mesh.contains(&c) {
                return Err(WorkloadIoError::at(
                    name,
                    lineno + 1,
                    WorkloadIoErrorKind::OutOfBounds(c.to_string()),
                ));
            }
            Ok(c)
        };
        pairs.push((parse(lhs)?, parse(rhs)?));
    }
    Ok(Workload::new(name, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::transpose;

    #[test]
    fn round_trip() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = transpose(&mesh).without_self_loops();
        let text = to_text(&w);
        let w2 = from_text("replayed", &text, &mesh).unwrap();
        assert_eq!(w.pairs, w2.pairs);
        assert_eq!(w2.name, "replayed");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let text = "# header\n\n0,0 -> 3,3\n  # indented comment\n1,2->2,1\n";
        let w = from_text("t", text, &mesh).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.pairs[1].0.as_slice(), &[1, 2]);
    }

    #[test]
    fn errors_name_the_file_and_line() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let e = from_text("w.txt", "0,0 3,3", &mesh).unwrap_err();
        assert_eq!(e.line, Some(1));
        assert_eq!(e.kind, WorkloadIoErrorKind::MissingArrow);
        assert!(e.to_string().contains("w.txt: line 1"), "{e}");
        let e = from_text("t", "0,0 -> 9,9", &mesh).unwrap_err();
        assert!(matches!(e.kind, WorkloadIoErrorKind::OutOfBounds(_)));
        assert!(e.to_string().contains("outside"));
        let e = from_text("t", "0 -> 1,1", &mesh).unwrap_err();
        assert_eq!(
            e.kind,
            WorkloadIoErrorKind::WrongDim {
                expected: 2,
                got: 1
            }
        );
        let e = from_text("t", "0,0 -> 1,1\na,b -> 1,1", &mesh).unwrap_err();
        assert_eq!(e.line, Some(2));
        assert!(matches!(e.kind, WorkloadIoErrorKind::BadNumber(_)));
    }

    #[test]
    fn read_file_reports_io_errors() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let e = read_file("/nonexistent/definitely.txt", &mesh).unwrap_err();
        assert_eq!(e.line, None);
        assert!(matches!(e.kind, WorkloadIoErrorKind::Io(_)));
        assert!(e.to_string().starts_with("/nonexistent/definitely.txt:"));
    }

    #[test]
    fn read_file_round_trip() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let path = std::env::temp_dir().join("oblivion_workloads_io_test.txt");
        std::fs::write(&path, "0,0 -> 3,3\n").unwrap();
        let w = read_file(path.to_str().unwrap(), &mesh).unwrap();
        assert_eq!(w.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn three_dimensional() {
        let mesh = Mesh::new_mesh(&[4, 4, 4]);
        let w = from_text("t", "0,1,2 -> 3,2,1", &mesh).unwrap();
        assert_eq!(w.pairs[0].1.as_slice(), &[3, 2, 1]);
        let text = to_text(&w);
        assert!(text.contains("0,1,2 -> 3,2,1"));
    }
}
