//! Plain-text workload serialization.
//!
//! Routing problems are exchanged as a simple line format so they can be
//! produced by other tools, checked into repositories, and replayed:
//!
//! ```text
//! # optional comment / blank lines
//! 3,4 -> 28,9
//! 0,0 -> 31,31
//! ```
//!
//! One pair per line, coordinates comma-separated, `->` between source and
//! destination. The parser validates dimensionality and bounds against the
//! mesh it is given.

use crate::Workload;
use oblivion_mesh::{Coord, Mesh};
use std::fmt::Write as _;

/// Serializes a workload to the line format.
pub fn to_text(w: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# workload: {} ({} pairs)", w.name, w.len());
    for (s, t) in &w.pairs {
        let fmt = |c: &Coord| {
            c.as_slice()
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{} -> {}", fmt(s), fmt(t));
    }
    out
}

/// Parses the line format, validating every coordinate against `mesh`.
///
/// Returns a descriptive error naming the offending line on failure.
pub fn from_text(name: &str, text: &str, mesh: &Mesh) -> Result<Workload, String> {
    let mut pairs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (lhs, rhs) = line
            .split_once("->")
            .ok_or_else(|| format!("line {}: missing `->`", lineno + 1))?;
        let parse = |part: &str| -> Result<Coord, String> {
            let xs: Result<Vec<u32>, _> = part.trim().split(',').map(str::parse::<u32>).collect();
            let xs = xs.map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if xs.len() != mesh.dim() {
                return Err(format!(
                    "line {}: expected {} coordinates, got {}",
                    lineno + 1,
                    mesh.dim(),
                    xs.len()
                ));
            }
            let c = Coord::new(&xs);
            if !mesh.contains(&c) {
                return Err(format!("line {}: {c} outside the mesh", lineno + 1));
            }
            Ok(c)
        };
        pairs.push((parse(lhs)?, parse(rhs)?));
    }
    Ok(Workload::new(name, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::transpose;

    #[test]
    fn round_trip() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let w = transpose(&mesh).without_self_loops();
        let text = to_text(&w);
        let w2 = from_text("replayed", &text, &mesh).unwrap();
        assert_eq!(w.pairs, w2.pairs);
        assert_eq!(w2.name, "replayed");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let text = "# header\n\n0,0 -> 3,3\n  # indented comment\n1,2->2,1\n";
        let w = from_text("t", text, &mesh).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.pairs[1].0.as_slice(), &[1, 2]);
    }

    #[test]
    fn errors_name_the_line() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        assert!(from_text("t", "0,0 3,3", &mesh)
            .unwrap_err()
            .contains("line 1"));
        assert!(from_text("t", "0,0 -> 9,9", &mesh)
            .unwrap_err()
            .contains("outside"));
        assert!(from_text("t", "0 -> 1,1", &mesh)
            .unwrap_err()
            .contains("expected 2"));
        assert!(from_text("t", "a,b -> 1,1", &mesh)
            .unwrap_err()
            .contains("line 1"));
    }

    #[test]
    fn three_dimensional() {
        let mesh = Mesh::new_mesh(&[4, 4, 4]);
        let w = from_text("t", "0,1,2 -> 3,2,1", &mesh).unwrap();
        assert_eq!(w.pairs[0].1.as_slice(), &[3, 2, 1]);
        let text = to_text(&w);
        assert!(text.contains("0,1,2 -> 3,2,1"));
    }
}
