//! Property tests for the workload generators.

use oblivion_mesh::{Coord, Mesh};
use oblivion_workloads as wl;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn assert_permutation(mesh: &Mesh, w: &wl::Workload) -> Result<(), TestCaseError> {
    prop_assert_eq!(w.len(), mesh.node_count());
    let srcs: HashSet<Coord> = w.pairs.iter().map(|(s, _)| *s).collect();
    let dsts: HashSet<Coord> = w.pairs.iter().map(|(_, t)| *t).collect();
    prop_assert_eq!(srcs.len(), mesh.node_count());
    prop_assert_eq!(dsts.len(), mesh.node_count());
    for (s, t) in &w.pairs {
        prop_assert!(mesh.contains(s) && mesh.contains(t));
    }
    Ok(())
}

proptest! {
    /// random_permutation is a permutation on any mesh.
    #[test]
    fn random_permutation_is_permutation(dims in prop::collection::vec(1u32..=6, 1..=3), seed in any::<u64>()) {
        let mesh = Mesh::new_mesh(&dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = wl::random_permutation(&mesh, &mut rng);
        assert_permutation(&mesh, &w)?;
    }

    /// The structured permutations are permutations and have the claimed
    /// per-pair distance structure.
    #[test]
    fn structured_permutations(k in 1u32..=5) {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&[side, side]);
        assert_permutation(&mesh, &wl::transpose(&mesh))?;
        assert_permutation(&mesh, &wl::bit_reversal(&mesh))?;
        assert_permutation(&mesh, &wl::bit_complement(&mesh))?;
        assert_permutation(&mesh, &wl::tornado(&mesh))?;
        let ne = wl::neighbor_exchange(&mesh, 0);
        assert_permutation(&mesh, &ne)?;
        for (s, t) in &ne.pairs {
            prop_assert_eq!(mesh.dist(s, t), 1);
        }
    }

    /// distance_permutation: a permutation where every pair is at exactly
    /// distance l.
    #[test]
    fn distance_permutation_structure(k in 2u32..=6, l_exp in 0u32..5) {
        prop_assume!(l_exp < k); // even number of slabs
        let side = 1u32 << k;
        let l = 1u32 << l_exp;
        let mesh = Mesh::new_mesh(&[side, side]);
        let w = wl::distance_permutation(&mesh, l);
        assert_permutation(&mesh, &w)?;
        for (s, t) in &w.pairs {
            prop_assert_eq!(mesh.dist(s, t), u64::from(l));
        }
    }

    /// pi_a on a deterministic router: the workload is exactly the hot-edge
    /// crossing set, all modal paths cross one common edge.
    #[test]
    fn pi_a_consistency(k in 2u32..=5, l_exp in 1u32..4, seed in any::<u64>()) {
        prop_assume!(l_exp < k);
        let side = 1u32 << k;
        let l = 1u32 << l_exp;
        let mesh = Mesh::new_mesh(&[side, side]);
        let router = oblivion_core::DimOrder::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let res = wl::pi_a(&router, l, 1, &mut rng);
        prop_assert_eq!(res.workload.len(), res.modal_paths.len());
        prop_assert_eq!(res.workload.len() as u32, res.edge_load);
        prop_assert!(res.edge_load >= 1);
        // All modal paths share at least one common edge.
        let mut common: Option<HashSet<usize>> = None;
        for p in &res.modal_paths {
            let edges: HashSet<usize> = p.edge_ids(&mesh).map(|e| e.0).collect();
            common = Some(match common {
                None => edges,
                Some(c) => c.intersection(&edges).copied().collect(),
            });
        }
        prop_assert!(!common.unwrap().is_empty());
    }

    /// hotspot / all_to_one / central_cut invariants.
    #[test]
    fn convergecast_invariants(k in 1u32..=5, count in 1usize..200, seed in any::<u64>()) {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&[side, side]);
        let mut rng = StdRng::seed_from_u64(seed);
        let tgt = Coord::new(&[side / 2, side / 2]);
        let h = wl::hotspot(&mesh, tgt, count, &mut rng);
        prop_assert_eq!(h.len(), count);
        prop_assert!(h.pairs.iter().all(|(_, t)| *t == tgt));
        let a = wl::all_to_one(&mesh, tgt);
        prop_assert_eq!(a.len(), mesh.node_count());
        let cc = wl::central_cut_neighbors(&mesh, 0);
        prop_assert_eq!(cc.len(), 2 * side as usize);
        prop_assert!(cc.pairs.iter().all(|(s, t)| mesh.dist(s, t) == 1));
    }
}
