//! Criterion micro-benchmarks: path-selection throughput per router.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use oblivion_core::{
    AccessTree, Busch2D, BuschD, BuschPadded, DimOrder, ObliviousRouter, RandomnessMode, Romm,
    Valiant,
};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn routers_2d(side: u32) -> Vec<Box<dyn ObliviousRouter>> {
    let mesh = Mesh::new_mesh(&[side, side]);
    vec![
        Box::new(Busch2D::new(mesh.clone())),
        Box::new(Busch2D::new(mesh.clone()).with_mode(RandomnessMode::Fresh)),
        Box::new(BuschD::new(mesh.clone())),
        Box::new(BuschPadded::new(mesh.clone())),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(Romm::new(mesh.clone())),
        Box::new(DimOrder::new(mesh)),
    ]
}

fn bench_select_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_path_64x64");
    let mut rng = StdRng::seed_from_u64(1);
    for router in routers_2d(64) {
        group.bench_function(BenchmarkId::from_parameter(router.name()), |b| {
            b.iter(|| {
                let s = Coord::new(&[rng.gen_range(0..64), rng.gen_range(0..64)]);
                let t = Coord::new(&[rng.gen_range(0..64), rng.gen_range(0..64)]);
                black_box(router.select_path(&s, &t, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_select_path_by_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_path_by_dimension");
    let mut rng = StdRng::seed_from_u64(2);
    for (d, k) in [(1usize, 12u32), (2, 6), (3, 4), (4, 3)] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&vec![side; d]);
        let router = BuschD::new(mesh);
        group.bench_function(
            BenchmarkId::from_parameter(format!("d{d}_side{side}")),
            |b| {
                b.iter(|| {
                    let s = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                    let t = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                    black_box(router.select_path(&s, &t, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_select_path, bench_select_path_by_dim);
criterion_main!(benches);
