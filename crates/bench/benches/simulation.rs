//! Criterion micro-benchmarks: simulator step throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use oblivion_core::{route_all, Busch2D};
use oblivion_mesh::Mesh;
use oblivion_sim::{SchedulingPolicy, Simulation};
use oblivion_workloads::random_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_random_perm");
    for side in [16u32, 32] {
        let mesh = Mesh::new_mesh(&[side, side]);
        let router = Busch2D::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let w = random_permutation(&mesh, &mut rng);
        let paths = route_all(&router, &w.pairs, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(format!("side{side}")), |b| {
            b.iter(|| {
                let sim = Simulation::new(&mesh, paths.clone());
                black_box(sim.run(SchedulingPolicy::Fifo, 1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
