//! Criterion micro-benchmarks: decomposition primitives (block lookup,
//! bridge search, DCA).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use oblivion_decomp::{Decomp2, DecompD};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_dca_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("dca_2d");
    let mut rng = StdRng::seed_from_u64(1);
    for k in [5u32, 7, 9] {
        let d = Decomp2::new(k);
        let side = 1u32 << k;
        group.bench_function(BenchmarkId::from_parameter(format!("side{side}")), |b| {
            b.iter(|| {
                let s = Coord::new(&[rng.gen_range(0..side), rng.gen_range(0..side)]);
                let mut t = s;
                while t == s {
                    t = Coord::new(&[rng.gen_range(0..side), rng.gen_range(0..side)]);
                }
                black_box(d.deepest_common_ancestor(&s, &t))
            })
        });
    }
    group.finish();
}

fn bench_bridge_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_bridge");
    let mut rng = StdRng::seed_from_u64(2);
    for (dim, k) in [(2usize, 7u32), (3, 4), (4, 3)] {
        let dd = DecompD::new(dim, k);
        let mesh = Mesh::new_mesh(&vec![1u32 << k; dim]);
        let side = 1u32 << k;
        group.bench_function(BenchmarkId::from_parameter(format!("d{dim}")), |b| {
            b.iter(|| {
                let s = Coord::new(&(0..dim).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                let mut t = s;
                while t == s {
                    t = Coord::new(&(0..dim).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                }
                black_box(dd.find_bridge(&mesh, &s, &t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dca_2d, bench_bridge_d);
criterion_main!(benches);
