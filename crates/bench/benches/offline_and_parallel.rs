//! Criterion micro-benchmarks: the offline congestion minimizer and the
//! parallel routing front-end.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use oblivion_core::{
    route_all_parallel, route_all_seeded, route_min_congestion, Busch2D, OfflineConfig,
};
use oblivion_mesh::Mesh;
use oblivion_workloads::transpose;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_min_congestion");
    group.sample_size(10);
    for side in [8u32, 16] {
        let mesh = Mesh::new_mesh(&[side, side]);
        let w = transpose(&mesh).without_self_loops();
        group.bench_function(BenchmarkId::from_parameter(format!("side{side}")), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(route_min_congestion(
                    &mesh,
                    &w.pairs,
                    OfflineConfig::default(),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_parallel_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_all_threads");
    group.sample_size(10);
    let mesh = Mesh::new_mesh(&[64, 64]);
    let router = Busch2D::new(mesh.clone());
    let w = transpose(&mesh).without_self_loops();
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| black_box(route_all_seeded(&router, &w.pairs, 7)))
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}thr")), |b| {
            b.iter(|| black_box(route_all_parallel(&router, &w.pairs, 7, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline, bench_parallel_routing);
criterion_main!(benches);
