//! A tiny fixed-width table printer for experiment reports.

/// A column-aligned plain-text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("-{}-", "-".repeat(*w)))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..cols)
                .map(|i| format!(" {:w$} ", cells[i], w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The table as JSON: `{"header": [...], "rows": [[...], ...]}`.
    ///
    /// Cells stay strings — they were formatted for humans; consumers
    /// that need numbers can parse the relevant columns.
    pub fn to_json(&self) -> oblivion_obs::Json {
        use oblivion_obs::Json;
        let mut obj = Json::obj();
        obj.set(
            "header",
            Json::Arr(self.header.iter().map(|h| Json::from(h.as_str())).collect()),
        );
        obj.set(
            "rows",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(|c| Json::from(c.as_str())).collect()))
                    .collect(),
            ),
        );
        obj
    }
}

/// Formats an `f64` with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an `f64` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with(" a"));
        // All lines same width.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_enforced() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn json_mirrors_the_table() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["b", "2.50"]);
        let j = t.to_json().to_string();
        assert_eq!(
            j,
            r#"{"header":["name","value"],"rows":[["a","1"],["b","2.50"]]}"#
        );
        let back = oblivion_obs::Json::parse(&j).unwrap();
        assert_eq!(back.get("rows").unwrap().as_arr().unwrap().len(), 2);
    }
}
