//! Machine-readable experiment results (`results/*.json`).
//!
//! Every `exp_*` binary prints a human table to stdout; this module lets
//! it also drop a JSON-lines twin next to the `.txt` capture:
//! call [`start`] first thing in `main`, and [`finish`] after printing.
//! The file holds the run's counters, histograms, and span timings
//! (collected by `oblivion-obs` while the experiment routed packets)
//! followed by a `report` line embedding the result table itself. Render
//! one with `oblivion stats results/<exp>.json`.

use crate::table::Table;
use oblivion_obs::{Json, RunReport};
use std::path::PathBuf;

/// The directory results are written to: `$OBLIVION_RESULTS_DIR`, or
/// `results/` under the current directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("OBLIVION_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Starts metrics collection for an experiment binary.
pub fn start() {
    oblivion_obs::reset();
    oblivion_obs::enable();
}

/// Stops collection and writes `results/<exp>.json`, returning its path.
///
/// `extra` fields land in the report line after the standard ones; the
/// table is embedded under `"table"`.
pub fn finish(
    exp: &str,
    title: &str,
    table: &Table,
    extra: &[(&str, Json)],
) -> std::io::Result<PathBuf> {
    let snap = oblivion_obs::snapshot();
    oblivion_obs::disable();
    let mut report = RunReport::new(exp);
    report.set("title", title);
    for (key, value) in extra {
        report.set(key, value.clone());
    }
    report.set("table", table.to_json());
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{exp}.json"));
    std::fs::write(&path, report.to_jsonl(&snap, true))?;
    Ok(path)
}

/// [`finish`] with errors reduced to a stdout note — experiment binaries
/// should not fail their run because the results dir is unwritable.
pub fn finish_and_note(exp: &str, title: &str, table: &Table, extra: &[(&str, Json)]) {
    match finish(exp, title, table, extra) {
        Ok(path) => println!("(machine-readable results: {})", path.display()),
        Err(e) => println!("(could not write results json: {e})"),
    }
}

/// Writes wall-clock timing fields to `results/BENCH_<exp>.json`.
///
/// Timings are machine-dependent, so they live in their own `BENCH_`
/// file and never contaminate the deterministic `<exp>.json` results.
pub fn write_bench(exp: &str, fields: &[(&str, Json)]) -> std::io::Result<PathBuf> {
    let mut doc = Json::obj();
    doc.set("type", "bench").set("exp", exp);
    for (key, value) in fields {
        doc.set(*key, value.clone());
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{exp}.json"));
    let mut text = String::new();
    doc.write(&mut text);
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// [`write_bench`] with errors reduced to a stdout note.
pub fn write_bench_and_note(exp: &str, fields: &[(&str, Json)]) {
    match write_bench(exp, fields) {
        Ok(path) => println!("(wall-clock timings: {})", path.display()),
        Err(e) => println!("(could not write bench json: {e})"),
    }
}

/// The thread count parallel benches run with: `$OBLIVION_THREADS` if set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("OBLIVION_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_writes_a_parsable_document() {
        let dir = std::env::temp_dir().join("oblivion_bench_report_test");
        // `finish` honors OBLIVION_RESULTS_DIR; tests must not rely on a
        // process-global env var (parallel tests share the environment),
        // so exercise the path logic directly instead.
        let _ = std::fs::create_dir_all(&dir);
        let mut table = Table::new(vec!["k", "v"]);
        table.row(vec!["a", "1"]);
        start();
        oblivion_obs::counter_add("bench_test_counter", 3);
        let snap = oblivion_obs::snapshot();
        oblivion_obs::disable();
        let mut report = RunReport::new("exp_test");
        report.set("title", "t").set("table", table.to_json());
        let path = dir.join("exp_test.json");
        std::fs::write(&path, report.to_jsonl(&snap, true)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = oblivion_obs::parse_jsonl(&text).unwrap();
        assert_eq!(entries.last().unwrap().0, "report");
        let tbl = entries.last().unwrap().1.get("table").unwrap();
        assert_eq!(tbl.get("rows").unwrap().as_arr().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_dir_defaults() {
        // Whatever the environment says, the function returns a
        // non-empty path.
        assert!(!results_dir().as_os_str().is_empty());
    }

    #[test]
    fn bench_doc_shape() {
        // Exercise the document construction `write_bench` performs
        // (without touching the shared results dir from a parallel test).
        let mut doc = Json::obj();
        doc.set("type", "bench").set("exp", "x");
        for (k, v) in [("threads", Json::from(4u64)), ("seq_ms", Json::from(12.5))] {
            doc.set(k, v);
        }
        let mut text = String::new();
        doc.write(&mut text);
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("exp").unwrap().as_str(), Some("x"));
        assert_eq!(parsed.get("threads").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn threads_from_env_is_positive() {
        assert!(threads_from_env() >= 1);
    }
}
