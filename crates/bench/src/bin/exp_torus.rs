//! **E14 — the torus model** (extension; the paper's proofs "assume the
//! torus for simplicity").
//!
//! On the torus the decomposition tiles perfectly — no clipped bridges,
//! no discarded corners — so Lemma 4.1 is exact and the border-pair
//! pathologies of the mesh vanish. This experiment compares algorithm H
//! on the mesh vs the torus of the same size, and exercises the wrap-pair
//! traffic (tornado, wrap-adjacent neighbors) where the torus matters.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{route_all, BuschD, BuschTorus, ObliviousRouter};
use oblivion_mesh::{Coord, Mesh};
use oblivion_metrics::{flow_lower_bound, PathSetMetrics};
use oblivion_workloads as wl;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 32u32;
    println!("E14: algorithm H on the torus vs the mesh ({side}x{side})\n");
    let mesh = Mesh::new_mesh(&[side, side]);
    let torus = Mesh::new_torus(&[side, side]);
    let on_mesh = BuschD::new(mesh.clone());
    let on_torus = BuschTorus::new(torus.clone());
    let mut rng = StdRng::seed_from_u64(0xE14);

    let mut table = Table::new(vec![
        "workload",
        "net",
        "C",
        "C/flow-lb",
        "D",
        "max stretch",
        "mean stretch",
    ]);
    // Wrap-adjacent pairs: every row exchanges its two border nodes.
    let wrap_pairs: Vec<(Coord, Coord)> = (0..side)
        .flat_map(|y| {
            [
                (Coord::new(&[0, y]), Coord::new(&[side - 1, y])),
                (Coord::new(&[side - 1, y]), Coord::new(&[0, y])),
            ]
        })
        .collect();
    let workloads = vec![
        wl::tornado(&mesh),
        wl::random_permutation(&mesh, &mut rng),
        wl::Workload::new("wrap-neighbors", wrap_pairs),
    ];
    for w in &workloads {
        for (net, router, netmesh) in [
            ("mesh", &on_mesh as &dyn ObliviousRouter, &mesh),
            ("torus", &on_torus as &dyn ObliviousRouter, &torus),
        ] {
            let paths = route_all(router, &w.pairs, &mut rng);
            let m = PathSetMetrics::measure(netmesh, &paths);
            let lb = flow_lower_bound(netmesh, &w.pairs).max(1);
            table.row(vec![
                w.name.clone(),
                net.into(),
                m.congestion.to_string(),
                f2(f64::from(m.congestion) / lb as f64),
                m.dilation.to_string(),
                f2(m.max_stretch),
                f2(m.mean_stretch),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: on wrap-neighbors the mesh router must haul distance-31\n\
         packets (the wrap pair is far apart on the mesh), while the torus router\n\
         treats them as adjacent: tiny D and stretch. Tornado also benefits from\n\
         wrap links. On random permutations the two behave alike."
    );
}
