//! **E19 — Lemma 3.8's per-edge expectation, against its analytic bound**.
//!
//! The congestion theorem rests on the per-edge bound
//! `E[C(e)] ≤ 16·C*·(log₂ D' + 3)` (2-D). This experiment estimates
//! `E[C(e)]` empirically — the mean load of individual edges over many
//! independent runs — for a central, a quadrant-boundary, and a corner
//! edge, and reports the ratio to the analytic bound with `C*` replaced by
//! its lower-bound estimate (so the reported ratio *over*-estimates the
//! true one; it must still be ≤ 1 by a margin).

use oblivion_bench::table::{f2, f3, Table};
use oblivion_core::{route_all_seeded, Busch2D};
use oblivion_mesh::{Coord, Mesh};
use oblivion_metrics::{congestion_lower_bound, EdgeLoads};
use oblivion_workloads::{random_permutation, transpose, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 32u32;
    let runs = 80u64;
    println!(
        "E19: per-edge expected congestion vs the Lemma 3.8 bound ({side}x{side}, {runs} runs)\n"
    );
    let mesh = Mesh::new_mesh(&[side, side]);
    let router = Busch2D::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(0xE19);

    let probes = [
        (
            "central-x",
            Coord::new(&[side / 2 - 1, side / 2]),
            Coord::new(&[side / 2, side / 2]),
        ),
        (
            "quadrant-x",
            Coord::new(&[side / 4 - 1, 5]),
            Coord::new(&[side / 4, 5]),
        ),
        ("corner-y", Coord::new(&[0, 0]), Coord::new(&[0, 1])),
    ];

    let mut table = Table::new(vec![
        "workload",
        "edge",
        "mean load E[C(e)]",
        "max load",
        "bound 16*lb*(log D'+3)",
        "ratio",
    ]);
    let workloads: Vec<Workload> = vec![
        transpose(&mesh).without_self_loops(),
        random_permutation(&mesh, &mut rng),
    ];
    for w in &workloads {
        let lb = congestion_lower_bound(&mesh, &w.pairs);
        let dprime = w.max_distance(&mesh) as f64;
        let bound = 16.0 * lb * (dprime.log2() + 3.0);
        let mut sums = vec![0u64; probes.len()];
        let mut maxs = vec![0u32; probes.len()];
        for run in 0..runs {
            let paths = route_all_seeded(&router, &w.pairs, 0x000E_1900 + run);
            let loads = EdgeLoads::from_paths(&mesh, &paths);
            for (i, (_, a, b)) in probes.iter().enumerate() {
                let l = loads.loads()[mesh.edge_id(a, b).0];
                sums[i] += u64::from(l);
                maxs[i] = maxs[i].max(l);
            }
        }
        for (i, (name, _, _)) in probes.iter().enumerate() {
            let mean = sums[i] as f64 / runs as f64;
            table.row(vec![
                w.name.clone(),
                (*name).into(),
                f2(mean),
                maxs[i].to_string(),
                f2(bound),
                f3(mean / bound),
            ]);
            assert!(mean <= bound, "Lemma 3.8 bound violated at {name}");
        }
    }
    table.print();
    println!(
        "\nExpected shape: every per-edge mean sits far below the analytic bound\n\
         (ratios well under 1 — the paper's constants are conservative), with central\n\
         edges hotter than corners but all within the same O(C* log D') envelope."
    );
}
