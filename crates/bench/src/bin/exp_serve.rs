//! **E24 — serving under overload: per-connection vs pipelined goodput.**
//!
//! Runs one in-process `oblivion-serve` instance with a deliberately
//! small capacity (2 workers, 2 ms of simulated work per routing burst)
//! and measures the same server under two client disciplines:
//!
//! 1. **per-connection** — one TCP connection per request, the v1
//!    discipline. Goodput rises to a plateau near ~1/work per worker
//!    (connection setup + one routed line per burst), then the excess is
//!    shed with typed `OVERLOADED` / `DEADLINE_EXCEEDED` errors.
//! 2. **keep-alive pipelined** — each client holds one connection and
//!    keeps a window of 32 requests in flight. The server frames many
//!    lines per read, routes them as one batch (one simulated-work
//!    charge per burst, amortized lookups), and writes the replies in
//!    order.
//!
//! The claim under test: pipelining + batched routing lifts peak goodput
//! by **≥ 10x** over the per-connection plateau on the *same* server
//! build, while the p99 of successes stays bounded by the deadline and
//! the request-unit conservation law holds on every live METRICS scrape
//! taken during the sweep — not just in the final account.
//!
//! Absolute req/s depends on the host; the plateau, the ≥10x ratio, the
//! typed shed column, and conservation are the reproducible part.

use oblivion_bench::table::{f2, Table};
use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_obs::Json;
use oblivion_serve::{parse_exposition, run_loadgen, Client, Control, LoadgenConfig, ServeConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One sweep point: run the loadgen at `clients` concurrency and fold
/// the result into `table` + `rows`. Returns the measured goodput.
#[allow(clippy::too_many_arguments)]
fn sweep_point(
    table: &mut Table,
    rows: &mut Vec<Json>,
    addr: &str,
    mesh: &Mesh,
    deadline: Duration,
    clients: usize,
    requests: usize,
    pipeline: usize,
    plateau_ok: &mut bool,
) -> f64 {
    let lg = LoadgenConfig {
        addr: addr.to_string(),
        mesh: mesh.clone(),
        requests,
        concurrency: clients,
        retries: 0, // observe raw shedding, not retried success
        timeout: Duration::from_secs(5),
        seed: 0xE24 + (clients as u64) * 31 + pipeline as u64,
        keep_alive: pipeline > 1,
        pipeline,
        ..LoadgenConfig::default()
    };
    let r = run_loadgen(&lg);
    assert_eq!(r.malformed, 0, "malformed responses under load");
    assert_eq!(r.bad_request, 0, "client sent a bad request");
    let shed = r.overloaded + r.deadline;
    let p99 = r.latency_ms(0.99);
    // Successful requests must never have waited longer than the
    // server's own per-line deadline (plus scheduling slack).
    let bounded = p99 <= deadline.as_secs_f64() * 1e3 * 1.5;
    *plateau_ok &= bounded;
    table.row(vec![
        if pipeline > 1 {
            format!("pipelined x{pipeline}")
        } else {
            "per-conn".into()
        },
        clients.to_string(),
        requests.to_string(),
        r.ok.to_string(),
        shed.to_string(),
        format!("{:.0}", r.goodput()),
        f2(r.latency_ms(0.50)),
        f2(p99),
        if bounded { "yes" } else { "NO" }.into(),
    ]);
    let mut row = Json::obj();
    row.set(
        "mode",
        if pipeline > 1 {
            "pipelined"
        } else {
            "per_conn"
        },
    )
    .set("pipeline", pipeline as u64)
    .set("clients", clients)
    .set("ok", r.ok)
    .set("shed", shed)
    .set("goodput_rps", r.goodput())
    .set("p50_ms", r.latency_ms(0.50))
    .set("p99_ms", p99);
    rows.push(row);
    r.goodput()
}

fn main() {
    oblivion_bench::report::start();
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let deadline = Duration::from_millis(250);
    let cfg = ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 2,
        queue_cap: 16,
        work: Duration::from_millis(2),
        deadline,
        drain: Duration::from_secs(10),
        announce: false,
        ..ServeConfig::default()
    };
    println!(
        "E24: serving under overload (16x16, busch-d, {} workers, queue {}, {} ms deadline, \
         {} ms work/burst, batch {})\n",
        cfg.threads,
        cfg.queue_cap,
        deadline.as_millis(),
        cfg.work.as_millis(),
        cfg.batch_max,
    );

    let ctl = Control::new();
    let stop_scraper = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);
    let mut table = Table::new(vec![
        "mode",
        "clients",
        "requests",
        "ok",
        "shed+deadline",
        "goodput req/s",
        "p50 ms",
        "p99 ms",
        "p99 <= deadline",
    ]);
    let mut sweep_rows: Vec<Json> = Vec::new();
    let mut per_conn_plateau = 0f64;
    let mut pipelined_peak = 0f64;
    let mut plateau_ok = true;
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl
            .wait_addr(Duration::from_secs(10))
            .expect("server did not bind");
        let health = ctl.health_addr().expect("health listener did not bind");

        // Live conservation auditor: scrape METRICS off the health port
        // for the entire sweep; the law must hold on every sample taken
        // mid-overload, not just in the final account.
        let stop_scraper = &stop_scraper;
        let scrapes = &scrapes;
        let scraper = scope.spawn(move || {
            let client = Client::to(health, Duration::from_secs(2));
            while !stop_scraper.load(Ordering::SeqCst) {
                let text = client.scrape().expect("METRICS scrape failed mid-sweep");
                let exp = parse_exposition(&text)
                    .unwrap_or_else(|why| panic!("unparseable scrape: {why}\n{text}"));
                exp.check_conservation()
                    .unwrap_or_else(|why| panic!("conservation violated on a live scrape: {why}"));
                scrapes.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(25));
            }
        });

        let addr_s = addr.to_string();
        for clients in [1usize, 2, 4, 8, 16, 32] {
            let g = sweep_point(
                &mut table,
                &mut sweep_rows,
                &addr_s,
                &mesh,
                deadline,
                clients,
                400,
                1,
                &mut plateau_ok,
            );
            per_conn_plateau = per_conn_plateau.max(g);
        }
        for clients in [2usize, 4, 8] {
            let g = sweep_point(
                &mut table,
                &mut sweep_rows,
                &addr_s,
                &mesh,
                deadline,
                clients,
                8000,
                32,
                &mut plateau_ok,
            );
            pipelined_peak = pipelined_peak.max(g);
        }

        stop_scraper.store(true, Ordering::SeqCst);
        scraper.join().expect("scraper panicked");
        ctl.request_shutdown();
        let summary = server
            .join()
            .expect("server panicked")
            .expect("server failed");
        assert!(
            summary.stats.conserved(),
            "final account does not conserve: {:?}",
            summary.stats
        );
        table.print();
        let speedup = pipelined_peak / per_conn_plateau.max(1.0);
        println!(
            "\nFinal server account (conserved): accepted {} = completed {} + shed {} + \
             deadline {} + bad {} + drain {} + io {}",
            summary.stats.accepted,
            summary.stats.completed,
            summary.stats.shed_overloaded,
            summary.stats.deadline_exceeded,
            summary.stats.bad_request,
            summary.stats.drain_rejected,
            summary.stats.io_errors
        );
        println!(
            "Per-connection plateau {per_conn_plateau:.0} req/s; keep-alive pipelined peak \
             {pipelined_peak:.0} req/s ({speedup:.1}x). Conservation held on all {} live \
             METRICS scrapes taken during the sweep.",
            scrapes.load(Ordering::SeqCst)
        );

        let extra: Vec<(&str, Json)> = vec![
            ("per_conn_plateau_rps", Json::from(per_conn_plateau)),
            ("pipelined_peak_rps", Json::from(pipelined_peak)),
            ("pipelined_speedup", Json::from(speedup)),
            ("p99_bounded_at_every_load", Json::from(plateau_ok)),
            ("deadline_ms", Json::from(deadline.as_millis() as u64)),
            ("accepted", Json::from(summary.stats.accepted)),
            ("conserved", Json::from(summary.stats.conserved())),
            (
                "live_scrapes_conserved",
                Json::from(scrapes.load(Ordering::SeqCst)),
            ),
            ("sweep", Json::from(sweep_rows.clone())),
        ];
        oblivion_bench::report::finish_and_note(
            "serve_load",
            "E24: per-connection vs keep-alive pipelined serving under overload",
            &table,
            &extra,
        );
        assert!(
            speedup >= 10.0,
            "pipelined peak {pipelined_peak:.0} req/s is under 10x the per-connection \
             plateau {per_conn_plateau:.0} req/s"
        );
    });
    assert!(
        plateau_ok,
        "p99 exceeded the deadline somewhere in the sweep"
    );
}
