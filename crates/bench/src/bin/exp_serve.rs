//! **E24 — serving under overload: goodput, shedding, and tail latency.**
//!
//! Runs an in-process `oblivion-serve` instance with a deliberately small
//! capacity (2 workers, a 16-deep admission queue, 2 ms of simulated work
//! per request → ~1000 req/s of theoretical capacity) and sweeps the
//! offered load past it by doubling the number of closed-loop clients.
//!
//! The claim under test is the overload *shape*, not absolute numbers:
//! goodput should rise with offered load until capacity, then plateau
//! (not collapse) while the excess is shed with typed `OVERLOADED` /
//! `DEADLINE_EXCEEDED` errors; the p99 latency of *successful* requests
//! stays bounded by the server's deadline at every point of the sweep;
//! and the final account conserves (every accepted connection settled in
//! exactly one bucket). A server without admission control fails this
//! experiment by queueing unboundedly: latency grows without limit and
//! goodput collapses past saturation.
//!
//! Absolute req/s depends on the host; the plateau, the shed column, and
//! the bounded p99 are the reproducible part.

use oblivion_bench::table::{f2, Table};
use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_obs::Json;
use oblivion_serve::{run_loadgen, Control, LoadgenConfig, ServeConfig};
use std::time::Duration;

fn main() {
    oblivion_bench::report::start();
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let deadline = Duration::from_millis(250);
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 2,
        queue_cap: 16,
        work: Duration::from_millis(2),
        deadline,
        drain: Duration::from_secs(10),
        announce: false,
        ..ServeConfig::default()
    };
    println!(
        "E24: serving under overload (16x16, busch-d, {} workers, queue {}, {} ms deadline, {} ms work/request)\n",
        cfg.threads,
        cfg.queue_cap,
        deadline.as_millis(),
        cfg.work.as_millis()
    );

    let ctl = Control::new();
    let mut table = Table::new(vec![
        "clients",
        "requests",
        "ok",
        "shed+deadline",
        "goodput req/s",
        "p50 ms",
        "p99 ms",
        "p99 <= deadline",
    ]);
    let mut sweep_rows: Vec<Json> = Vec::new();
    let mut peak_goodput = 0f64;
    let mut plateau_ok = true;
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl
            .wait_addr(Duration::from_secs(10))
            .expect("server did not bind");
        for clients in [1usize, 2, 4, 8, 16, 32] {
            let lg = LoadgenConfig {
                addr: addr.to_string(),
                mesh: mesh.clone(),
                requests: 400,
                concurrency: clients,
                retries: 0, // observe raw shedding, not retried success
                timeout: Duration::from_secs(5),
                seed: 0xE24 + clients as u64,
                ..LoadgenConfig::default()
            };
            let r = run_loadgen(&lg);
            assert_eq!(r.malformed, 0, "malformed responses under load");
            assert_eq!(r.bad_request, 0, "client sent a bad request");
            let shed = r.overloaded + r.deadline;
            let p99 = r.latency_ms(0.99);
            // Successful requests must never have waited longer than the
            // server's own deadline (plus scheduling slack).
            let bounded = p99 <= deadline.as_secs_f64() * 1e3 * 1.5;
            plateau_ok &= bounded;
            peak_goodput = peak_goodput.max(r.goodput());
            table.row(vec![
                clients.to_string(),
                "400".into(),
                r.ok.to_string(),
                shed.to_string(),
                format!("{:.0}", r.goodput()),
                f2(r.latency_ms(0.50)),
                f2(p99),
                if bounded { "yes" } else { "NO" }.into(),
            ]);
            let mut row = Json::obj();
            row.set("clients", clients)
                .set("ok", r.ok)
                .set("shed", shed)
                .set("goodput_rps", r.goodput())
                .set("p50_ms", r.latency_ms(0.50))
                .set("p99_ms", p99);
            sweep_rows.push(row);
        }
        ctl.request_shutdown();
        let summary = server
            .join()
            .expect("server panicked")
            .expect("server failed");
        assert!(
            summary.stats.conserved(),
            "final account does not conserve: {:?}",
            summary.stats
        );
        table.print();
        println!(
            "\nFinal server account (conserved): accepted {} = completed {} + shed {} + \
             deadline {} + bad {} + drain {} + io {}",
            summary.stats.accepted,
            summary.stats.completed,
            summary.stats.shed_overloaded,
            summary.stats.deadline_exceeded,
            summary.stats.bad_request,
            summary.stats.drain_rejected,
            summary.stats.io_errors
        );
        println!(
            "Past saturation the server sheds with typed errors instead of queueing:\n\
             goodput plateaus near its capacity and the p99 of successes stays under\n\
             the {} ms deadline at every offered load.",
            deadline.as_millis()
        );

        let extra: Vec<(&str, Json)> = vec![
            ("peak_goodput_rps", Json::from(peak_goodput)),
            ("p99_bounded_at_every_load", Json::from(plateau_ok)),
            ("deadline_ms", Json::from(deadline.as_millis() as u64)),
            ("accepted", Json::from(summary.stats.accepted)),
            ("conserved", Json::from(summary.stats.conserved())),
            ("sweep", Json::from(sweep_rows.clone())),
        ];
        oblivion_bench::report::finish_and_note(
            "serve_load",
            "E24: serving under overload (admission control sweep)",
            &table,
            &extra,
        );
    });
    assert!(
        plateau_ok,
        "p99 exceeded the deadline somewhere in the sweep"
    );
}
