//! **E12 — ablation**: what exactly do bridge submeshes buy?
//!
//! The paper's key idea is the shifted ("type-2"/"type-j") bridge blocks;
//! removing them recovers the access-*tree* of Maggs et al. This ablation
//! routes distance-δ pairs straddling the central cut with both variants
//! and sweeps δ: the tree's stretch behaves like `side/δ` (packets climb
//! to the root no matter how close the endpoints), the bridge algorithm's
//! stays constant.

use oblivion_bench::table::{f2, Table};
use oblivion_core::route_all;
use oblivion_core::{AccessTree, Busch2D};
use oblivion_mesh::{Coord, Mesh};
use oblivion_metrics::PathSetMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 64u32;
    println!("E12: bridge ablation on the {side}x{side} mesh (access graph vs access tree)\n");
    let mesh = Mesh::new_mesh(&[side, side]);
    let bridge = Busch2D::new(mesh.clone());
    let tree = AccessTree::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(0xE12);

    let mut table = Table::new(vec![
        "delta",
        "pairs",
        "tree max stretch",
        "tree mean stretch",
        "bridge max stretch",
        "bridge mean stretch",
        "tree C",
        "bridge C",
    ]);
    let mut delta = 1u32;
    while delta <= side / 4 {
        // Pairs (side/2 - delta, y) -> (side/2 + delta - 1, y): distance
        // 2*delta - 1 across the central cut.
        let pairs: Vec<(Coord, Coord)> = (0..side)
            .map(|y| {
                (
                    Coord::new(&[side / 2 - delta, y]),
                    Coord::new(&[side / 2 + delta - 1, y]),
                )
            })
            .collect();
        let tree_paths = route_all(&tree, &pairs, &mut rng);
        let bridge_paths = route_all(&bridge, &pairs, &mut rng);
        let tm = PathSetMetrics::measure(&mesh, &tree_paths);
        let bm = PathSetMetrics::measure(&mesh, &bridge_paths);
        table.row(vec![
            delta.to_string(),
            pairs.len().to_string(),
            f2(tm.max_stretch),
            f2(tm.mean_stretch),
            f2(bm.max_stretch),
            f2(bm.mean_stretch),
            tm.congestion.to_string(),
            bm.congestion.to_string(),
        ]);
        delta *= 2;
    }
    table.print();
    println!(
        "\nExpected shape: tree stretch ~ side/delta (diverges as pairs get closer),\n\
         bridge stretch flat and <= 64; congestion comparable — the bridges cost\n\
         nothing in congestion. This is Figure-1's construction earning its keep."
    );
}
