//! **E10 — the paper's comparison table** (Section 1 / related work):
//! algorithm H vs every baseline across the workload suite.
//!
//! The paper's claim in one table: only the bridge algorithm controls
//! congestion *and* stretch simultaneously. Dimension-order has stretch 1
//! but terrible worst-case congestion; Valiant and the access tree have
//! good congestion but unbounded stretch; H has both.

use oblivion_bench::harness::measure;
use oblivion_bench::table::{f2, Table};
use oblivion_core::{
    AccessTree, Busch2D, BuschD, DimOrder, ObliviousRouter, RandomDimOrder, Romm, Valiant,
};
use oblivion_mesh::{Coord, Mesh};
use oblivion_workloads as wl;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 64u32;
    println!("E10: router x workload comparison on the {side}x{side} mesh\n");
    let mesh = Mesh::new_mesh(&[side, side]);
    let mut rng = StdRng::seed_from_u64(0xE10);

    let routers: Vec<Box<dyn ObliviousRouter>> = vec![
        Box::new(Busch2D::new(mesh.clone())),
        Box::new(BuschD::new(mesh.clone())),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(Romm::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
        Box::new(RandomDimOrder::new(mesh.clone())),
    ];
    let workloads = vec![
        wl::transpose(&mesh).without_self_loops(),
        wl::random_permutation(&mesh, &mut rng),
        wl::bit_reversal(&mesh).without_self_loops(),
        wl::bit_complement(&mesh),
        wl::tornado(&mesh),
        wl::shuffle(&mesh).without_self_loops(),
        wl::neighbor_exchange(&mesh, 0),
        wl::central_cut_neighbors(&mesh, 0),
        wl::hotspot(&mesh, Coord::new(&[side / 2, side / 2]), 256, &mut rng),
    ];

    for w in &workloads {
        println!("== workload: {} ({} packets) ==", w.name, w.len());
        let mut table = Table::new(vec![
            "router",
            "C",
            "D",
            "max stretch",
            "mean stretch",
            "C/lb",
            "bits/packet",
        ]);
        for r in &routers {
            let m = measure(r.as_ref(), w, 0xE10);
            table.row(vec![
                m.router.clone(),
                m.metrics.congestion.to_string(),
                m.metrics.dilation.to_string(),
                f2(m.metrics.max_stretch),
                f2(m.metrics.mean_stretch),
                f2(m.competitive),
                f2(m.mean_bits),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "Reading guide: dim-order wins stretch but loses C on transpose/bit-complement;\n\
         valiant/access-tree win C but blow up stretch on neighbor-exchange/central-cut;\n\
         busch-2d/busch-dd keep C within a log factor of lb AND stretch O(1) everywhere."
    );
}
