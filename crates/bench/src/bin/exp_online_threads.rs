//! **E21 — parallel online simulation thread sweep.**
//!
//! Runs one fixed online workload on the sharded simulator at increasing
//! thread counts, verifying that every run produces the *identical*
//! result (the engine's determinism contract) and recording wall-clock
//! scaling. The speedup column is the only machine-dependent number in
//! the table; everything else is a pure function of the seed.
//!
//! On a multi-core host the sharded engine should reach ≥2x at 4+
//! threads on this workload (path selection parallelizes per packet,
//! contention per link shard). On a single-core host all thread counts
//! necessarily take the same wall-clock — the determinism columns are
//! then still the point of the exercise.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{Busch2D, ObliviousRouter};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_obs::Json;
use oblivion_sim::{OnlineSim, SchedulingPolicy, UniformTraffic};
use rand::rngs::StdRng;
use std::time::Instant;

fn main() {
    oblivion_bench::report::start();
    let side = 64u32;
    let (rate, steps, seed) = (0.03f64, 600u64, 0xE21u64);
    println!(
        "E21: online thread sweep ({side}x{side}, busch-2d, uniform, rate {rate}, {steps} steps)\n"
    );
    let mesh = Mesh::new_mesh(&[side, side]);
    let router = Busch2D::new(mesh.clone());
    let pattern = UniformTraffic::new(mesh.clone());
    let source =
        |s: &Coord, t: &Coord, rng: &mut StdRng| -> Path { router.select_path(s, t, rng).path };
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, rate);

    let t0 = Instant::now();
    let reference = sim.run(&pattern, &source, steps, seed);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("sequential reference: {seq_ms:.0} ms");

    let mut table = Table::new(vec![
        "threads",
        "wall ms",
        "speedup vs seq",
        "identical to seq",
        "delivered",
        "mean lat",
    ]);
    let mut timings: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let t1 = Instant::now();
        let r = sim.run_sharded(&pattern, &source, steps, seed, threads);
        let ms = t1.elapsed().as_secs_f64() * 1e3;
        let identical = r.same_outcome(&reference);
        assert!(
            identical,
            "threads={threads} diverged from the sequential reference"
        );
        timings.push((threads, ms));
        table.row(vec![
            threads.to_string(),
            format!("{ms:.0}"),
            f2(seq_ms / ms),
            "yes".into(),
            r.delivered.to_string(),
            f2(r.mean_latency),
        ]);
    }
    table.print();
    let shards = reference
        .link_loads
        .len()
        .min(oblivion_sim::ShardMap::new(&mesh).shards());
    println!(
        "\nAll thread counts produced byte-identical results ({} shards). Speedup\n\
         is meaningful only with real cores: this host reports {} available.",
        shards,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut extra: Vec<(&str, Json)> = vec![
        ("seq_ms", Json::from(seq_ms)),
        ("identical_across_threads", Json::from(true)),
        (
            "host_parallelism",
            Json::from(std::thread::available_parallelism().map_or(1, |n| n.get())),
        ),
    ];
    let timing_rows: Vec<Json> = timings
        .iter()
        .map(|&(threads, ms)| {
            let mut row = Json::obj();
            row.set("threads", threads)
                .set("wall_ms", ms)
                .set("speedup", seq_ms / ms);
            row
        })
        .collect();
    extra.push(("sweep", Json::from(timing_rows)));
    oblivion_bench::report::finish_and_note(
        "online_threads",
        "E21: online simulation thread sweep",
        &table,
        &extra,
    );
    oblivion_bench::report::write_bench_and_note(
        "online_threads",
        &[
            ("seq_ms", Json::from(seq_ms)),
            (
                "best_ms",
                Json::from(timings.iter().map(|&(_, ms)| ms).fold(f64::MAX, f64::min)),
            ),
        ],
    );
}
