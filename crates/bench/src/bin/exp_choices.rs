//! **E15 — Lemma 5.3's κ-choice counting, measured**.
//!
//! Any algorithm with congestion comparable to H needs
//! `κ = Ω(ℓ/d^{1+1/d})` path choices on distance-ℓ pairs — i.e. its path
//! distribution must have growing support and entropy in ℓ. This
//! experiment samples algorithm H's empirical path distribution per
//! distance and reports support, entropy, and the Lemma-5.3 bits lower
//! bound; a deterministic router is shown for contrast (support 1,
//! entropy 0 — which is *why* it congests in E9).

use oblivion_bench::table::{f2, Table};
use oblivion_core::{bits_lower_bound, Busch2D, ChoiceProfile, DimOrder};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E15: path-choice entropy vs the Lemma 5.3 lower bound (2-D, 256x256)\n");
    let mesh = Mesh::new_mesh(&[256, 256]);
    let h = Busch2D::new(mesh.clone());
    let det = DimOrder::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(0xE15);
    let samples = 600;

    let mut table = Table::new(vec![
        "dist l",
        "H support",
        "H entropy bits",
        "lemma 5.3 lb bits",
        "H max prob",
        "det support",
    ]);
    let mut l = 2u32;
    while l <= 256 {
        // A diagonal pair at distance l.
        let s = Coord::new(&[10, 10]);
        let t = Coord::new(&[10 + l / 2, 10 + (l - l / 2)]);
        let hp = ChoiceProfile::sample(&h, &s, &t, samples, &mut rng);
        let dp = ChoiceProfile::sample(&det, &s, &t, 20, &mut rng);
        table.row(vec![
            l.to_string(),
            hp.support.to_string(),
            f2(hp.entropy_bits),
            f2(bits_lower_bound(u64::from(l), 2)),
            f2(hp.max_probability),
            dp.support.to_string(),
        ]);
        l *= 4;
    }
    table.print();
    println!(
        "\nExpected shape: H's entropy grows with log l and stays above the Lemma 5.3\n\
         lower bound (H is a valid near-optimal-congestion algorithm, so it MUST);\n\
         max path probability decays; the deterministic router is stuck at support 1,\n\
         which is exactly why Lemma 5.1 can force congestion on it."
    );
}
