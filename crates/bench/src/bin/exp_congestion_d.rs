//! **E6 — Theorem 4.3**: d-dimensional congestion is `O(d² C* log n)` w.h.p.
//!
//! Sweeps `d` on hard workloads and reports `C / lb` and the doubly
//! normalized `C / (lb · d² · log₂ n)`, which the theorem predicts stays
//! bounded.

use oblivion_bench::harness::measure_worst;
use oblivion_bench::table::{f2, f3, Table};
use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_workloads::{bit_complement, neighbor_exchange, random_permutation, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E6: d-dimensional congestion of algorithm H (Theorem 4.3: C = O(d^2 C* log n))\n");
    let mut table = Table::new(vec![
        "d",
        "side",
        "n",
        "workload",
        "C",
        "lb(C*)",
        "C/lb",
        "C/(lb*d^2*log2 n)",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE6);
    for (d, k) in [(1usize, 10u32), (2, 5), (3, 4), (4, 3)] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&vec![side; d]);
        let n = mesh.node_count();
        let log_n = (n as f64).log2();
        let router = BuschD::new(mesh.clone());
        let workloads: Vec<Workload> = vec![
            random_permutation(&mesh, &mut rng),
            bit_complement(&mesh).without_self_loops(),
            neighbor_exchange(&mesh, 0),
        ];
        for w in workloads {
            let m = measure_worst(&router, &w, 0xE6, 3);
            table.row(vec![
                d.to_string(),
                side.to_string(),
                n.to_string(),
                w.name.clone(),
                m.metrics.congestion.to_string(),
                f2(m.lower_bound),
                f2(m.competitive),
                f3(m.competitive / ((d * d) as f64 * log_n)),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape: the final column stays bounded as d and n grow (Theorem 4.3).");
}
