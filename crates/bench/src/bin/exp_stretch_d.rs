//! **E5 — Theorem 4.2**: d-dimensional stretch is `O(d²)`.
//!
//! Sweeps the dimension `d` at (roughly) constant node count and reports
//! the measured maximum stretch and its ratio to `d²`. The paper predicts
//! the ratio stays bounded as `d` grows.

use oblivion_bench::table::{f2, f3, Table};
use oblivion_core::{stretch_bound, BuschD, ObliviousRouter};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E5: d-dimensional stretch of algorithm H (Theorem 4.2: stretch = O(d^2))\n");
    let mut table = Table::new(vec![
        "d",
        "side",
        "n",
        "max stretch",
        "mean stretch",
        "max/d^2",
        "analysis bound",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE5);
    for (d, k) in [(1usize, 12u32), (2, 6), (3, 4), (4, 3), (5, 2)] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&vec![side; d]);
        let router = BuschD::new(mesh.clone());
        let mut max_stretch = 0f64;
        let mut sum = 0f64;
        let mut count = 0usize;
        // Adversarial: straddle the central cut on each axis; plus random.
        let mut pairs: Vec<(Coord, Coord)> = Vec::new();
        for axis in 0..d {
            for _ in 0..200 {
                let mut s = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                s[axis] = side / 2 - 1;
                let t = s.with(axis, side / 2);
                pairs.push((s, t));
            }
        }
        for _ in 0..3000 {
            let s = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            let t = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            if s != t {
                pairs.push((s, t));
            }
        }
        for (s, t) in &pairs {
            for _ in 0..3 {
                let st = router.select_path(s, t, &mut rng).path.stretch(&mesh);
                max_stretch = max_stretch.max(st);
                sum += st;
                count += 1;
            }
        }
        table.row(vec![
            d.to_string(),
            side.to_string(),
            mesh.node_count().to_string(),
            f2(max_stretch),
            f2(sum / count as f64),
            f3(max_stretch / (d * d) as f64),
            f2(stretch_bound(d)),
        ]);
        assert!(
            max_stretch <= stretch_bound(d),
            "Theorem 4.2 bound violated"
        );
    }
    table.print();
    println!(
        "\nExpected shape: max/d^2 stays roughly flat (the O(d^2) law);\n\
         every measurement sits below the explicit analysis constant."
    );
}
