//! **E27 — straggler mitigation under chaos: hedging vs retry vs nothing.**
//!
//! Runs one in-process `oblivion-serve` instance with deterministic
//! chaos injection (heavy-tailed compute stalls, slow writes,
//! connection resets, worker pauses — all a pure function of the chaos
//! seed) and drives it with the **open-loop** load generator, so every
//! latency is measured from the request's *scheduled* arrival and the
//! tails are coordinated-omission-corrected. Three mitigation policies
//! face the same chaotic server at the same arrival rate:
//!
//! 1. **none** — one attempt, generous budget: the corrected p999 is
//!    whatever the injected stall distribution says it is.
//! 2. **retry-after-timeout** — the classic knob: give up after a short
//!    per-attempt timeout and try again from scratch (new connection,
//!    fresh chaos draw), paying the full timeout plus backoff before
//!    each recovery.
//! 3. **hedged** — after a short stall, fire a duplicate on a second
//!    connection and take the first answer; the loser is cancelled and
//!    counted (`hedge_wasted`), never double-settled. Hedging can
//!    trigger far earlier than a retry timeout because a false alarm
//!    costs one duplicate request, not an abandoned attempt — that
//!    asymmetry is the policy's whole advantage.
//!
//! The claim under test: hedging cuts the corrected p999 by **≥ 2x**
//! against no mitigation and beats retry-after-timeout, at a duplicate
//! cost of a few percent — while the request-unit conservation law
//! holds on every live METRICS scrape taken mid-chaos.
//!
//! Absolute ms depend on the host; the ordering, the ≥2x tail cut, and
//! conservation are the reproducible part.

use oblivion_bench::table::{f2, Table};
use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_obs::Json;
use oblivion_serve::{
    parse_exposition, run_loadgen, ChaosConfig, Client, Control, HedgeAfter, LoadgenConfig,
    LoadgenReport, ServeConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

// The arrival rate and chaos intensity are tuned together so injected
// stalls are a *tail* phenomenon, not saturation: expected stall load is
// ~0.4 worker-seconds per second against 4 workers (~10% utilization).
// Saturate the pool with stalls and every policy drowns in queueing —
// there is no spare capacity for a hedge (or a retry) to exploit.
const REQUESTS: usize = 1200;
const RATE: f64 = 200.0;

/// Stops the scraper and the server when dropped, so a failed assertion
/// mid-experiment unwinds cleanly through the thread scope (which waits
/// for every spawned thread) instead of deadlocking behind a server and
/// scraper nobody told to stop.
struct StopOnDrop<'a> {
    ctl: &'a Control,
    stop_scraper: &'a AtomicBool,
}
impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.stop_scraper.store(true, Ordering::SeqCst);
        self.ctl.request_shutdown();
    }
}

/// One mitigation policy: a name plus the loadgen knobs that differ.
struct Policy {
    name: &'static str,
    retries: u32,
    timeout: Duration,
    hedge_after: Option<HedgeAfter>,
}

fn run_policy(addr: &str, mesh: &Mesh, p: &Policy) -> LoadgenReport {
    let lg = LoadgenConfig {
        addr: addr.to_string(),
        mesh: mesh.clone(),
        requests: REQUESTS,
        concurrency: 16,
        retries: p.retries,
        backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        timeout: p.timeout,
        seed: 0xE27,
        open_loop: true,
        rate: RATE,
        hedge_after: p.hedge_after,
        ..LoadgenConfig::default()
    };
    let r = run_loadgen(&lg);
    assert_eq!(
        r.malformed,
        0,
        "{}: malformed responses\n{}",
        p.name,
        r.render()
    );
    assert_eq!(r.bad_request, 0, "{}: client sent a bad request", p.name);
    r
}

fn main() {
    oblivion_bench::report::start();
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let chaos = ChaosConfig {
        seed: 0xE27,
        stall_prob: 0.06,
        stall: Duration::from_millis(15),
        write_prob: 0.05,
        write_stall: Duration::from_millis(2),
        reset_prob: 0.08,
        pause_prob: 0.01,
        pause: Duration::from_millis(5),
    };
    let cfg = ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 4,
        work: Duration::from_micros(300),
        deadline: Duration::from_secs(2),
        drain: Duration::from_secs(10),
        announce: false,
        chaos: Some(chaos.clone()),
        ..ServeConfig::default()
    };
    println!(
        "E27: straggler mitigation under chaos (16x16, busch-d, {} workers, open loop \
         {RATE:.0} req/s, chaos seed {:#x}: stall p={} scale {} ms, reset p={}, \
         write p={}, pause p={})\n",
        cfg.threads,
        chaos.seed,
        chaos.stall_prob,
        chaos.stall.as_millis(),
        chaos.reset_prob,
        chaos.write_prob,
        chaos.pause_prob,
    );

    let policies = [
        Policy {
            name: "none",
            retries: 0,
            timeout: Duration::from_secs(4),
            hedge_after: None,
        },
        Policy {
            name: "retry-after-timeout",
            retries: 6,
            timeout: Duration::from_millis(60),
            hedge_after: None,
        },
        Policy {
            name: "hedged",
            retries: 4,
            timeout: Duration::from_secs(4),
            // Aggressive on purpose: ~5x the p50, far below the retry
            // policy's 60 ms timeout. A premature hedge only wastes a
            // duplicate, so the trigger can sit near the body of the
            // latency distribution instead of past its tail.
            hedge_after: Some(HedgeAfter::After(Duration::from_millis(10))),
        },
    ];

    let ctl = Control::new();
    let stop_scraper = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);
    let mut table = Table::new(vec![
        "policy",
        "ok",
        "failed",
        "retries",
        "hedge l/w/x",
        "late",
        "p50 ms",
        "p99 ms",
        "p999 ms",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut p999 = std::collections::HashMap::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let _stop = StopOnDrop {
            ctl: &ctl,
            stop_scraper: &stop_scraper,
        };
        let addr = ctl
            .wait_addr(Duration::from_secs(10))
            .expect("server did not bind");
        let health = ctl.health_addr().expect("health listener did not bind");

        // Live conservation auditor: mid-chaos scrapes — with stalls
        // sleeping, resets killing pipelines, and hedge losers being
        // abandoned — must all satisfy the law, not just the final book.
        let stop_scraper = &stop_scraper;
        let scrapes = &scrapes;
        let scraper = scope.spawn(move || {
            let client = Client::to(health, Duration::from_secs(2));
            while !stop_scraper.load(Ordering::SeqCst) {
                let text = client.scrape().expect("METRICS scrape failed mid-chaos");
                let exp = parse_exposition(&text)
                    .unwrap_or_else(|why| panic!("unparseable scrape: {why}\n{text}"));
                exp.check_conservation()
                    .unwrap_or_else(|why| panic!("conservation violated on a live scrape: {why}"));
                scrapes.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(25));
            }
        });

        let addr_s = addr.to_string();
        for p in &policies {
            let r = run_policy(&addr_s, &mesh, p);
            table.row(vec![
                p.name.into(),
                r.ok.to_string(),
                r.failed.to_string(),
                r.retries.to_string(),
                format!("{}/{}/{}", r.hedge_launched, r.hedge_won, r.hedge_wasted),
                r.late_launches.to_string(),
                f2(r.latency_ms(0.50)),
                f2(r.latency_ms(0.99)),
                f2(r.latency_ms(0.999)),
            ]);
            let mut row = Json::obj();
            row.set("policy", p.name)
                .set("ok", r.ok)
                .set("failed", r.failed)
                .set("retries", r.retries)
                .set("hedge_launched", r.hedge_launched)
                .set("hedge_won", r.hedge_won)
                .set("hedge_wasted", r.hedge_wasted)
                .set("late_launches", r.late_launches)
                .set("p50_ms", r.latency_ms(0.50))
                .set("p99_ms", r.latency_ms(0.99))
                .set("p999_ms", r.latency_ms(0.999));
            rows.push(row);
            p999.insert(p.name, r.latency_ms(0.999));
            if p.name == "hedged" {
                assert_eq!(r.failed, 0, "hedged policy must converge\n{}", r.render());
                assert!(r.hedge_launched > 0, "chaos never tripped a hedge");
                assert!(r.hedge_wasted <= r.hedge_launched, "{}", r.render());
            }
        }

        stop_scraper.store(true, Ordering::SeqCst);
        scraper.join().expect("scraper panicked");
        ctl.request_shutdown();
        let summary = server
            .join()
            .expect("server panicked")
            .expect("server failed");
        assert!(
            summary.stats.conserved(),
            "final account does not conserve: {:?}",
            summary.stats
        );
        assert!(summary.stats.chaos_stalls > 0, "chaos never stalled");
        assert!(summary.stats.chaos_resets > 0, "chaos never reset");
        table.print();

        let none = p999["none"];
        let retry = p999["retry-after-timeout"];
        let hedged = p999["hedged"];
        let reduction = none / hedged.max(1e-9);
        println!(
            "\nCorrected p999: none {none:.2} ms, retry-after-timeout {retry:.2} ms, \
             hedged {hedged:.2} ms — {reduction:.1}x tail cut vs no mitigation. \
             Conservation held on all {} live scrapes ({} injected stalls, {} resets, \
             {} slow writes, {} pauses).",
            scrapes.load(Ordering::SeqCst),
            summary.stats.chaos_stalls,
            summary.stats.chaos_resets,
            summary.stats.chaos_slow_writes,
            summary.stats.chaos_worker_pauses,
        );

        let extra: Vec<(&str, Json)> = vec![
            ("none_p999_ms", Json::from(none)),
            ("retry_p999_ms", Json::from(retry)),
            ("hedged_p999_ms", Json::from(hedged)),
            ("tail_reduction_vs_none", Json::from(reduction)),
            ("hedged_beats_retry", Json::from(hedged < retry)),
            ("open_loop_rate_rps", Json::from(RATE)),
            ("requests_per_policy", Json::from(REQUESTS as u64)),
            ("chaos_seed", Json::from(chaos.seed)),
            ("chaos_stalls", Json::from(summary.stats.chaos_stalls)),
            ("chaos_resets", Json::from(summary.stats.chaos_resets)),
            (
                "chaos_slow_writes",
                Json::from(summary.stats.chaos_slow_writes),
            ),
            (
                "chaos_worker_pauses",
                Json::from(summary.stats.chaos_worker_pauses),
            ),
            ("conserved", Json::from(summary.stats.conserved())),
            (
                "live_scrapes_conserved",
                Json::from(scrapes.load(Ordering::SeqCst)),
            ),
            ("policies", Json::from(rows.clone())),
        ];
        oblivion_bench::report::finish_and_note(
            "serve_hedging",
            "E27: hedged requests vs retry-after-timeout under deterministic chaos",
            &table,
            &extra,
        );
        assert!(
            reduction >= 2.0,
            "hedging cut the corrected p999 only {reduction:.2}x \
             (none {none:.2} ms vs hedged {hedged:.2} ms); expected >= 2x"
        );
        assert!(
            hedged < retry,
            "hedged p999 {hedged:.2} ms did not beat retry-after-timeout {retry:.2} ms"
        );
    });
}
