//! **E9 — Section 5.1 (Lemmas 5.1–5.3)**: determinism forces congestion.
//!
//! Builds the paper's adversarial problem `Π_A` against the deterministic
//! dimension-order router and measures:
//!
//! * the congestion the deterministic router suffers on its own `Π_A`
//!   (Lemma 5.1 with κ = 1 predicts ≥ ℓ/d — every modal path *is* the
//!   path, so the hot edge carries all of `Π_A`);
//! * the congestion the randomized algorithm H achieves on the *same*
//!   problem (near the lower bound, Lemma 5.2).
//!
//! The growing gap with ℓ is exactly the paper's separation between
//! 1-choice and κ-choice algorithms.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{route_all, Busch2D, DimOrder};
use oblivion_mesh::Mesh;
use oblivion_metrics::{congestion_lower_bound, PathSetMetrics};
use oblivion_workloads::pi_a;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E9: the Pi_A construction vs deterministic routing (Lemmas 5.1-5.3)\n");
    let mut table = Table::new(vec![
        "side",
        "l",
        "|Pi_A|",
        "C(dim-order)",
        "l/d",
        "C(busch-2d)",
        "lb(C*)",
        "det/rand ratio",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE9);
    for side in [16u32, 32, 64] {
        let mesh = Mesh::new_mesh(&[side, side]);
        let det = DimOrder::new(mesh.clone());
        let rand_router = Busch2D::new(mesh.clone());
        let mut l = 2u32;
        while l <= side / 2 {
            let adv = pi_a(&det, l, 1, &mut rng);
            // Deterministic congestion on Pi_A: re-route (same paths) and
            // measure.
            let det_paths = route_all(&det, &adv.workload.pairs, &mut rng);
            let det_c = PathSetMetrics::measure(&mesh, &det_paths).congestion;
            // Randomized competitor on the same problem (worst of 3 trials).
            let mut rand_c = 0u32;
            for _ in 0..3 {
                let rp = route_all(&rand_router, &adv.workload.pairs, &mut rng);
                rand_c = rand_c.max(PathSetMetrics::measure(&mesh, &rp).congestion);
            }
            let lb = congestion_lower_bound(&mesh, &adv.workload.pairs);
            table.row(vec![
                side.to_string(),
                l.to_string(),
                adv.workload.len().to_string(),
                det_c.to_string(),
                f2(f64::from(l) / 2.0),
                rand_c.to_string(),
                f2(lb),
                f2(f64::from(det_c) / f64::from(rand_c.max(1))),
            ]);
            assert!(
                u64::from(det_c) >= u64::from(l) / 2,
                "Lemma 5.1 violated: deterministic congestion below l/d"
            );
            l *= 2;
        }
    }
    table.print();
    println!(
        "\nExpected shape: C(dim-order) grows linearly in l (>= l/d, Lemma 5.1), while\n\
         C(busch-2d) stays near the lower bound — the det/rand ratio diverges, showing\n\
         why randomization is unavoidable for near-optimal oblivious congestion."
    );
}
