//! **E22 — graceful degradation under deterministic fault injection.**
//!
//! Sweeps link-fault rates against recovery policies on one fixed online
//! workload and reports how the routing pipeline degrades: what fraction
//! of injected packets still arrives, how much latency the faults add
//! over the zero-fault baseline, how much the surviving links congest,
//! and how many packets are dead-lettered.
//!
//! The `resample` policy is the paper's own machinery doing double duty:
//! an oblivious path is drawn independently of history, so redrawing the
//! remainder of a stranded packet's path is just another independent
//! selection — the fault tolerance falls out of obliviousness for free.
//! `wait` (bounded exponential backoff) is the passive baseline to beat.
//!
//! Every number here is a pure function of the seeds: the fault plan
//! derives from the fault seed alone, recovery decisions are
//! deterministic, and the sharded engine reproduces the sequential
//! reference bit-for-bit (spot-checked per sweep).

use oblivion_bench::table::{f2, Table};
use oblivion_core::{Busch2D, ObliviousRouter};
use oblivion_faults::{FaultConfig, FaultMode, FaultPlan, RecoveryPolicy};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_obs::Json;
use oblivion_sim::{Faults, OnlineSim, PathSource, SchedulingPolicy, UniformTraffic};
use rand::rngs::StdRng;

/// Wraps a router so `resample` goes through its dedicated entry point.
struct RouterSource<'a>(&'a Busch2D);

impl PathSource for RouterSource<'_> {
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self.0.select_path(s, t, rng).path
    }
    fn resample(&self, current: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self.0.resample_path(current, t, rng).path
    }
}

fn main() {
    oblivion_bench::report::start();
    let side = 32u32;
    let (rate, steps, seed, fault_seed) = (0.04f64, 400u64, 0xE22u64, 0xFA_17u64);
    let threads = oblivion_bench::report::threads_from_env();
    println!(
        "E22: fault injection sweep ({side}x{side}, busch-2d, uniform, rate {rate}, \
         {steps} steps, {threads} threads)\n"
    );
    let mesh = Mesh::new_mesh(&[side, side]);
    let router = Busch2D::new(mesh.clone());
    let source = RouterSource(&router);
    let pattern = UniformTraffic::new(mesh.clone());
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, rate);

    // Zero-fault baseline: the yardstick for added stretch / congestion.
    let baseline = sim.run_sharded(&pattern, &source, steps, seed, threads);
    let base_latency = baseline.mean_latency;
    let base_peak = *baseline.link_loads.iter().max().unwrap_or(&1) as f64;
    println!(
        "zero-fault baseline: delivered {}/{} (mean latency {:.2}, peak link load {})",
        baseline.delivered, baseline.injected, base_latency, base_peak
    );

    let fault_rates = [0.02f64, 0.05, 0.10, 0.15];
    let policies = [RecoveryPolicy::Resample, RecoveryPolicy::Wait];
    let mut table = Table::new(vec![
        "fault rate",
        "recovery",
        "delivered frac",
        "latency x",
        "peak load x",
        "dead letters",
        "resamples",
        "blocked",
    ]);
    let mut cells: Vec<Json> = Vec::new();
    let mut checked = false;
    for &p in &fault_rates {
        for &recovery in &policies {
            let cfg = FaultConfig {
                link_fail_prob: p,
                mode: FaultMode::Transient,
                mttr: 20,
                mtbf: 200,
                ..FaultConfig::default()
            };
            let plan = FaultPlan::new(&mesh, &cfg, fault_seed, 2 * steps);
            let faulted = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, rate).with_faults(Faults {
                plan: &plan,
                recovery,
                retry_budget: 16,
            });
            let r = faulted.run_sharded(&pattern, &source, steps, seed, threads);
            if !checked {
                // Differential spot check: the sharded run must equal the
                // sequential reference under faults too.
                let seq = faulted.run(&pattern, &source, steps, seed);
                assert!(
                    r.same_outcome(&seq),
                    "sharded fault run diverged from sequential reference"
                );
                checked = true;
            }
            let fs = r.faults.expect("fault stats attached");
            let latency_x = if base_latency > 0.0 {
                r.mean_latency / base_latency
            } else {
                1.0
            };
            let peak = *r.link_loads.iter().max().unwrap_or(&0) as f64;
            let peak_x = peak / base_peak.max(1.0);
            table.row(vec![
                f2(p),
                recovery.name().into(),
                format!("{:.4}", r.delivered_fraction()),
                f2(latency_x),
                f2(peak_x),
                fs.dead_letters.to_string(),
                fs.resamples.to_string(),
                fs.blocked.to_string(),
            ]);
            let mut cell = Json::obj();
            cell.set("fault_rate", p)
                .set("recovery", recovery.name())
                .set("failed_links", fs.failed_links)
                .set("delivered_fraction", r.delivered_fraction())
                .set("latency_inflation", latency_x)
                .set("peak_load_inflation", peak_x)
                .set("dead_letters", fs.dead_letters)
                .set("resamples", fs.resamples)
                .set("blocked", fs.blocked)
                .set("drops", fs.drops);
            cells.push(cell);
        }
    }
    table.print();
    println!(
        "\nResampling rides the paper's obliviousness: a redraw from the stranded\n\
         node is an independent path, so transient faults cost latency, not loss.\n\
         Passive backoff keeps the original (possibly doomed) path and pays in\n\
         dead letters as the fault rate climbs."
    );

    let mut base = Json::obj();
    base.set("delivered", baseline.delivered)
        .set("injected", baseline.injected)
        .set("mean_latency", base_latency)
        .set("peak_link_load", base_peak);
    oblivion_bench::report::finish_and_note(
        "faults",
        "E22: fault injection and graceful degradation",
        &table,
        &[
            ("baseline", base),
            ("fault_seed", Json::from(fault_seed)),
            ("retry_budget", Json::from(16u64)),
            ("sweep", Json::from(cells)),
        ],
    );
}
