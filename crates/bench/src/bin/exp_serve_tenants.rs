//! **E28 — per-tenant quota isolation: one tenant's stampede is not
//! another tenant's outage.**
//!
//! Runs one in-process multi-tenant `oblivion-serve` daemon: two mesh
//! ids `a` and `b` behind the `MESH <id>` wire prefix, each with its own
//! token-bucket admission quota (rate Q/s, burst Q, Q unsettled lines).
//! Two phases, both open-loop (coordinated-omission-corrected tails):
//!
//! 1. **solo** — tenant `b` alone at 50% of its quota: the baseline
//!    p99 and goodput a well-behaved tenant sees on a quiet daemon.
//! 2. **contended** — tenant `a` stampedes at 4x its quota while `b`
//!    keeps its 50% pace. The quota sheds `a`'s excess with
//!    `ERR OVERLOADED` charged to `a` alone.
//!
//! The claim under test: `b`'s goodput is unchanged (within 10%) and
//! its corrected p99 does not inflate past 10% (+0.5 ms of scheduler
//! noise floor), **every** shed line is charged to `a`'s ledger and
//! none to `b`'s, and both the global and the per-tenant conservation
//! laws hold on every live METRICS scrape taken mid-stampede.
//!
//! Absolute ms depend on the host; the isolation ratios, the shed
//! attribution, and conservation are the reproducible part.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{build_router, parse_mesh_spec};
use oblivion_obs::Json;
use oblivion_serve::{
    parse_exposition, run_loadgen, Client, Control, LoadgenConfig, LoadgenReport, Registry,
    RouterHandle, ServeConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Each tenant's admission quota: Q lines/s, burst Q, Q unsettled.
/// Sized for a 1-core CI box: the experiment measures *isolation*, so
/// the offered load must leave headroom for the loadgen threads
/// themselves — otherwise client-side scheduling delay masquerades as
/// server-side tail inflation.
const QUOTA: u64 = 40;
/// Tenant b's rate in both phases: 50% of its quota.
const B_RATE: f64 = QUOTA as f64 * 0.5;
/// Tenant a's stampede rate: 4x its quota.
const A_RATE: f64 = QUOTA as f64 * 4.0;
/// ~5 s per phase at the rates above.
const B_REQUESTS: usize = 100;
const A_REQUESTS: usize = 800;

/// Stops the scraper and the server when dropped, so a failed assertion
/// unwinds cleanly through the thread scope instead of deadlocking.
struct StopOnDrop<'a> {
    ctl: &'a Control,
    stop_scraper: &'a AtomicBool,
}
impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.stop_scraper.store(true, Ordering::SeqCst);
        self.ctl.request_shutdown();
    }
}

fn tenant_load(
    addr: &str,
    tenant: &str,
    requests: usize,
    rate: f64,
    retries: u32,
) -> LoadgenConfig {
    LoadgenConfig {
        addr: addr.to_string(),
        mesh: parse_mesh_spec("16x16", false).expect("mesh"),
        requests,
        concurrency: if retries == 0 { 8 } else { 4 },
        retries,
        backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        timeout: Duration::from_secs(4),
        seed: 0xE28,
        open_loop: true,
        rate,
        tenants: vec![(tenant.to_string(), 1.0)],
        ..LoadgenConfig::default()
    }
}

fn check_b(r: &LoadgenReport, phase: &str) {
    assert_eq!(
        r.malformed,
        0,
        "{phase}: malformed responses\n{}",
        r.render()
    );
    assert_eq!(
        r.failed,
        0,
        "{phase}: tenant b requests failed\n{}",
        r.render()
    );
    assert_eq!(
        r.overloaded,
        0,
        "{phase}: tenant b was shed despite staying at 50% of quota\n{}",
        r.render()
    );
}

fn main() {
    oblivion_bench::report::start();
    let registry = Registry::new("a", Some(QUOTA));
    for id in ["a", "b"] {
        let mesh = parse_mesh_spec("16x16", false).expect("mesh");
        let router = build_router("buschd", &mesh).expect("router");
        registry.add(id, RouterHandle::Owned(router)).expect("add");
    }
    let cfg = ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 2,
        // Generous shared queue: every shed in this experiment must come
        // from the per-tenant quota (attributed), not global admission
        // (unattributed), so the attribution claim is checkable.
        queue_cap: 4096,
        work: Duration::from_micros(100),
        deadline: Duration::from_secs(2),
        drain: Duration::from_secs(10),
        announce: false,
        ..ServeConfig::default()
    };
    println!(
        "E28: per-tenant quota isolation (two 16x16 busch-d tenants, quota {QUOTA}/s each, \
         {} workers; b open-loop at {B_RATE:.0}/s, a stampedes at {A_RATE:.0}/s = 4x quota)\n",
        cfg.threads
    );

    let ctl = Control::new();
    let stop_scraper = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);
    let mut table = Table::new(vec![
        "phase", "tenant", "ok", "failed", "shed", "late", "p50 ms", "p99 ms",
    ]);
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run_registry(&registry, &cfg, &ctl));
        let _stop = StopOnDrop {
            ctl: &ctl,
            stop_scraper: &stop_scraper,
        };
        let addr = ctl
            .wait_addr(Duration::from_secs(10))
            .expect("server did not bind");
        let health = ctl.health_addr().expect("health listener did not bind");

        // Live conservation auditor: every mid-stampede scrape must
        // satisfy the global law AND each tenant's own ledger law.
        let stop_flag = &stop_scraper;
        let scrapes_ref = &scrapes;
        let scraper = scope.spawn(move || {
            let client = Client::to(health, Duration::from_secs(2));
            while !stop_flag.load(Ordering::SeqCst) {
                let text = client.scrape().expect("METRICS scrape failed mid-load");
                let exp = parse_exposition(&text)
                    .unwrap_or_else(|why| panic!("unparseable scrape: {why}\n{text}"));
                exp.check_conservation()
                    .unwrap_or_else(|why| panic!("conservation violated on a live scrape: {why}"));
                scrapes_ref.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(100));
            }
        });

        let addr_s = addr.to_string();

        // Phase 1: b alone at half its quota — the solo baseline.
        let b_solo = run_loadgen(&tenant_load(&addr_s, "b", B_REQUESTS, B_RATE, 2));
        check_b(&b_solo, "solo");
        table.row(vec![
            "solo".into(),
            "b".into(),
            b_solo.ok.to_string(),
            b_solo.failed.to_string(),
            b_solo.overloaded.to_string(),
            b_solo.late_launches.to_string(),
            f2(b_solo.latency_ms(0.50)),
            f2(b_solo.latency_ms(0.99)),
        ]);

        // Phase 2: a stampedes at 4x quota while b keeps its pace.
        // a runs retry-free: its shed lines ARE the experiment, not a
        // failure to converge.
        let (a_contended, b_contended) = std::thread::scope(|inner| {
            let a = inner.spawn(|| run_loadgen(&tenant_load(&addr_s, "a", A_REQUESTS, A_RATE, 0)));
            let b = inner.spawn(|| run_loadgen(&tenant_load(&addr_s, "b", B_REQUESTS, B_RATE, 2)));
            (a.join().expect("a loadgen"), b.join().expect("b loadgen"))
        });
        check_b(&b_contended, "contended");
        assert_eq!(a_contended.malformed, 0, "a: malformed responses");
        assert!(
            a_contended.overloaded > 0,
            "a at 4x quota was never shed — the quota did nothing\n{}",
            a_contended.render()
        );
        for (phase, r) in [("contended", &a_contended), ("contended", &b_contended)] {
            let tenant = if std::ptr::eq(r, &a_contended) {
                "a"
            } else {
                "b"
            };
            table.row(vec![
                phase.into(),
                tenant.into(),
                r.ok.to_string(),
                r.failed.to_string(),
                r.overloaded.to_string(),
                r.late_launches.to_string(),
                f2(r.latency_ms(0.50)),
                f2(r.latency_ms(0.99)),
            ]);
        }

        stop_scraper.store(true, Ordering::SeqCst);
        scraper.join().expect("scraper panicked");
        ctl.request_shutdown();
        let summary = server
            .join()
            .expect("server panicked")
            .expect("server failed");
        let s = &summary.stats;
        assert!(s.conserved(), "final global account: {s:?}");
        assert!(s.tenants_conserved(), "final per-tenant accounts: {s:?}");
        let ta = s.tenant("a").expect("tenant a ledger");
        let tb = s.tenant("b").expect("tenant b ledger");
        assert_eq!(
            tb.shed_overloaded, 0,
            "shed charged to b despite b staying inside its quota: {s:?}"
        );
        assert_eq!(
            ta.shed_overloaded, s.shed_overloaded,
            "some shed was not charged to a's ledger: {s:?}"
        );
        assert!(ta.state_bytes > 0 && tb.state_bytes > 0, "{s:?}");
        table.print();

        let solo_p99 = b_solo.latency_ms(0.99);
        let cont_p99 = b_contended.latency_ms(0.99);
        let goodput_ratio = b_contended.ok as f64 / b_solo.ok.max(1) as f64;
        println!(
            "\nTenant b corrected p99: solo {solo_p99:.2} ms vs contended {cont_p99:.2} ms \
             (goodput ratio {goodput_ratio:.3}); a shed {} of {} lines, all {} OVERLOADED \
             charged to a. Both conservation laws held on all {} live scrapes.",
            ta.shed_overloaded,
            a_contended.ok + a_contended.failed,
            s.shed_overloaded,
            scrapes.load(Ordering::SeqCst),
        );

        let extra: Vec<(&str, Json)> = vec![
            ("quota_per_tenant", Json::from(QUOTA)),
            ("b_rate_rps", Json::from(B_RATE)),
            ("a_rate_rps", Json::from(A_RATE)),
            ("b_solo_p99_ms", Json::from(solo_p99)),
            ("b_contended_p99_ms", Json::from(cont_p99)),
            ("b_goodput_ratio", Json::from(goodput_ratio)),
            ("b_shed", Json::from(tb.shed_overloaded)),
            ("a_shed", Json::from(ta.shed_overloaded)),
            ("shed_total", Json::from(s.shed_overloaded)),
            ("a_ok", Json::from(a_contended.ok)),
            ("conserved", Json::from(s.conserved())),
            ("tenants_conserved", Json::from(s.tenants_conserved())),
            (
                "live_scrapes_conserved",
                Json::from(scrapes.load(Ordering::SeqCst)),
            ),
        ];
        oblivion_bench::report::finish_and_note(
            "serve_tenants",
            "E28: per-tenant quota isolation — a 4x stampede on one mesh id leaves \
             the other tenant's goodput and tail intact",
            &table,
            &extra,
        );
        assert!(
            goodput_ratio >= 0.9,
            "tenant b goodput collapsed under a's stampede: ratio {goodput_ratio:.3}"
        );
        // 10% relative plus a 2 ms absolute floor: the open-loop
        // correction charges client-side scheduling delay to latency,
        // and on a 1-core CI box that jitter would otherwise fail a
        // perfectly isolated run at a sub-ms baseline.
        assert!(
            cont_p99 <= solo_p99 * 1.10 + 2.0,
            "tenant b p99 inflated past 10% under a's stampede: \
             solo {solo_p99:.2} ms vs contended {cont_p99:.2} ms"
        );
    });
}
