//! **E23 — checkpoint overhead sweep.**
//!
//! Runs one fixed online workload with snapshotting every K steps for
//! K ∈ {0, 10, 50, 100, 500} (K = 0 disables checkpointing entirely)
//! and reports what the crash-consistency machinery costs: wall-clock
//! inflation over the K = 0 baseline, how many snapshot generations were
//! written, and how large a snapshot is on disk.
//!
//! Correctness rides along: every sweep point must produce the *same*
//! simulation outcome as the baseline — checkpointing is pure
//! bookkeeping and may never perturb the simulation — and the run
//! aborts if any K diverges.

use oblivion_bench::table::{f2, Table};
use oblivion_ckpt::Store;
use oblivion_core::{Busch2D, ObliviousRouter};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_obs::Json;
use oblivion_sim::{CheckpointCfg, OnlineSim, PathSource, SchedulingPolicy, UniformTraffic};
use rand::rngs::StdRng;
use std::time::Instant;

/// Adapts the router to the simulator's path source.
struct RouterSource<'a>(&'a Busch2D);

impl PathSource for RouterSource<'_> {
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self.0.select_path(s, t, rng).path
    }
    fn resample(&self, current: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self.0.resample_path(current, t, rng).path
    }
}

fn main() {
    oblivion_bench::report::start();
    let side = 32u32;
    let (rate, steps, seed) = (0.06f64, 600u64, 0xE23u64);
    let threads = oblivion_bench::report::threads_from_env();
    println!(
        "E23: checkpoint overhead sweep ({side}x{side}, busch-2d, uniform, rate {rate}, \
         {steps} steps, {threads} threads)\n"
    );
    let mesh = Mesh::new_mesh(&[side, side]);
    let router = Busch2D::new(mesh.clone());
    let source = RouterSource(&router);
    let pattern = UniformTraffic::new(mesh.clone());
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, rate);

    // Untimed warmup so the baseline doesn't absorb one-time costs
    // (page faults, allocator growth) that would flatter every K > 0.
    let _ = sim.run_sharded(&pattern, &source, steps, seed, threads);

    // K = 0 baseline: checkpointing never engages, so this is the cost
    // of the feature being merely compiled in (it must be zero).
    let start = Instant::now();
    let baseline = sim.run_sharded(&pattern, &source, steps, seed, threads);
    let base_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "baseline (K=0): delivered {}/{} in {:.0} ms",
        baseline.delivered, baseline.injected, base_ms
    );

    let sweep = [0u64, 10, 50, 100, 500];
    let mut table = Table::new(vec![
        "every K",
        "wall ms",
        "overhead x",
        "snapshots",
        "snapshot bytes",
        "identical",
    ]);
    let mut cells: Vec<Json> = Vec::new();
    for &every in &sweep {
        let dir =
            std::env::temp_dir().join(format!("oblivion_e23_k{every}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create checkpoint dir");
        let store = Store::open(&dir).expect("open checkpoint store");
        let cfg = CheckpointCfg {
            store: &store,
            every,
            stop_at: None,
            config_hash: 0xE23,
            resume_generation: 0,
            resume_step: None,
        };
        let start = Instant::now();
        let r = sim
            .run_sharded_ckpt(&pattern, &source, steps, seed, threads, Some(&cfg), None)
            .expect("uninterrupted run completes");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let identical = r.same_outcome(&baseline);
        assert!(
            identical,
            "K={every}: checkpointing perturbed the simulation"
        );
        let (snapshots, bytes) = match store.load_latest(0xE23).snapshot {
            Some(snap) => (snap.generation, snap.payload.len() as u64),
            None => (0, 0),
        };
        table.row(vec![
            every.to_string(),
            format!("{ms:.0}"),
            f2(ms / base_ms.max(1e-9)),
            snapshots.to_string(),
            bytes.to_string(),
            "yes".into(),
        ]);
        let mut cell = Json::obj();
        cell.set("every", every)
            .set("wall_ms", ms)
            .set("overhead_x", ms / base_ms.max(1e-9))
            .set("snapshots_written", snapshots)
            .set("snapshot_payload_bytes", bytes)
            .set("identical_to_baseline", identical);
        cells.push(cell);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    println!(
        "\nSnapshots capture the full in-flight state, so their size tracks the\n\
         packet population, not the mesh; the write path (encode + CRC + fsync +\n\
         rename) only runs every K steps, so overhead decays roughly as 1/K.\n\
         `identical` is asserted, not observed: checkpointing may never change\n\
         what the simulator computes."
    );

    let mut base = Json::obj();
    base.set("delivered", baseline.delivered)
        .set("injected", baseline.injected)
        .set("mean_latency", baseline.mean_latency);
    oblivion_bench::report::finish_and_note(
        "checkpoint_overhead",
        "E23: checkpoint overhead sweep",
        &table,
        &[
            ("baseline", base),
            ("threads", Json::from(threads as u64)),
            ("sweep", Json::from(cells)),
        ],
    );
}
