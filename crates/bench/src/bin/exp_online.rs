//! **E18 — online routing** (Section 1: "packets continuously arrive").
//!
//! The classic interconnection-network evaluation: mean packet latency vs
//! offered load, under continuous Bernoulli injection. Because oblivious
//! routers fix each path at injection with no global state, they drop
//! straight into this online setting — the paper's core motivation. The
//! interesting contrast is adversarial traffic (transpose): deterministic
//! dimension-order routing saturates early on its hot diagonal band, while
//! algorithm H sustains higher load at bounded latency.

use oblivion_bench::table::{f2, f3, Table};
use oblivion_core::{Busch2D, DimOrder, ObliviousRouter, Valiant};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_obs::Json;
use oblivion_sim::{FixedTraffic, OnlineSim, SchedulingPolicy, TrafficPattern, UniformTraffic};
use rand::rngs::StdRng;
use std::time::Instant;

fn run_curve(
    mesh: &Mesh,
    router: &dyn ObliviousRouter,
    pattern: &dyn TrafficPattern,
    rates: &[f64],
    threads: usize,
    table: &mut Table,
) {
    let source =
        |s: &Coord, t: &Coord, rng: &mut StdRng| -> Path { router.select_path(s, t, rng).path };
    for &rate in rates {
        let sim = OnlineSim::new(mesh, SchedulingPolicy::Fifo, rate);
        let r = sim.run_sharded(pattern, &source, 600, 0xE18, threads);
        table.row(vec![
            router.name(),
            pattern.name(),
            f3(rate),
            r.injected.to_string(),
            f2(r.mean_latency),
            f2(r.p95_latency),
            f3(r.throughput),
            r.in_flight.to_string(),
        ]);
    }
}

fn main() {
    oblivion_bench::report::start();
    let side = 16u32;
    println!("E18: online latency vs offered load ({side}x{side}, FIFO, 600-step window)\n");
    let mesh = Mesh::new_mesh(&[side, side]);
    let h = Busch2D::new(mesh.clone());
    let dim = DimOrder::new(mesh.clone());
    let val = Valiant::new(mesh.clone());
    let uniform = UniformTraffic::new(mesh.clone());
    let transpose = FixedTraffic {
        pattern_name: "transpose".into(),
        map: |c| Coord::new(&[c[1], c[0]]),
    };

    let mut table = Table::new(vec![
        "router",
        "pattern",
        "rate",
        "injected",
        "mean lat",
        "p95 lat",
        "throughput",
        "in flight",
    ]);
    let threads = oblivion_bench::report::threads_from_env();
    let rates = [0.01, 0.05, 0.1, 0.2];
    for pattern in [&uniform as &dyn TrafficPattern, &transpose] {
        run_curve(&mesh, &h, pattern, &rates, threads, &mut table);
        run_curve(&mesh, &dim, pattern, &rates, threads, &mut table);
        run_curve(&mesh, &val, pattern, &rates, threads, &mut table);
    }
    table.print();
    println!(
        "\nExpected shape: at low rates latency ~ mean path length, so dim-order\n\
         (stretch 1) is lowest and busch-2d tracks it within its constant stretch\n\
         factor. Near saturation, valiant collapses first on BOTH patterns (its\n\
         detours burn link capacity: accepted throughput stalls ~0.12), while\n\
         busch-2d and dim-order degrade gracefully. The worst-case-congestion\n\
         separation between H and dim-order is a batch phenomenon (see E9/E10);\n\
         under symmetric steady-state injection dim-order's average case is fine —\n\
         an honest boundary of the paper's worst-case claims."
    );
    oblivion_bench::report::finish_and_note(
        "exp_online",
        "E11: online latency vs offered load",
        &table,
        &[("threads", Json::from(threads))],
    );

    // Sequential vs parallel wall-clock on one heavy configuration; the
    // two runs are asserted identical before the timings are recorded.
    let source = |s: &Coord, t: &Coord, rng: &mut StdRng| -> Path { h.select_path(s, t, rng).path };
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.1);
    let t0 = Instant::now();
    let seq = sim.run(&uniform, &source, 600, 0xE18);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let par = sim.run_sharded(&uniform, &source, 600, 0xE18, threads);
    let par_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(
        par.same_outcome(&seq),
        "parallel engine must reproduce the sequential run exactly"
    );
    println!(
        "\nwall-clock (busch-2d, uniform, rate 0.1): sequential {seq_ms:.0} ms, \
         {threads}-thread sharded {par_ms:.0} ms ({:.2}x)",
        seq_ms / par_ms
    );
    oblivion_bench::report::write_bench_and_note(
        "online",
        &[
            ("threads", Json::from(threads)),
            ("seq_ms", Json::from(seq_ms)),
            ("par_ms", Json::from(par_ms)),
            ("speedup", Json::from(seq_ms / par_ms)),
        ],
    );
}
