//! **E26 — pipelining depth × routing batch size.**
//!
//! Sweeps the two knobs that govern pipelined serving throughput
//! against each other on one small server (2 workers, 0.5 ms of
//! simulated work per routing burst):
//!
//! - **client pipeline depth** (requests in flight per connection):
//!   1, 4, 16, 64 — depth 1 is keep-alive without pipelining;
//! - **server batch size** (`--batch-max`, lines routed per burst):
//!   1, 8, 64 — batch 1 pays the per-burst work charge on every line.
//!
//! Expected shape: goodput scales with depth only when the server can
//! batch (the per-burst work amortizes over `min(depth, batch)` lines),
//! so the depth-64 column flattens at batch 1 and climbs at batch 64.
//! Conservation must hold in the final account of every cell's server.
//!
//! Writes the grid to `results/serve_pipeline.json`.

use oblivion_bench::table::{f2, Table};
use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_obs::Json;
use oblivion_serve::{run_loadgen, Control, LoadgenConfig, ServeConfig};
use std::time::Duration;

fn main() {
    oblivion_bench::report::start();
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let deadline = Duration::from_millis(500);
    println!(
        "E26: pipelining depth x batch size (16x16, busch-d, 2 workers, 0.5 ms work/burst, \
         {} ms deadline)\n",
        deadline.as_millis()
    );

    let mut table = Table::new(vec![
        "batch",
        "depth",
        "ok",
        "shed",
        "goodput req/s",
        "p50 ms",
        "p99 ms",
    ]);
    let mut grid: Vec<Json> = Vec::new();
    for batch_max in [1usize, 8, 64] {
        let cfg = ServeConfig {
            port: 0,
            health_port: None,
            threads: 2,
            queue_cap: 16,
            batch_max,
            work: Duration::from_micros(500),
            deadline,
            drain: Duration::from_secs(10),
            announce: false,
            ..ServeConfig::default()
        };
        let ctl = Control::new();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
            let addr = ctl
                .wait_addr(Duration::from_secs(10))
                .expect("server did not bind")
                .to_string();
            for depth in [1usize, 4, 16, 64] {
                let lg = LoadgenConfig {
                    addr: addr.clone(),
                    mesh: mesh.clone(),
                    requests: 2000,
                    concurrency: 4,
                    retries: 0,
                    timeout: Duration::from_secs(5),
                    seed: 0xE26 + batch_max as u64 * 131 + depth as u64,
                    keep_alive: true,
                    pipeline: depth,
                    ..LoadgenConfig::default()
                };
                let r = run_loadgen(&lg);
                assert_eq!(r.malformed, 0, "malformed responses in cell");
                let shed = r.overloaded + r.deadline;
                table.row(vec![
                    batch_max.to_string(),
                    depth.to_string(),
                    r.ok.to_string(),
                    shed.to_string(),
                    format!("{:.0}", r.goodput()),
                    f2(r.latency_ms(0.50)),
                    f2(r.latency_ms(0.99)),
                ]);
                let mut row = Json::obj();
                row.set("batch_max", batch_max as u64)
                    .set("depth", depth as u64)
                    .set("ok", r.ok)
                    .set("shed", shed)
                    .set("goodput_rps", r.goodput())
                    .set("p50_ms", r.latency_ms(0.50))
                    .set("p99_ms", r.latency_ms(0.99));
                grid.push(row);
            }
            ctl.request_shutdown();
            let summary = server
                .join()
                .expect("server panicked")
                .expect("server failed");
            assert!(
                summary.stats.conserved(),
                "batch {batch_max}: final account does not conserve: {:?}",
                summary.stats
            );
        });
    }
    table.print();

    // The headline cells: deep pipeline against a batching server vs
    // against a line-at-a-time server.
    let cell = |b: u64, d: u64| -> f64 {
        grid.iter()
            .find(|r| {
                r.get("batch_max").and_then(Json::as_u64) == Some(b)
                    && r.get("depth").and_then(Json::as_u64) == Some(d)
            })
            .and_then(|r| r.get("goodput_rps").and_then(Json::as_f64))
            .unwrap_or(0.0)
    };
    let amortized = cell(64, 64);
    let line_at_a_time = cell(1, 64);
    println!(
        "\nDepth 64: batch 64 sustains {amortized:.0} req/s vs {line_at_a_time:.0} req/s at \
         batch 1 — the per-burst work charge only amortizes when the server batches."
    );

    let extra: Vec<(&str, Json)> = vec![
        ("grid", Json::from(grid.clone())),
        ("goodput_batch64_depth64", Json::from(amortized)),
        ("goodput_batch1_depth64", Json::from(line_at_a_time)),
    ];
    oblivion_bench::report::finish_and_note(
        "serve_pipeline",
        "E26: pipelining depth x batch size sweep",
        &table,
        &extra,
    );
    assert!(
        amortized > line_at_a_time,
        "batching gave no benefit at depth 64: {amortized:.0} <= {line_at_a_time:.0}"
    );
}
