//! **E4 — Theorem 3.9**: 2-D congestion is `O(C* log n)` w.h.p.
//!
//! Routes hard permutations on growing meshes and reports the ratio of the
//! achieved congestion `C` to the `C*` lower-bound estimate `lb`, and the
//! normalized ratio `C / (lb · log₂ n)`. Theorem 3.9 predicts the former
//! grows at most logarithmically and the latter stays bounded.

use oblivion_bench::harness::measure_worst;
use oblivion_bench::table::{f2, Table};
use oblivion_core::Busch2D;
use oblivion_mesh::Mesh;
use oblivion_workloads::{bit_complement, random_permutation, transpose, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    oblivion_bench::report::start();
    println!("E4: 2-D congestion of algorithm H vs optimal (Theorem 3.9: C = O(C* log n))\n");
    let mut table = Table::new(vec![
        "side",
        "n",
        "workload",
        "C",
        "lb(C*)",
        "C/lb",
        "C/(lb*log2 n)",
        "max stretch",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE4);
    for side in [8u32, 16, 32, 64, 128] {
        let mesh = Mesh::new_mesh(&[side, side]);
        let n = mesh.node_count();
        let log_n = (n as f64).log2();
        let router = Busch2D::new(mesh.clone());
        let workloads: Vec<Workload> = vec![
            transpose(&mesh).without_self_loops(),
            bit_complement(&mesh),
            random_permutation(&mesh, &mut rng),
        ];
        for w in workloads {
            let m = measure_worst(&router, &w, 0xE4, 3);
            table.row(vec![
                side.to_string(),
                n.to_string(),
                w.name.clone(),
                m.metrics.congestion.to_string(),
                f2(m.lower_bound),
                f2(m.competitive),
                f2(m.competitive / log_n),
                f2(m.metrics.max_stretch),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: C/lb grows ~log n (slowly); C/(lb*log2 n) stays O(1);\n\
         stretch stays <= 64 regardless of workload (Theorems 3.4 + 3.9)."
    );
    oblivion_bench::report::finish_and_note(
        "exp_congestion2d",
        "E4: 2-D congestion vs the C* lower bound (Theorem 3.9)",
        &table,
        &[],
    );
}
