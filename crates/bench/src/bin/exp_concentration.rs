//! **E13 — the "with high probability" in Theorems 3.9 / 4.3**.
//!
//! The congestion guarantee is probabilistic: the Chernoff argument of
//! Theorem 3.9 says the congestion of a run concentrates tightly around
//! its expectation, with polynomially small tail. This experiment performs
//! many independent runs of algorithm H on a fixed hard workload and
//! reports the distribution of the achieved congestion: the coefficient of
//! variation should be small, and max/median close to 1.

use oblivion_bench::table::{f2, f3, Table};
use oblivion_core::ObliviousRouter;
use oblivion_core::{route_all, Busch2D, BuschD};
use oblivion_mesh::Mesh;
use oblivion_metrics::{PathSetMetrics, Summary};
use oblivion_workloads::{random_permutation, transpose, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn congestion_sample(
    router: &dyn ObliviousRouter,
    w: &Workload,
    runs: usize,
    seed: u64,
) -> Summary {
    let mesh = router.mesh();
    let mut sample = Vec::with_capacity(runs);
    for i in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed + i as u64);
        let paths = route_all(router, &w.pairs, &mut rng);
        sample.push(PathSetMetrics::measure(mesh, &paths).congestion);
    }
    Summary::of_u32(&sample)
}

fn main() {
    println!("E13: congestion concentration over independent runs (the 'w.h.p.' of Thm 3.9/4.3)\n");
    let runs = 60;
    let mut table = Table::new(vec![
        "mesh",
        "workload",
        "runs",
        "min C",
        "median C",
        "max C",
        "mean C",
        "cv",
        "max/median",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE13);

    // 2-D, side 32.
    let mesh2 = Mesh::new_mesh(&[32, 32]);
    let r2 = Busch2D::new(mesh2.clone());
    for w in [
        transpose(&mesh2).without_self_loops(),
        random_permutation(&mesh2, &mut rng),
    ] {
        let s = congestion_sample(&r2, &w, runs, 0x13_2D);
        table.row(vec![
            "32x32".into(),
            w.name.clone(),
            runs.to_string(),
            f2(s.min),
            f2(s.median),
            f2(s.max),
            f2(s.mean),
            f3(s.cv()),
            f3(s.max / s.median),
        ]);
    }

    // 3-D, side 8.
    let mesh3 = Mesh::new_mesh(&[8, 8, 8]);
    let r3 = BuschD::new(mesh3.clone());
    let w3 = random_permutation(&mesh3, &mut rng);
    let s = congestion_sample(&r3, &w3, runs, 0x13_3D);
    table.row(vec![
        "8x8x8".into(),
        w3.name.clone(),
        runs.to_string(),
        f2(s.min),
        f2(s.median),
        f2(s.max),
        f2(s.mean),
        f3(s.cv()),
        f3(s.max / s.median),
    ]);

    table.print();
    println!(
        "\nExpected shape: cv well below 0.2 and max/median below ~1.3 — the congestion\n\
         of a random run is essentially deterministic, as the Chernoff bound predicts."
    );
}
