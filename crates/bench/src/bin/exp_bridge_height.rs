//! **E7 — Lemma 3.3 / Lemma 4.1**: bridge-height bounds.
//!
//! 2-D: exhaustively over all pairs, the deepest common ancestor has
//! height ≤ ⌈log₂ dist⌉ + 2. d-D: over sampled pairs, the bridge block
//! side is ≤ 8(d+1)·dist (or the root).

use oblivion_bench::table::{f2, Table};
use oblivion_decomp::{Decomp2, DecompD};
use oblivion_mesh::Coord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn two_d() {
    println!("E7a: 2-D deepest-common-ancestor height (Lemma 3.3: h <= ceil(log2 dist) + 2)\n");
    let mut table = Table::new(vec![
        "side",
        "pairs",
        "max(h - ceil(log2 dist))",
        "bound",
        "bridge usage %",
    ]);
    for k in [3u32, 4, 5, 6] {
        let d = Decomp2::new(k);
        let mesh = d.mesh();
        let pts: Vec<Coord> = mesh.coords().collect();
        let mut worst: i64 = i64::MIN;
        let mut type2_used = 0u64;
        let mut total = 0u64;
        for s in &pts {
            for t in &pts {
                if s == t {
                    continue;
                }
                let dist = mesh.dist(s, t);
                let (blk, h) = d.deepest_common_ancestor(s, t);
                let lg = (dist as f64).log2().ceil() as i64;
                worst = worst.max(i64::from(h) - lg);
                if blk.kind == oblivion_decomp::BlockType2D::Type2 {
                    type2_used += 1;
                }
                total += 1;
            }
        }
        table.row(vec![
            (1u32 << k).to_string(),
            total.to_string(),
            worst.to_string(),
            "2".into(),
            f2(100.0 * type2_used as f64 / total as f64),
        ]);
        assert!(worst <= 2, "Lemma 3.3 violated");
    }
    table.print();
}

fn d_dim() {
    println!("\nE7b: d-D bridge side vs distance (Lemma 4.1: side <= 8(d+1)*dist, or root)\n");
    let mut table = Table::new(vec![
        "d",
        "side",
        "pairs",
        "max bridge-side/dist",
        "bound 8(d+1)",
        "root fallback %",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE7);
    for (dim, k) in [(1usize, 9u32), (2, 6), (3, 4), (4, 3)] {
        let dd = DecompD::new(dim, k);
        let mesh = dd.mesh();
        let side = 1u32 << k;
        let mut worst = 0f64;
        let mut roots = 0u64;
        let trials = 20000u64;
        for _ in 0..trials {
            let s = Coord::new(&(0..dim).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            let t = Coord::new(&(0..dim).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            if s == t {
                continue;
            }
            let dist = mesh.dist(&s, &t);
            let plan = dd.find_bridge(&mesh, &s, &t);
            if plan.bridge_height == dd.k() {
                roots += 1;
                continue;
            }
            let bside = f64::from(dd.block_side(dd.k() - plan.bridge_height));
            worst = worst.max(bside / dist as f64);
        }
        let bound = 8.0 * (dim as f64 + 1.0);
        table.row(vec![
            dim.to_string(),
            side.to_string(),
            trials.to_string(),
            f2(worst),
            f2(bound),
            f2(100.0 * roots as f64 / trials as f64),
        ]);
        assert!(worst <= bound, "Lemma 4.1 violated");
    }
    table.print();
    println!(
        "\nRoot fallback happens only for pairs whose distance is a constant fraction\n\
         of the diameter, where the root *is* the right bridge."
    );
}

fn main() {
    two_d();
    d_dim();
}
