//! **E17 — parallel routing throughput** (implementation property, not a
//! paper claim): oblivious path selection is embarrassingly parallel.
//!
//! Measures paths/second of `route_all_parallel` as the thread count
//! grows, and verifies (again, live) that the output is bit-identical to
//! the sequential reference — obliviousness means no cross-packet state,
//! so parallel speedup costs nothing in reproducibility.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{route_all_parallel, route_all_seeded, Busch2D};
use oblivion_mesh::Mesh;
use oblivion_workloads::random_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let side = 128u32;
    println!("E17: parallel path-selection scaling on the {side}x{side} mesh\n");
    let mesh = Mesh::new_mesh(&[side, side]);
    let router = Busch2D::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(0xE17);
    // 4 permutations' worth of packets.
    let mut pairs = Vec::new();
    for _ in 0..4 {
        pairs.extend(random_permutation(&mesh, &mut rng).pairs);
    }
    println!(
        "routing {} packets, algorithm H (recycled bits)\n",
        pairs.len()
    );

    let reference = route_all_seeded(&router, &pairs, 7);
    let mut table = Table::new(vec![
        "threads",
        "seconds",
        "paths/sec",
        "speedup",
        "identical",
    ]);
    let mut base = 0f64;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let paths = route_all_parallel(&router, &pairs, 7, threads);
        let secs = start.elapsed().as_secs_f64();
        if threads == 1 {
            base = secs;
        }
        table.row(vec![
            threads.to_string(),
            f2(secs),
            format!("{:.0}", pairs.len() as f64 / secs),
            f2(base / secs),
            (paths == reference).to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: near-linear speedup up to the physical core count, with\n\
         'identical' true everywhere — determinism is independent of parallelism."
    );
}
