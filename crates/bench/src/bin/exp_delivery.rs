//! **E11 — Section 1 motivation**: delivery time tracks `C + D`.
//!
//! Any schedule needs `Ω(C + D)` steps; simple online schedulers get
//! within a small factor. So minimizing `C + D` — what algorithm H does —
//! is minimizing actual delivery time. This experiment routes the same
//! workloads with every router, simulates the schedules, and reports
//! `makespan / (C + D)`.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{route_all, AccessTree, Busch2D, DimOrder, ObliviousRouter, Valiant};
use oblivion_mesh::Mesh;
use oblivion_metrics::PathSetMetrics;
use oblivion_sim::{SchedulingPolicy, Simulation};
use oblivion_workloads as wl;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 32u32;
    println!("E11: simulated delivery time vs C + D on the {side}x{side} mesh\n");
    let mesh = Mesh::new_mesh(&[side, side]);
    let mut rng = StdRng::seed_from_u64(0xE11);

    let routers: Vec<Box<dyn ObliviousRouter>> = vec![
        Box::new(Busch2D::new(mesh.clone())),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
    ];
    let workloads = vec![
        wl::transpose(&mesh).without_self_loops(),
        wl::random_permutation(&mesh, &mut rng),
        wl::central_cut_neighbors(&mesh, 0),
    ];
    let policies = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::FurthestToGo,
        SchedulingPolicy::RandomRank,
    ];

    for w in &workloads {
        println!("== workload: {} ({} packets) ==", w.name, w.len());
        let mut table = Table::new(vec![
            "router",
            "C",
            "D",
            "C+D",
            "makespan(fifo)",
            "makespan(ftg)",
            "makespan(rank)",
            "best/(C+D)",
        ]);
        for r in &routers {
            let paths = route_all(r.as_ref(), &w.pairs, &mut rng);
            let m = PathSetMetrics::measure(&mesh, &paths);
            let mut spans = Vec::new();
            for p in policies {
                let res = Simulation::new(&mesh, paths.clone()).run(p, 0xE11);
                spans.push(res.makespan);
            }
            let best = *spans.iter().min().unwrap();
            table.row(vec![
                r.name(),
                m.congestion.to_string(),
                m.dilation.to_string(),
                m.c_plus_d().to_string(),
                spans[0].to_string(),
                spans[1].to_string(),
                spans[2].to_string(),
                f2(best as f64 / m.c_plus_d().max(1) as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "Expected shape: makespan stays within a small constant of C + D for every\n\
         scheduler, so the router with the smallest C + D (busch-2d on local traffic,\n\
         by a wide margin) also delivers fastest."
    );
}
