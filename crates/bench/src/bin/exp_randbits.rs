//! **E8 — Lemma 5.4 / Theorem 5.5**: random bits per packet.
//!
//! Measures the exact number of random bits algorithm H consumes per
//! packet as a function of the source–destination distance `D'` and the
//! dimension `d`, for both randomness modes. Lemma 5.4 predicts the
//! recycled mode costs `O(d·log(D'·d))`; the naive mode costs an extra
//! `log(D'd)` factor.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{BuschD, ObliviousRouter, RandomnessMode};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mean_bits(router: &BuschD, pairs: &[(Coord, Coord)], rng: &mut StdRng) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for (s, t) in pairs {
        for _ in 0..5 {
            total += router.select_path(s, t, rng).random_bits;
            count += 1;
        }
    }
    total as f64 / count as f64
}

fn main() {
    oblivion_bench::report::start();
    println!("E8: random bits per packet (Lemma 5.4: recycled = O(d log(D'd)))\n");
    let mut table = Table::new(vec![
        "d",
        "side",
        "D'",
        "bits fresh",
        "bits recycled",
        "d*log2(D'd)",
        "recycled ratio",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE8);
    for (d, k) in [(2usize, 8u32), (3, 5)] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&vec![side; d]);
        let fresh = BuschD::new(mesh.clone()).with_mode(RandomnessMode::Fresh);
        let recycled = BuschD::new(mesh.clone()).with_mode(RandomnessMode::Recycled);
        // Distance-controlled pairs: both endpoints offset ~dist/d per axis.
        let mut dist = 1u64;
        while dist <= u64::from(side) * d as u64 / 2 {
            let mut pairs = Vec::new();
            for _ in 0..300 {
                let per_axis = (dist / d as u64) as u32;
                let rem = (dist % d as u64) as u32;
                let s = Coord::new(
                    &(0..d)
                        .map(|i| {
                            let off = per_axis + u32::from((i as u32) < rem);
                            rng.gen_range(0..side - off.min(side - 1))
                        })
                        .collect::<Vec<_>>(),
                );
                let mut t = s;
                for i in 0..d {
                    let off = per_axis + u32::from((i as u32) < rem);
                    t[i] = s[i] + off;
                }
                if mesh.contains(&t) && s != t {
                    pairs.push((s, t));
                }
            }
            if !pairs.is_empty() {
                let bf = mean_bits(&fresh, &pairs, &mut rng);
                let br = mean_bits(&recycled, &pairs, &mut rng);
                let budget = d as f64 * ((dist * d as u64) as f64).log2().max(1.0);
                table.row(vec![
                    d.to_string(),
                    side.to_string(),
                    dist.to_string(),
                    f2(bf),
                    f2(br),
                    f2(budget),
                    f2(br / budget),
                ]);
            }
            dist *= 4;
        }
    }
    table.print();
    println!(
        "\nExpected shape: 'recycled ratio' (= measured / d*log2(D'd)) stays O(1) as D'\n\
         grows, while 'bits fresh' grows with an extra log(D'd) factor — Lemma 5.4 and\n\
         the Theorem 5.5 near-optimality of the bit budget."
    );
    oblivion_bench::report::finish_and_note(
        "exp_randbits",
        "E8: random bits per packet (Lemma 5.4 / Theorem 5.5)",
        &table,
        &[],
    );
}
