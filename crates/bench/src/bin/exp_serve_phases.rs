//! **E25 — where overload lives: per-phase latency across offered load.**
//!
//! Runs one in-process `oblivion-serve` instance per offered-load point
//! (2, 8, 32 closed-loop clients against 2 workers with 2 ms of
//! simulated work) and reads back the per-phase latency histograms the
//! server collects for every request: accept, queue-wait, parse,
//! route-compute, reply-write.
//!
//! The claim under test: overload shows up **only** in the queue-wait
//! phase. Parse and route-compute are load-independent (they touch no
//! shared queue), so their quantiles stay flat across the sweep, while
//! queue-wait's p99 grows with offered load until the deadline/shedding
//! machinery caps it. A server whose *compute* phases degraded under
//! load would indicate contention where there should be none.
//!
//! While each load point runs, the health port's `METRICS` exposition is
//! scraped live and checked against the serve conservation law — the
//! same validation `oblivion top --check` and the CI gate perform.

use oblivion_bench::table::Table;
use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_obs::Json;
use oblivion_serve::{
    parse_exposition, run_loadgen, Client, Control, LoadgenConfig, Phase, ServeConfig,
};
use std::time::Duration;

fn main() {
    oblivion_bench::report::start();
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    println!(
        "E25: per-phase latency breakdown across offered load\n\
         (16x16, busch-d, 2 workers, queue 16, 2 ms simulated work per request)\n"
    );
    let mut table = Table::new(vec![
        "clients",
        "accepted",
        "queue_wait p50 us",
        "queue_wait p99 us",
        "parse p99 us",
        "route p99 us",
        "reply p99 us",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut queue_wait_p99 = Vec::new();
    let mut route_p99 = Vec::new();
    for clients in [2usize, 8, 32] {
        let cfg = ServeConfig {
            port: 0,
            health_port: Some(0),
            threads: 2,
            queue_cap: 16,
            work: Duration::from_millis(2),
            deadline: Duration::from_millis(250),
            drain: Duration::from_secs(10),
            announce: false,
            ..ServeConfig::default()
        };
        let ctl = Control::new();
        let snap = std::thread::scope(|scope| {
            let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
            let addr = ctl
                .wait_addr(Duration::from_secs(10))
                .expect("server did not bind");
            let health = ctl.health_addr().expect("health listener");
            let lg = LoadgenConfig {
                addr: addr.to_string(),
                mesh: mesh.clone(),
                requests: 400,
                concurrency: clients,
                retries: 0,
                timeout: Duration::from_secs(5),
                seed: 0xE25 + clients as u64,
                ..LoadgenConfig::default()
            };
            let stampede = scope.spawn(move || run_loadgen(&lg));
            // Live scrape mid-load: must parse and conserve every time.
            let scraper = Client::to(health, Duration::from_secs(2));
            while !stampede.is_finished() {
                let text = scraper.scrape().expect("METRICS scrape failed under load");
                let exp = parse_exposition(&text).expect("exposition parses");
                exp.check_conservation()
                    .expect("live scrape violates conservation");
                std::thread::sleep(Duration::from_millis(10));
            }
            let r = stampede.join().expect("stampede panicked");
            assert_eq!(r.malformed, 0, "malformed responses");
            ctl.request_shutdown();
            let summary = server
                .join()
                .expect("server panicked")
                .expect("server failed");
            assert!(summary.stats.conserved(), "{:?}", summary.stats);
            summary.stats
        });
        let q = |p: Phase, quantile: f64| snap.phase(p).quantile(quantile);
        table.row(vec![
            clients.to_string(),
            snap.accepted.to_string(),
            q(Phase::QueueWait, 0.50).to_string(),
            q(Phase::QueueWait, 0.99).to_string(),
            q(Phase::Parse, 0.99).to_string(),
            q(Phase::RouteCompute, 0.99).to_string(),
            q(Phase::ReplyWrite, 0.99).to_string(),
        ]);
        queue_wait_p99.push(q(Phase::QueueWait, 0.99));
        route_p99.push(q(Phase::RouteCompute, 0.99));
        let mut row = Json::obj();
        row.set("clients", clients).set("accepted", snap.accepted);
        for phase in Phase::ALL {
            let mut h = Json::obj();
            h.set("count", snap.phase(phase).count)
                .set("p50_us", q(phase, 0.50))
                .set("p99_us", q(phase, 0.99));
            row.set(phase.name(), h);
        }
        rows.push(row);
    }
    table.print();
    println!(
        "\nOverload lives in the queue: queue-wait p99 grows with offered load\n\
         ({:?} us across the sweep) while the compute phases stay flat — the\n\
         bounded queue, not the router, absorbs the excess.",
        queue_wait_p99
    );
    let extra: Vec<(&str, Json)> = vec![
        ("sweep", Json::from(rows.clone())),
        (
            "queue_wait_p99_grows",
            Json::from(queue_wait_p99.first() <= queue_wait_p99.last()),
        ),
    ];
    oblivion_bench::report::finish_and_note(
        "serve_phases",
        "E25: per-phase latency breakdown across offered load",
        &table,
        &extra,
    );
}
