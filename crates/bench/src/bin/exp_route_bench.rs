//! **Hot-path microbenchmark: single-packet path selection.**
//!
//! Times `select_path` alone — no simulation, no sockets — for the two
//! router families the serving layer exposes (`Busch2D` on a 2-D mesh,
//! `BuschD` on a 3-D mesh), in the two RNG regimes that bracket real
//! deployments:
//!
//! * **fresh** — a new `StdRng` seeded per path, the stateless pattern
//!   `oblivion serve` uses (the seed travels in the request);
//! * **recycled** — one RNG reused across paths, the pattern the
//!   simulators use for injection streams.
//!
//! The gap between the two regimes is the per-request RNG setup cost,
//! which bounds how much of the serve route-compute phase is seeding
//! rather than routing. Every sample's wall-clock nanoseconds are kept
//! raw and sorted, so the reported p50/p99 are exact order statistics,
//! not bucket approximations. Timings are machine-dependent and land in
//! `results/BENCH_route.json`, never in deterministic results.

use oblivion_bench::table::Table;
use oblivion_core::{Busch2D, BuschD, ObliviousRouter};
use oblivion_mesh::{Mesh, NodeId};
use oblivion_obs::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Deterministic src/dst pair stream over a mesh (never a self-pair).
fn pair_of(mesh: &Mesh, i: u64) -> (oblivion_mesh::Coord, oblivion_mesh::Coord) {
    let n = mesh.node_count() as u64;
    let src = i % n;
    let mut dst = (i.wrapping_mul(2_654_435_761).wrapping_add(12_345)) % n;
    if dst == src {
        dst = (dst + 1) % n;
    }
    (
        mesh.coord(NodeId(src as usize)),
        mesh.coord(NodeId(dst as usize)),
    )
}

struct BenchResult {
    paths_per_sec: f64,
    ns_p50: u64,
    ns_p99: u64,
    paths: u64,
}

/// Times `paths` selections, returning exact quantiles over the raw
/// per-path samples. `fresh` reseeds the RNG for every path.
fn bench(router: &dyn ObliviousRouter, paths: u64, fresh: bool) -> BenchResult {
    let mesh = router.mesh();
    let mut recycled = StdRng::seed_from_u64(0xB_EC);
    // Warmup: fault in caches and let the allocator settle.
    for i in 0..(paths / 10).max(100) {
        let (src, dst) = pair_of(mesh, i);
        std::hint::black_box(router.select_path(&src, &dst, &mut recycled));
    }
    let mut samples = Vec::with_capacity(paths as usize);
    let started = Instant::now();
    for i in 0..paths {
        let (src, dst) = pair_of(mesh, i);
        let t0 = Instant::now();
        if fresh {
            let mut rng = StdRng::seed_from_u64(i);
            std::hint::black_box(router.select_path(&src, &dst, &mut rng));
        } else {
            std::hint::black_box(router.select_path(&src, &dst, &mut recycled));
        }
        samples.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    let total = started.elapsed();
    samples.sort_unstable();
    let q = |p: f64| samples[(((samples.len() - 1) as f64) * p).round() as usize];
    BenchResult {
        paths_per_sec: paths as f64 / total.as_secs_f64().max(1e-9),
        ns_p50: q(0.50),
        ns_p99: q(0.99),
        paths,
    }
}

fn main() {
    let paths: u64 = std::env::var("OBLIVION_BENCH_PATHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20_000);
    let mesh2 = Mesh::new_mesh(&[64, 64]);
    let mesh3 = Mesh::new_mesh(&[16, 16, 16]);
    let routers: Vec<(&str, Box<dyn ObliviousRouter>)> = vec![
        ("busch2d", Box::new(Busch2D::new(mesh2))),
        ("buschd", Box::new(BuschD::new(mesh3))),
    ];
    println!(
        "Route hot-path microbenchmark ({paths} paths per configuration)\n\
         fresh = new StdRng per path (the serve pattern); recycled = one RNG reused\n"
    );
    let mut table = Table::new(vec![
        "router",
        "rng",
        "paths/s",
        "ns/path p50",
        "ns/path p99",
    ]);
    let mut fields: Vec<(&str, Json)> = vec![("paths_per_config", Json::from(paths))];
    let mut rows: Vec<(String, Json)> = Vec::new();
    for (name, router) in &routers {
        for (regime, fresh) in [("fresh", true), ("recycled", false)] {
            let r = bench(router.as_ref(), paths, fresh);
            table.row(vec![
                (*name).to_string(),
                regime.to_string(),
                format!("{:.0}", r.paths_per_sec),
                r.ns_p50.to_string(),
                r.ns_p99.to_string(),
            ]);
            let mut obj = Json::obj();
            let mesh_spec = router
                .mesh()
                .dims()
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join("x");
            obj.set("router", *name)
                .set("rng", regime)
                .set("mesh", mesh_spec.as_str())
                .set("paths", r.paths)
                .set("paths_per_sec", r.paths_per_sec)
                .set("ns_per_path_p50", r.ns_p50)
                .set("ns_per_path_p99", r.ns_p99);
            rows.push((format!("{name}_{regime}"), obj));
        }
    }
    table.print();
    let row_objs: Vec<Json> = rows.iter().map(|(_, o)| o.clone()).collect();
    fields.push(("configs", Json::from(row_objs)));
    println!();
    oblivion_bench::report::write_bench_and_note("route", &fields);
}
