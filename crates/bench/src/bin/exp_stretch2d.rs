//! **E3 — Theorem 3.4**: the 2-D algorithm has stretch ≤ 64.
//!
//! Measures the maximum and mean stretch of `Busch2D` over exhaustive node
//! pairs (small meshes) and adversarial + random pairs (large meshes),
//! sweeping the mesh side. The paper's bound is a worst-case constant; the
//! measured maxima should sit well below 64 and be flat in `m`.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{Busch2D, ObliviousRouter, RandomnessMode};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pairs_for(side: u32, rng: &mut StdRng) -> Vec<(Coord, Coord)> {
    let mut pairs = Vec::new();
    if side <= 16 {
        for x1 in 0..side {
            for y1 in 0..side {
                for x2 in 0..side {
                    for y2 in 0..side {
                        if (x1, y1) != (x2, y2) {
                            pairs.push((Coord::new(&[x1, y1]), Coord::new(&[x2, y2])));
                        }
                    }
                }
            }
        }
    } else {
        // Adversarial: neighbors straddling every power-of-two cut.
        let mut level = side / 2;
        while level >= 1 {
            let mut x = level;
            while x < side {
                for y in (0..side).step_by((side / 16) as usize) {
                    pairs.push((Coord::new(&[x - 1, y]), Coord::new(&[x, y])));
                    pairs.push((Coord::new(&[y, x - 1]), Coord::new(&[y, x])));
                }
                x += 2 * level;
            }
            level /= 2;
        }
        // Random pairs.
        for _ in 0..4000 {
            let s = Coord::new(&[rng.gen_range(0..side), rng.gen_range(0..side)]);
            let t = Coord::new(&[rng.gen_range(0..side), rng.gen_range(0..side)]);
            if s != t {
                pairs.push((s, t));
            }
        }
    }
    pairs
}

fn main() {
    oblivion_bench::report::start();
    println!("E3: 2-D stretch of algorithm H (Theorem 3.4: stretch <= 64)\n");
    let mut table = Table::new(vec![
        "side",
        "mode",
        "pairs",
        "samples/pair",
        "max stretch",
        "mean stretch",
        "bound",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE3);
    for side in [8u32, 16, 32, 64, 128, 256] {
        let pairs = pairs_for(side, &mut rng);
        for mode in [RandomnessMode::Recycled, RandomnessMode::Fresh] {
            let mesh = Mesh::new_mesh(&[side, side]);
            let router = Busch2D::new(mesh.clone()).with_mode(mode);
            let samples = if side <= 16 { 3 } else { 5 };
            let mut max_stretch = 0f64;
            let mut sum = 0f64;
            let mut count = 0usize;
            for (s, t) in &pairs {
                for _ in 0..samples {
                    let p = router.select_path(s, t, &mut rng).path;
                    let st = p.stretch(&mesh);
                    max_stretch = max_stretch.max(st);
                    sum += st;
                    count += 1;
                }
            }
            table.row(vec![
                side.to_string(),
                format!("{mode:?}").to_lowercase(),
                pairs.len().to_string(),
                samples.to_string(),
                f2(max_stretch),
                f2(sum / count as f64),
                "64".into(),
            ]);
            assert!(max_stretch <= 64.0, "Theorem 3.4 violated!");
        }
    }
    table.print();
    println!("\nAll measured maxima respect the Theorem 3.4 bound of 64.");
    oblivion_bench::report::finish_and_note(
        "exp_stretch2d",
        "E3: 2-D stretch of algorithm H (Theorem 3.4)",
        &table,
        &[("stretch_bound", 64u64.into())],
    );
}
