//! **E20 — the oblivious-vs-offline gap** (Sections 1 and 6).
//!
//! The paper: "for the mesh, distributed and oblivious algorithms are
//! within a logarithmic factor from the optimal offline performance, hence
//! there is no significant benefit from using the offline algorithm."
//! Here we bracket `C*` from **both** sides — the boundary/flow lower
//! bound from below, an exponential-penalty offline router from above —
//! and place algorithm H inside the bracket:
//!
//! `lb ≤ C* ≤ C(offline) ≤ C(H) ≤ O(C* log n)`.
//!
//! `C(H)/C(offline)` is a sound *upper bound* on the true competitive
//! ratio, and far tighter than `C(H)/lb`.

use oblivion_bench::table::{f2, Table};
use oblivion_core::{route_all, route_min_congestion, Busch2D, DimOrder, OfflineConfig};
use oblivion_mesh::Mesh;
use oblivion_metrics::{congestion_lower_bound, PathSetMetrics};
use oblivion_workloads as wl;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E20: bracketing C* — oblivious H vs the offline exponential-penalty router\n");
    let mut table = Table::new(vec![
        "side",
        "workload",
        "lb",
        "C(offline)",
        "C(H)",
        "C(dim-order)",
        "H/offline",
        "H/lb",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE20);
    for side in [16u32, 32] {
        let mesh = Mesh::new_mesh(&[side, side]);
        let h = Busch2D::new(mesh.clone());
        let det = DimOrder::new(mesh.clone());
        let workloads = vec![
            wl::transpose(&mesh).without_self_loops(),
            wl::random_permutation(&mesh, &mut rng),
            wl::bit_complement(&mesh),
            wl::central_cut_neighbors(&mesh, 0),
        ];
        for w in workloads {
            let lb = congestion_lower_bound(&mesh, &w.pairs);
            let offline = route_min_congestion(&mesh, &w.pairs, OfflineConfig::default(), &mut rng);
            let off_c = PathSetMetrics::measure(&mesh, &offline).congestion;
            let h_paths = route_all(&h, &w.pairs, &mut rng);
            let h_c = PathSetMetrics::measure(&mesh, &h_paths).congestion;
            let det_paths = route_all(&det, &w.pairs, &mut rng);
            let det_c = PathSetMetrics::measure(&mesh, &det_paths).congestion;
            assert!(
                f64::from(off_c) >= lb.floor(),
                "offline broke the lower bound?!"
            );
            table.row(vec![
                side.to_string(),
                w.name.clone(),
                f2(lb),
                off_c.to_string(),
                h_c.to_string(),
                det_c.to_string(),
                f2(f64::from(h_c) / f64::from(off_c.max(1))),
                f2(f64::from(h_c) / lb.max(1e-9)),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: offline lands near the lower bound (tight C* bracket);\n\
         H sits a small factor above offline — the 'logarithmic factor' the paper\n\
         says you pay for obliviousness — while needing no traffic knowledge at all.\n\
         Note dim-order occasionally beats offline's *average* but not where it\n\
         matters: on its own adversarial instances (E9) it is unboundedly worse."
    );
}
