//! **E16 — offline random-delay scheduling** (the non-oblivious
//! alternative the paper's related work cites for optimizing `C + D`).
//!
//! Sweeps the initial-delay window on a congested instance and compares
//! the resulting makespan with the purely online schedulers. The
//! random-delay technique trades start-up latency for de-synchronization;
//! with paths already near-optimal in `C + D` (algorithm H), the online
//! schedulers are hard to beat — quantifying the paper's point that with
//! good oblivious paths "there is no significant benefit from using the
//! offline algorithm".

use oblivion_bench::table::{f2, Table};
use oblivion_core::{route_all, route_all_parallel, route_all_seeded, Busch2D};
use oblivion_mesh::Mesh;
use oblivion_metrics::PathSetMetrics;
use oblivion_obs::Json;
use oblivion_sim::{SchedulingPolicy, Simulation};
use oblivion_workloads::{random_permutation, transpose};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let side = 32u32;
    println!(
        "E16: random initial delays vs online scheduling ({side}x{side}, algorithm H paths)\n"
    );
    let mesh = Mesh::new_mesh(&[side, side]);
    let router = Busch2D::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(0xE16);

    for w in [
        transpose(&mesh).without_self_loops(),
        random_permutation(&mesh, &mut rng),
    ] {
        let paths = route_all(&router, &w.pairs, &mut rng);
        let m = PathSetMetrics::measure(&mesh, &paths);
        println!(
            "== workload {} : C = {}, D = {}, C+D = {} ==",
            w.name,
            m.congestion,
            m.dilation,
            m.c_plus_d()
        );
        let sim = Simulation::new(&mesh, paths.clone());
        let mut table = Table::new(vec![
            "schedule",
            "makespan",
            "makespan/(C+D)",
            "mean delivery",
            "max queue",
        ]);
        for (name, policy) in [
            ("online fifo", SchedulingPolicy::Fifo),
            ("online furthest-to-go", SchedulingPolicy::FurthestToGo),
            ("online random-rank", SchedulingPolicy::RandomRank),
        ] {
            let r = sim.run(policy, 0xE16);
            table.row(vec![
                name.into(),
                r.makespan.to_string(),
                f2(r.makespan as f64 / m.c_plus_d() as f64),
                f2(r.mean_delivery()),
                r.max_queue.to_string(),
            ]);
        }
        let mut delay = u64::from(m.congestion) / 4;
        for _ in 0..3 {
            let r = sim.run_with_random_delays(SchedulingPolicy::Fifo, 0xE16, delay);
            table.row(vec![
                format!("fifo + delays U[0,{delay}]"),
                r.makespan.to_string(),
                f2(r.makespan as f64 / m.c_plus_d() as f64),
                f2(r.mean_delivery()),
                r.max_queue.to_string(),
            ]);
            delay *= 2;
        }
        table.print();
        println!();
    }
    println!(
        "Expected shape: all schedules land within a small constant of C + D; random\n\
         delays flatten queues (smaller max queue) at the cost of added latency —\n\
         with near-optimal oblivious paths there is little left for offline scheduling\n\
         to win, which is the paper's closing argument for oblivious routing."
    );

    // Path-selection wall-clock: sequential vs parallel routing of the
    // same workload (identical outputs asserted before timing is kept).
    let threads = oblivion_bench::report::threads_from_env();
    let w = random_permutation(&mesh, &mut rng);
    let t0 = Instant::now();
    let seq = route_all_seeded(&router, &w.pairs, 0xE16);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let par = route_all_parallel(&router, &w.pairs, 0xE16, threads);
    let par_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(seq, par, "parallel routing must match sequential");
    println!(
        "\nrouting wall-clock ({} pairs): sequential {seq_ms:.0} ms, \
         {threads}-thread {par_ms:.0} ms ({:.2}x)",
        w.pairs.len(),
        seq_ms / par_ms
    );
    oblivion_bench::report::write_bench_and_note(
        "delays",
        &[
            ("threads", Json::from(threads)),
            ("seq_ms", Json::from(seq_ms)),
            ("par_ms", Json::from(par_ms)),
            ("speedup", Json::from(seq_ms / par_ms)),
        ],
    );
}
