//! **E29 — supervised multi-process online simulation sweep.**
//!
//! Drives the `oblivion` CLI (the supervisor needs a real binary to
//! spawn worker processes from) through one faulted online workload at
//! `--threads 1` and `8` and at `--procs 1`, `2`, and `4`, asserting
//! byte-identical stdout across every engine — the determinism contract
//! extended across process boundaries. Then a worker is killed at a
//! fixed step boundary (the deterministic `OBLIVION_PROC_CRASH` stand-in
//! for `kill -9`) and the supervisor's reported recovery time is
//! recorded; the killed run's stdout must still match.
//!
//! Wall-clock columns are machine-dependent; on this workload the
//! process engine pays one pipe round-trip per worker per step, so it
//! trails the thread engine — the point of `--procs` is surviving the
//! loss of a shard process, not raw speed.

use oblivion_bench::table::{f2, Table};
use oblivion_obs::Json;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

fn oblivion_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("oblivion");
    assert!(
        p.exists(),
        "{} not found: build it first (cargo build --release --bin oblivion)",
        p.display()
    );
    p
}

const KILL_STEP: u64 = 150;

fn base_args(steps: u64) -> Vec<String> {
    [
        "online",
        "--mesh",
        "32x32",
        "--router",
        "busch2d",
        "--rate",
        "0.05",
        "--seed",
        "741",
        "--fault-links",
        "0.05",
        "--fault-mode",
        "transient",
        "--recovery",
        "resample",
    ]
    .iter()
    .map(ToString::to_string)
    .chain(["--steps".to_string(), steps.to_string()])
    .collect()
}

struct RunOut {
    stdout: Vec<u8>,
    stderr: String,
    wall_ms: f64,
}

fn run(bin: &PathBuf, extra: &[String], crash: Option<&str>) -> RunOut {
    let mut cmd = Command::new(bin);
    cmd.args(base_args(300)).args(extra);
    match crash {
        Some(directive) => cmd.env("OBLIVION_PROC_CRASH", directive),
        None => cmd.env_remove("OBLIVION_PROC_CRASH"),
    };
    let t = Instant::now();
    let out = cmd.output().expect("spawn oblivion");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        out.status.success(),
        "oblivion {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    RunOut {
        stdout: out.stdout,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        wall_ms,
    }
}

fn tmp_ckpt(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblivion_e29_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

fn main() {
    oblivion_bench::report::start();
    println!(
        "E29: multi-process online sweep (32x32, busch-2d, rate 0.05, 300 steps,\n\
         fault-links 0.05 transient/resample)\n"
    );
    let bin = oblivion_bin();

    let seq = run(&bin, &["--threads".into(), "1".into()], None);
    println!("sequential reference: {:.0} ms", seq.wall_ms);

    let mut table = Table::new(vec![
        "engine",
        "wall ms",
        "speedup vs seq",
        "identical to seq",
    ]);
    let mut sweep: Vec<(String, f64)> = Vec::new();
    let thr = run(&bin, &["--threads".into(), "8".into()], None);
    assert_eq!(thr.stdout, seq.stdout, "--threads 8 diverged");
    table.row(vec![
        "threads 8".into(),
        format!("{:.0}", thr.wall_ms),
        f2(seq.wall_ms / thr.wall_ms),
        "yes".into(),
    ]);
    sweep.push(("threads 8".into(), thr.wall_ms));
    for procs in [1usize, 2, 4] {
        let ckpt = tmp_ckpt(&format!("p{procs}"));
        let r = run(
            &bin,
            &[
                "--procs".into(),
                procs.to_string(),
                "--checkpoint-dir".into(),
                ckpt.to_str().expect("utf-8 temp path").into(),
            ],
            None,
        );
        assert_eq!(r.stdout, seq.stdout, "--procs {procs} diverged");
        table.row(vec![
            format!("procs {procs}"),
            format!("{:.0}", r.wall_ms),
            f2(seq.wall_ms / r.wall_ms),
            "yes".into(),
        ]);
        sweep.push((format!("procs {procs}"), r.wall_ms));
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    // Kill worker 1 at a fixed step boundary; the supervisor restores it
    // from its shadow, replays the journal, and reports the cost.
    let ckpt = tmp_ckpt("kill");
    let killed = run(
        &bin,
        &[
            "--procs".into(),
            "2".into(),
            "--checkpoint-dir".into(),
            ckpt.to_str().expect("utf-8 temp path").into(),
        ],
        Some(&format!("1:{KILL_STEP}")),
    );
    let _ = std::fs::remove_dir_all(&ckpt);
    assert_eq!(
        killed.stdout, seq.stdout,
        "a killed-and-recovered worker perturbed the result"
    );
    let recovery_line = killed
        .stderr
        .lines()
        .find(|l| l.contains("recovered in"))
        .expect("supervisor should report the recovery")
        .to_string();
    let recovery_ms: f64 = recovery_line
        .split("recovered in ")
        .nth(1)
        .and_then(|s| s.split(" ms").next())
        .and_then(|s| s.parse().ok())
        .expect("recovery line should carry a millisecond cost");
    let replayed: u64 = recovery_line
        .split("replayed ")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("recovery line should carry a replay count");
    table.row(vec![
        "procs 2 + kill -9".into(),
        format!("{:.0}", killed.wall_ms),
        f2(seq.wall_ms / killed.wall_ms),
        "yes".into(),
    ]);
    table.print();
    println!(
        "\nWorker killed at step {KILL_STEP}: recovered in {recovery_ms:.0} ms \
         (replayed {replayed} steps). All engines byte-identical."
    );

    let sweep_rows: Vec<Json> = sweep
        .iter()
        .map(|(engine, ms)| {
            let mut row = Json::obj();
            row.set("engine", engine.as_str())
                .set("wall_ms", *ms)
                .set("speedup", seq.wall_ms / ms);
            row
        })
        .collect();
    oblivion_bench::report::finish_and_note(
        "online_procs",
        "E29: supervised multi-process online sweep",
        &table,
        &[
            ("seq_ms", Json::from(seq.wall_ms)),
            ("identical_across_engines", Json::from(true)),
            ("kill_step", Json::from(KILL_STEP)),
            ("recovery_ms", Json::from(recovery_ms)),
            ("replayed_steps", Json::from(replayed)),
            ("sweep", Json::from(sweep_rows)),
        ],
    );
}
