//! # oblivion-bench
//!
//! The experiment harness regenerating every figure and quantitative claim
//! of the paper (see DESIGN.md §6 for the experiment index E1–E12 and
//! EXPERIMENTS.md for recorded results).
//!
//! Each experiment is a binary (`cargo run --release -p oblivion-bench
//! --bin exp_…`) that prints a self-contained table; the
//! [`harness`] module provides the shared measurement pipeline
//! (workload → route → measure → compare against lower bounds), and
//! [`table`] a dependency-free fixed-width table printer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod table;
