//! Shared measurement pipeline for the experiments.

use oblivion_core::{route_all_metered, ObliviousRouter};
use oblivion_metrics::{congestion_lower_bound, PathSetMetrics, Summary};
use oblivion_workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Distribution of a measurement over independent seeds.
#[derive(Debug, Clone)]
pub struct MeasurementStats {
    /// Router name.
    pub router: String,
    /// Workload name.
    pub workload: String,
    /// Congestion distribution.
    pub congestion: Summary,
    /// Max-stretch distribution.
    pub max_stretch: Summary,
    /// `C*` lower-bound estimate (workload property, seed-independent).
    pub lower_bound: f64,
}

/// Repeats the measurement over `trials` seeds, returning distribution
/// summaries — the right way to report the paper's w.h.p. statements.
pub fn measure_stats(
    router: &dyn ObliviousRouter,
    workload: &Workload,
    seed: u64,
    trials: u64,
) -> MeasurementStats {
    assert!(trials >= 1);
    let mut cs = Vec::with_capacity(trials as usize);
    let mut ss = Vec::with_capacity(trials as usize);
    let mut lb = 0.0;
    for t in 0..trials {
        let m = measure(router, workload, seed.wrapping_add(t));
        cs.push(f64::from(m.metrics.congestion));
        ss.push(m.metrics.max_stretch);
        lb = m.lower_bound;
    }
    MeasurementStats {
        router: router.name(),
        workload: workload.name.clone(),
        congestion: Summary::of(&cs),
        max_stretch: Summary::of(&ss),
        lower_bound: lb,
    }
}

/// One measured (router × workload) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Router name.
    pub router: String,
    /// Workload name.
    pub workload: String,
    /// Packets routed.
    pub packets: usize,
    /// Path-set quality.
    pub metrics: PathSetMetrics,
    /// `C*` lower-bound estimate for the workload.
    pub lower_bound: f64,
    /// `C / lower_bound` (∞-safe: 0 if no bound).
    pub competitive: f64,
    /// Mean random bits per packet.
    pub mean_bits: f64,
    /// Maximum random bits over packets.
    pub max_bits: u64,
}

/// Routes `workload` with `router` (seeded) and measures everything.
pub fn measure(router: &dyn ObliviousRouter, workload: &Workload, seed: u64) -> Measurement {
    let mesh = router.mesh();
    let mut rng = StdRng::seed_from_u64(seed);
    let (paths, total_bits, max_bits) = route_all_metered(router, &workload.pairs, &mut rng);
    let metrics = PathSetMetrics::measure(mesh, &paths);
    let lower_bound = congestion_lower_bound(mesh, &workload.pairs);
    let competitive = if lower_bound > 0.0 {
        f64::from(metrics.congestion) / lower_bound
    } else {
        0.0
    };
    Measurement {
        router: router.name(),
        workload: workload.name.clone(),
        packets: workload.len(),
        metrics,
        lower_bound,
        competitive,
        mean_bits: if workload.is_empty() {
            0.0
        } else {
            total_bits as f64 / workload.len() as f64
        },
        max_bits,
    }
}

/// Repeats [`measure`] with `trials` different seeds and keeps the
/// worst-case congestion/stretch cell (the theorems are worst-case
/// statements).
pub fn measure_worst(
    router: &dyn ObliviousRouter,
    workload: &Workload,
    seed: u64,
    trials: u64,
) -> Measurement {
    let mut worst: Option<Measurement> = None;
    for t in 0..trials.max(1) {
        let m = measure(router, workload, seed.wrapping_add(t));
        worst = Some(match worst {
            None => m,
            Some(w) => {
                if m.metrics.congestion > w.metrics.congestion {
                    m
                } else {
                    let mut w = w;
                    w.metrics.max_stretch = w.metrics.max_stretch.max(m.metrics.max_stretch);
                    w
                }
            }
        });
    }
    worst.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_core::DimOrder;
    use oblivion_mesh::Mesh;
    use oblivion_workloads::transpose;

    #[test]
    fn measure_transpose_dim_order() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let router = DimOrder::new(mesh.clone());
        let w = transpose(&mesh);
        let m = measure(&router, &w, 1);
        assert_eq!(m.packets, 64);
        assert_eq!(m.metrics.max_stretch, 1.0); // shortest paths
        assert!(m.metrics.congestion >= 7); // XY transpose hot row
        assert!(m.lower_bound >= 1.0);
        assert_eq!(m.mean_bits, 0.0);
    }

    #[test]
    fn measure_stats_distribution() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let router = oblivion_core::Busch2D::new(mesh.clone());
        let w = transpose(&mesh).without_self_loops();
        let st = measure_stats(&router, &w, 1, 10);
        assert_eq!(st.congestion.count, 10);
        assert!(st.congestion.min <= st.congestion.median);
        assert!(st.congestion.median <= st.congestion.max);
        assert!(st.max_stretch.max <= 64.0);
        assert!(st.lower_bound >= 1.0);
    }

    #[test]
    fn measure_worst_nondecreasing() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let router = oblivion_core::Busch2D::new(mesh.clone());
        let w = transpose(&mesh);
        let one = measure(&router, &w, 3);
        let worst = measure_worst(&router, &w, 3, 5);
        assert!(worst.metrics.congestion >= one.metrics.congestion.min(worst.metrics.congestion));
    }
}
