//! Differential and property tests for deterministic fault injection.
//!
//! The contract under test:
//!
//! * the sharded engine produces the exact same outcome (including every
//!   fault tally) as the sequential reference, for every thread count,
//!   fault mode, and recovery policy;
//! * attaching a trivial plan changes nothing but the presence of the
//!   (all-zero) fault statistics;
//! * no delivered packet ever traverses a permanently-down link; and
//! * packets are conserved: every injected packet is delivered, dead, or
//!   still in flight at the horizon.

use oblivion_faults::{FaultConfig, FaultMode, FaultPlan, RecoveryPolicy};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_sim::{Faults, OnlineResult, OnlineSim, SchedulingPolicy, UniformTraffic};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const THREADS: [usize; 4] = [1, 2, 3, 8];

/// A randomized dimension-order path source: each draw picks a fresh
/// random axis order, so resampling genuinely redraws the path — the
/// property the `resample` recovery policy relies on.
fn random_dim_order(mesh: &Mesh) -> impl Fn(&Coord, &Coord, &mut StdRng) -> Path + Sync + '_ {
    move |s: &Coord, t: &Coord, rng: &mut StdRng| {
        let mut axes: Vec<usize> = (0..mesh.dim()).collect();
        for i in (1..axes.len()).rev() {
            axes.swap(i, rng.gen_range(0..=i));
        }
        let mut nodes = vec![*s];
        let mut cur = *s;
        for &axis in &axes {
            while let Some(next) = mesh.step_towards(&cur, t[axis], axis) {
                nodes.push(next);
                cur = next;
            }
        }
        Path::new_unchecked(nodes)
    }
}

fn run_pair(
    mesh: &Mesh,
    cfg: &FaultConfig,
    recovery: RecoveryPolicy,
    steps: u64,
    seed: u64,
    fault_seed: u64,
) -> (OnlineResult, Vec<OnlineResult>) {
    let plan = FaultPlan::new(mesh, cfg, fault_seed, 2 * steps);
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(mesh);
    let sim = OnlineSim::new(mesh, SchedulingPolicy::Fifo, 0.15).with_faults(Faults {
        plan: &plan,
        recovery,
        retry_budget: 8,
    });
    let reference = sim.run(&pattern, &paths, steps, seed);
    let sharded = THREADS
        .iter()
        .map(|&threads| sim.run_sharded(&pattern, &paths, steps, seed, threads))
        .collect();
    (reference, sharded)
}

#[test]
fn fault_runs_match_sequential_for_every_mode_and_policy() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    for mode in [FaultMode::Permanent, FaultMode::Transient] {
        for recovery in [
            RecoveryPolicy::Wait,
            RecoveryPolicy::Resample,
            RecoveryPolicy::DropAfterBudget,
        ] {
            let cfg = FaultConfig {
                link_fail_prob: 0.08,
                mode,
                drop_prob: 0.01,
                ..FaultConfig::default()
            };
            let (reference, sharded) = run_pair(&mesh, &cfg, recovery, 120, 0xFA_07, 0xBAD);
            let fs = reference.faults.expect("fault stats present");
            assert!(
                fs.blocked > 0,
                "{mode:?}/{recovery:?}: plan never blocked anything — test is vacuous"
            );
            for (r, &threads) in sharded.iter().zip(&THREADS) {
                assert!(
                    r.same_outcome(&reference),
                    "{mode:?}/{recovery:?} threads={threads}:\n sharded {r:?}\n  vs seq {reference:?}"
                );
            }
        }
    }
}

#[test]
fn node_faults_match_sequential_across_threads() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let cfg = FaultConfig {
        node_fail_prob: 0.05,
        link_fail_prob: 0.03,
        ..FaultConfig::default()
    };
    let (reference, sharded) = run_pair(&mesh, &cfg, RecoveryPolicy::Resample, 120, 3, 4);
    let fs = reference.faults.expect("fault stats present");
    assert!(fs.failed_nodes > 0, "no node failed — test is vacuous");
    assert!(
        fs.src_down_skips > 0 || fs.dead_on_injection > 0,
        "dead nodes never touched injection"
    );
    for (r, &threads) in sharded.iter().zip(&THREADS) {
        assert!(r.same_outcome(&reference), "threads={threads}");
    }
}

#[test]
fn trivial_plan_is_bit_identical_to_no_plan() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let plan = FaultPlan::trivial(&mesh);
    assert!(plan.is_trivial());
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(&mesh);
    let bare = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.2);
    let faulted = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.2).with_faults(Faults {
        plan: &plan,
        recovery: RecoveryPolicy::Resample,
        retry_budget: 8,
    });
    let a = bare.run(&pattern, &paths, 150, 9);
    let b = faulted.run(&pattern, &paths, 150, 9);
    assert!(a.faults.is_none());
    let fs = b.faults.expect("stats attached even for a trivial plan");
    assert_eq!(fs, Default::default(), "trivial plan must tally nothing");
    // Everything the simulation computed is unchanged.
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.mean_latency.to_bits(), b.mean_latency.to_bits());
    assert_eq!(a.p95_latency.to_bits(), b.p95_latency.to_bits());
    assert_eq!(a.link_loads, b.link_loads);
    // And the sharded engine agrees with itself under the trivial plan.
    let c = faulted.run_sharded(&pattern, &paths, 150, 9, 8);
    assert!(c.same_outcome(&b));
}

#[test]
fn dead_letters_appear_under_permanent_faults_with_finite_budget() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let cfg = FaultConfig {
        link_fail_prob: 0.15,
        mode: FaultMode::Permanent,
        ..FaultConfig::default()
    };
    let (reference, _) = run_pair(&mesh, &cfg, RecoveryPolicy::DropAfterBudget, 150, 1, 2);
    let fs = reference.faults.unwrap();
    assert!(
        fs.dead_letters > 0,
        "15% permanent link faults with a finite budget must dead-letter"
    );
    assert!(reference.delivered_fraction() < 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No delivered packet traverses a down link: every link the plan
    /// holds down for the whole run records zero traversals — in both
    /// engines — and packets are conserved.
    #[test]
    fn down_links_carry_no_traffic(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        link_fail_pct in 2u32..25,
        node_fail_pct in 0u32..8,
        recovery_ix in 0usize..3,
    ) {
        let mesh = Mesh::new_mesh(&[6, 6]);
        let cfg = FaultConfig {
            link_fail_prob: f64::from(link_fail_pct) / 100.0,
            node_fail_prob: f64::from(node_fail_pct) / 100.0,
            mode: FaultMode::Permanent,
            ..FaultConfig::default()
        };
        let recovery = [
            RecoveryPolicy::Wait,
            RecoveryPolicy::Resample,
            RecoveryPolicy::DropAfterBudget,
        ][recovery_ix];
        let plan = FaultPlan::new(&mesh, &cfg, fault_seed, 160);
        let pattern = UniformTraffic::new(mesh.clone());
        let paths = random_dim_order(&mesh);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.1).with_faults(Faults {
            plan: &plan,
            recovery,
            retry_budget: 6,
        });
        let seq = sim.run(&pattern, &paths, 80, seed);
        let par = sim.run_sharded(&pattern, &paths, 80, seed, 4);
        prop_assert!(par.same_outcome(&seq), "sharded diverged from sequential");
        for e in 0..mesh.edge_count() {
            if plan.link_always_down(oblivion_mesh::EdgeId(e)) {
                prop_assert_eq!(
                    seq.link_loads[e], 0,
                    "edge {} is down for the whole run but carried traffic", e
                );
            }
        }
        // Conservation: every injected packet is accounted for.
        let fs = seq.faults.unwrap();
        prop_assert_eq!(
            seq.injected as u64,
            seq.delivered as u64 + seq.in_flight as u64 + fs.dead_letters,
            "injected != delivered + in_flight + dead_letters"
        );
    }
}
