//! Differential tests: the sharded parallel engine must produce the
//! exact same simulation outcome as the sequential reference — for every
//! thread count, policy, traffic pattern, and mesh shape — and its
//! deterministic shard statistics must not depend on the thread count.

use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_sim::{
    FixedTraffic, OnlineResult, OnlineSim, SchedulingPolicy, TrafficPattern, UniformTraffic,
};
use rand::rngs::StdRng;

const THREADS: [usize; 4] = [1, 2, 3, 8];

fn shortest_paths(mesh: &Mesh) -> impl Fn(&Coord, &Coord, &mut StdRng) -> Path + Sync + '_ {
    move |s: &Coord, t: &Coord, _rng: &mut StdRng| {
        let mut nodes = vec![*s];
        let mut cur = *s;
        for axis in 0..mesh.dim() {
            while let Some(next) = mesh.step_towards(&cur, t[axis], axis) {
                nodes.push(next);
                cur = next;
            }
        }
        Path::new_unchecked(nodes)
    }
}

/// Asserts the sharded run matches the sequential reference bit-for-bit
/// at every thread count, and that the shard summary is identical across
/// thread counts.
fn assert_equivalent(
    mesh: &Mesh,
    policy: SchedulingPolicy,
    rate: f64,
    pattern: &dyn TrafficPattern,
    steps: u64,
    seed: u64,
) {
    let sim = OnlineSim::new(mesh, policy, rate);
    let paths = shortest_paths(mesh);
    let reference: OnlineResult = sim.run(pattern, &paths, steps, seed);
    let mut summaries = Vec::new();
    for threads in THREADS {
        let sharded = sim.run_sharded(pattern, &paths, steps, seed, threads);
        assert!(
            sharded.same_outcome(&reference),
            "threads={threads} policy={policy:?} dims={:?}:\n sharded {sharded:?}\n  vs seq {reference:?}",
            mesh.dims(),
        );
        summaries.push(sharded.sharding.expect("sharded run reports a summary"));
    }
    for s in &summaries[1..] {
        assert_eq!(
            *s, summaries[0],
            "shard summary must not depend on thread count"
        );
    }
}

#[test]
fn matches_sequential_on_2d_mesh_all_policies() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    for policy in [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::FurthestToGo,
        SchedulingPolicy::ClosestToGo,
        SchedulingPolicy::RandomRank,
    ] {
        assert_equivalent(&mesh, policy, 0.15, &pattern, 150, 0xA11CE);
    }
}

#[test]
fn matches_sequential_on_3d_mesh() {
    let mesh = Mesh::new_mesh(&[4, 4, 4]);
    let pattern = UniformTraffic::new(mesh.clone());
    assert_equivalent(&mesh, SchedulingPolicy::Fifo, 0.1, &pattern, 120, 7);
    assert_equivalent(&mesh, SchedulingPolicy::RandomRank, 0.1, &pattern, 120, 8);
}

#[test]
fn matches_sequential_on_1d_line() {
    // side(0) = 4 < MAX_SHARDS: exercises the few-shards path where most
    // steps hand packets across shard boundaries.
    let mesh = Mesh::new_mesh(&[4]);
    let pattern = UniformTraffic::new(mesh.clone());
    assert_equivalent(&mesh, SchedulingPolicy::Fifo, 0.3, &pattern, 100, 11);
}

#[test]
fn matches_sequential_on_torus() {
    let mesh = Mesh::new_torus(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    assert_equivalent(
        &mesh,
        SchedulingPolicy::FurthestToGo,
        0.1,
        &pattern,
        120,
        12,
    );
}

#[test]
fn matches_sequential_under_transpose_traffic() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let pattern = FixedTraffic {
        pattern_name: "transpose".into(),
        map: |c| Coord::new(&[c[1], c[0]]),
    };
    assert_equivalent(&mesh, SchedulingPolicy::Fifo, 0.08, &pattern, 200, 13);
}

#[test]
fn matches_sequential_under_saturation() {
    // Heavy congestion: long queues, many handoffs, full drain phase.
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    assert_equivalent(&mesh, SchedulingPolicy::Fifo, 0.8, &pattern, 80, 14);
}

#[test]
fn link_load_totals_conserve_traffic() {
    // Fully drained run: every delivered packet of length L contributes
    // exactly L traversals, so total load equals total delivered hops in
    // both engines.
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.03);
    let paths = shortest_paths(&mesh);
    let seq = sim.run(&pattern, &paths, 200, 21);
    let par = sim.run_sharded(&pattern, &paths, 200, 21, 4);
    assert_eq!(seq.in_flight, 0, "low-rate run should drain");
    assert_eq!(seq.link_loads, par.link_loads);
    assert!(seq.link_loads.iter().sum::<u64>() > 0);
}

#[test]
fn sharded_runs_are_reproducible() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::RandomRank, 0.2);
    let paths = shortest_paths(&mesh);
    let a = sim.run_sharded(&pattern, &paths, 150, 31, 8);
    let b = sim.run_sharded(&pattern, &paths, 150, 31, 8);
    assert_eq!(a, b, "same seed and threads must reproduce exactly");
    let c = sim.run_sharded(&pattern, &paths, 150, 32, 8);
    assert_ne!(a.link_loads, c.link_loads, "different seed must differ");
}
