//! Differential tests for checkpoint/resume: a run that is killed at a
//! step boundary and resumed from its newest snapshot must finish with
//! the *exact* outcome of an uninterrupted run — for every engine,
//! thread count, and fault plan — and a corrupted newest snapshot must
//! fall back to the previous generation with the same guarantee.

use oblivion_ckpt::Store;
use oblivion_faults::{FaultConfig, FaultMode, FaultPlan, RecoveryPolicy};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_sim::{
    CheckpointCfg, EngineState, Faults, OnlineResult, OnlineSim, SchedulingPolicy, StopReason,
    UniformTraffic,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const THREADS: [usize; 3] = [1, 2, 8];
const STEPS: u64 = 160;
const EVERY: u64 = 30;
const KILL_AT: u64 = 100;

fn tmp_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oblivion_ckpt_test_{tag}_{}_{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A randomized dimension-order path source (resampling redraws).
fn random_dim_order(mesh: &Mesh) -> impl Fn(&Coord, &Coord, &mut StdRng) -> Path + Sync + '_ {
    move |s: &Coord, t: &Coord, rng: &mut StdRng| {
        let mut axes: Vec<usize> = (0..mesh.dim()).collect();
        for i in (1..axes.len()).rev() {
            axes.swap(i, rng.gen_range(0..=i));
        }
        let mut nodes = vec![*s];
        let mut cur = *s;
        for &axis in &axes {
            while let Some(next) = mesh.step_towards(&cur, t[axis], axis) {
                nodes.push(next);
                cur = next;
            }
        }
        Path::new_unchecked(nodes)
    }
}

fn transient_cfg() -> FaultConfig {
    FaultConfig {
        link_fail_prob: 0.08,
        mode: FaultMode::Transient,
        mttr: 12,
        mtbf: 70,
        node_fail_prob: 0.02,
        drop_prob: 0.01,
    }
}

/// Runs the kill-at-boundary + resume protocol for one configuration and
/// asserts the final outcome matches the uninterrupted reference.
fn assert_resume_identical(mesh: &Mesh, plan: Option<&FaultPlan>, seed: u64, threads: usize) {
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(mesh);
    let mut sim = OnlineSim::new(mesh, SchedulingPolicy::Fifo, 0.15);
    if let Some(p) = plan {
        sim = sim.with_faults(Faults {
            plan: p,
            recovery: RecoveryPolicy::Resample,
            retry_budget: 8,
        });
    }
    let reference: OnlineResult = sim.run_sharded(&pattern, &paths, STEPS, seed, threads);

    let dir = tmp_dir("resume");
    let store = Store::open(&dir).unwrap();
    let config_hash = 0xC0FF_EE00 ^ seed;
    let killed = sim.run_sharded_ckpt(
        &pattern,
        &paths,
        STEPS,
        seed,
        threads,
        Some(&CheckpointCfg {
            store: &store,
            every: EVERY,
            stop_at: Some(KILL_AT),
            config_hash,
            resume_generation: 0,
            resume_step: None,
        }),
        None,
    );
    match killed {
        Err(StopReason::Interrupted(i)) => {
            assert_eq!(i.step, KILL_AT);
            assert_eq!(i.generation, None, "stop_at must simulate a kill, not save");
        }
        other => panic!("expected interruption, got {other:?}"),
    }

    let outcome = store.load_latest(config_hash);
    assert!(outcome.warnings.is_empty(), "{:?}", outcome.warnings);
    let snap = outcome.snapshot.expect("periodic snapshot exists");
    assert_eq!(snap.step, (KILL_AT / EVERY) * EVERY);
    let state = EngineState::decode(&snap.payload, mesh).unwrap();
    assert_eq!(state.t, snap.step);

    let resumed = sim
        .run_sharded_ckpt(
            &pattern,
            &paths,
            STEPS,
            seed,
            threads,
            Some(&CheckpointCfg {
                store: &store,
                every: EVERY,
                stop_at: None,
                config_hash,
                resume_generation: snap.generation,
                resume_step: Some(state.t),
            }),
            Some(&state),
        )
        .expect("resumed run completes");
    assert!(
        resumed.same_outcome(&reference),
        "seed={seed} threads={threads} faults={}:\n resumed {resumed:?}\n  vs ref {reference:?}",
        plan.is_some(),
    );
    assert_eq!(resumed.sharding, reference.sharding);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_and_resumed_matches_uninterrupted_for_every_thread_count() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    for seed in [3, 11] {
        for threads in THREADS {
            assert_resume_identical(&mesh, None, seed, threads);
        }
    }
}

#[test]
fn killed_and_resumed_matches_under_transient_faults() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let cfg = transient_cfg();
    for seed in [3, 11] {
        // The plan is a pure function of (mesh, cfg, seed, horizon); the
        // resumed process rematerializes it exactly as the killed one did.
        let plan = FaultPlan::new(&mesh, &cfg, seed ^ 0x5EED, 2 * STEPS);
        for threads in THREADS {
            assert_resume_identical(&mesh, Some(&plan), seed, threads);
        }
    }
}

#[test]
fn sequential_engine_resumes_identically_too() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(&mesh);
    let cfg = transient_cfg();
    let plan = FaultPlan::new(&mesh, &cfg, 77, 2 * STEPS);
    for plan in [None, Some(&plan)] {
        let mut sim = OnlineSim::new(&mesh, SchedulingPolicy::RandomRank, 0.12);
        if let Some(p) = plan {
            sim = sim.with_faults(Faults {
                plan: p,
                recovery: RecoveryPolicy::DropAfterBudget,
                retry_budget: 4,
            });
        }
        let reference = sim.run(&pattern, &paths, STEPS, 5);
        let dir = tmp_dir("seq");
        let store = Store::open(&dir).unwrap();
        let killed = sim.run_ckpt(
            &pattern,
            &paths,
            STEPS,
            5,
            Some(&CheckpointCfg {
                store: &store,
                every: EVERY,
                stop_at: Some(KILL_AT),
                config_hash: 9,
                resume_generation: 0,
                resume_step: None,
            }),
            None,
        );
        assert!(killed.is_err());
        let snap = store.load_latest(9).snapshot.unwrap();
        let state = EngineState::decode(&snap.payload, &mesh).unwrap();
        let resumed = sim
            .run_ckpt(
                &pattern,
                &paths,
                STEPS,
                5,
                Some(&CheckpointCfg {
                    store: &store,
                    every: EVERY,
                    stop_at: None,
                    config_hash: 9,
                    resume_generation: snap.generation,
                    resume_step: Some(state.t),
                }),
                Some(&state),
            )
            .unwrap();
        assert!(
            resumed.same_outcome(&reference),
            "faults={}:\n resumed {resumed:?}\n  vs ref {reference:?}",
            plan.is_some(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The snapshot payload is canonical: the sharded engine produces
/// byte-identical snapshots (same CRC) at every thread count, and the
/// sequential engine's snapshot of the same run matches field-for-field
/// except the sharded-only statistics it reports as zero.
#[test]
fn snapshot_bytes_are_engine_and_thread_invariant() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(&mesh);
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.2);
    let mut crcs = Vec::new();
    let mut run = |threads: Option<usize>| {
        let dir = tmp_dir("canon");
        let store = Store::open(&dir).unwrap();
        let cfg = CheckpointCfg {
            store: &store,
            every: 60,
            stop_at: Some(90),
            config_hash: 1,
            resume_generation: 0,
            resume_step: None,
        };
        let res = match threads {
            None => sim.run_ckpt(&pattern, &paths, STEPS, 13, Some(&cfg), None),
            Some(n) => sim.run_sharded_ckpt(&pattern, &paths, STEPS, 13, n, Some(&cfg), None),
        };
        assert!(res.is_err(), "stop_at must interrupt");
        let snap = store.load_latest(1).snapshot.unwrap();
        assert_eq!(snap.step, 60);
        crcs.push((threads, snap.checksum, snap.payload));
        let _ = std::fs::remove_dir_all(&dir);
    };
    run(None);
    for threads in THREADS {
        run(Some(threads));
    }
    // Sharded snapshots: bit-identical at every thread count.
    for (threads, crc, payload) in &crcs[2..] {
        assert_eq!(
            (crc, payload),
            (&crcs[1].1, &crcs[1].2),
            "snapshot for threads={threads:?} differs from threads=1"
        );
    }
    // Sequential snapshot: same state, modulo the sharded-only counters.
    let seq = EngineState::decode(&crcs[0].2, &mesh).unwrap();
    let shd = EngineState::decode(&crcs[1].2, &mesh).unwrap();
    assert_eq!(seq.handoffs_total, 0);
    assert_eq!(seq.max_imbalance, 0);
    assert_eq!(seq.t, shd.t);
    assert_eq!(seq.rng, shd.rng);
    assert_eq!(seq.injected, shd.injected);
    assert_eq!(seq.inj_idx, shd.inj_idx);
    assert_eq!(seq.arena_len, shd.arena_len);
    assert_eq!(seq.latencies, shd.latencies);
    assert_eq!(seq.link_loads, shd.link_loads);
    assert_eq!(seq.packets, shd.packets);
    assert_eq!(seq.fstats, shd.fstats);
}

/// Single-byte corruption of the newest snapshot falls back to the
/// previous generation — and the resumed run still matches the
/// uninterrupted reference exactly.
#[test]
fn corrupted_newest_snapshot_falls_back_and_still_matches() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(&mesh);
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.15);
    let reference = sim.run_sharded(&pattern, &paths, STEPS, 21, 2);

    let dir = tmp_dir("corrupt");
    let store = Store::open(&dir).unwrap();
    let cfg_hash = 4;
    // Kill at 100 with every=30: snapshots at 30, 60, 90 → slots hold
    // generation 2 (step 60) and generation 3 (step 90).
    let killed = sim.run_sharded_ckpt(
        &pattern,
        &paths,
        STEPS,
        21,
        2,
        Some(&CheckpointCfg {
            store: &store,
            every: EVERY,
            stop_at: Some(KILL_AT),
            config_hash: cfg_hash,
            resume_generation: 0,
            resume_step: None,
        }),
        None,
    );
    assert!(killed.is_err());
    let newest = store.load_latest(cfg_hash).snapshot.unwrap();
    assert_eq!(newest.generation, 3);

    // Flip one payload byte in the newest slot.
    let path = store.slot_path(newest.generation);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let outcome = store.load_latest(cfg_hash);
    assert_eq!(
        outcome.warnings.len(),
        1,
        "rejection must be surfaced: {:?}",
        outcome.warnings
    );
    let snap = outcome.snapshot.expect("previous generation survives");
    assert_eq!(snap.generation, 2, "fallback to the older slot");
    assert_eq!(snap.step, 60);

    let state = EngineState::decode(&snap.payload, &mesh).unwrap();
    let resumed = sim
        .run_sharded_ckpt(
            &pattern,
            &paths,
            STEPS,
            21,
            2,
            Some(&CheckpointCfg {
                store: &store,
                every: EVERY,
                stop_at: None,
                config_hash: cfg_hash,
                resume_generation: snap.generation,
                resume_step: Some(state.t),
            }),
            Some(&state),
        )
        .unwrap();
    assert!(resumed.same_outcome(&reference));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming with a *different* thread count than the killed run still
/// reproduces the uninterrupted outcome: the snapshot is engine-neutral.
#[test]
fn resume_across_thread_counts() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(&mesh);
    let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.15);
    let reference = sim.run_sharded(&pattern, &paths, STEPS, 31, 1);

    let dir = tmp_dir("xthreads");
    let store = Store::open(&dir).unwrap();
    let killed = sim.run_sharded_ckpt(
        &pattern,
        &paths,
        STEPS,
        31,
        8,
        Some(&CheckpointCfg {
            store: &store,
            every: EVERY,
            stop_at: Some(KILL_AT),
            config_hash: 2,
            resume_generation: 0,
            resume_step: None,
        }),
        None,
    );
    assert!(killed.is_err());
    let snap = store.load_latest(2).snapshot.unwrap();
    let state = EngineState::decode(&snap.payload, &mesh).unwrap();
    let resumed = sim
        .run_sharded_ckpt(
            &pattern,
            &paths,
            STEPS,
            31,
            2,
            Some(&CheckpointCfg {
                store: &store,
                every: EVERY,
                stop_at: None,
                config_hash: 2,
                resume_generation: snap.generation,
                resume_step: Some(state.t),
            }),
            Some(&state),
        )
        .unwrap();
    assert!(resumed.same_outcome(&reference));
    let _ = std::fs::remove_dir_all(&dir);
}
