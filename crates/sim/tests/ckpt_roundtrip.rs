//! Property tests for checkpoint serialization: snapshot → restore →
//! continue must equal running straight through, for randomly drawn
//! configurations of both engines; the payload codec must round-trip
//! bit-exactly; and the RNG / fault-plan state a snapshot relies on must
//! rematerialize identically.

use oblivion_ckpt::Store;
use oblivion_faults::{FaultConfig, FaultMode, FaultPlan, RecoveryPolicy};
use oblivion_mesh::{Coord, Mesh, Path};
use oblivion_sim::{
    CheckpointCfg, EngineState, Faults, OnlineSim, SchedulingPolicy, UniformTraffic,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oblivion_ckpt_prop_{tag}_{}_{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn random_dim_order(mesh: &Mesh) -> impl Fn(&Coord, &Coord, &mut StdRng) -> Path + Sync + '_ {
    move |s: &Coord, t: &Coord, rng: &mut StdRng| {
        let mut axes: Vec<usize> = (0..mesh.dim()).collect();
        for i in (1..axes.len()).rev() {
            axes.swap(i, rng.gen_range(0..=i));
        }
        let mut nodes = vec![*s];
        let mut cur = *s;
        for &axis in &axes {
            while let Some(next) = mesh.step_towards(&cur, t[axis], axis) {
                nodes.push(next);
                cur = next;
            }
        }
        Path::new_unchecked(nodes)
    }
}

/// Kills a run at `kill_at` (saving every `every` steps), resumes it from
/// the newest snapshot, and asserts the final outcome equals the
/// uninterrupted reference. Exercises the sequential engine when
/// `threads == 0`, the sharded one otherwise.
fn check_resume(
    mesh: &Mesh,
    fault_cfg: Option<&FaultConfig>,
    seed: u64,
    steps: u64,
    every: u64,
    kill_at: u64,
    threads: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let pattern = UniformTraffic::new(mesh.clone());
    let paths = random_dim_order(mesh);
    let plan = fault_cfg.map(|cfg| FaultPlan::new(mesh, cfg, seed ^ 0xFA17, 2 * steps));
    let mut sim = OnlineSim::new(mesh, SchedulingPolicy::Fifo, 0.15);
    if let Some(p) = &plan {
        sim = sim.with_faults(Faults {
            plan: p,
            recovery: RecoveryPolicy::Resample,
            retry_budget: 6,
        });
    }
    let reference = if threads == 0 {
        sim.run(&pattern, &paths, steps, seed)
    } else {
        sim.run_sharded(&pattern, &paths, steps, seed, threads)
    };
    let dir = tmp_dir("resume");
    let store = Store::open(&dir).unwrap();
    let hash = seed ^ 0xCC;
    let cfg = |resume_generation, resume_step, stop_at| CheckpointCfg {
        store: &store,
        every,
        stop_at,
        config_hash: hash,
        resume_generation,
        resume_step,
    };
    let killed = if threads == 0 {
        sim.run_ckpt(
            &pattern,
            &paths,
            steps,
            seed,
            Some(&cfg(0, None, Some(kill_at))),
            None,
        )
    } else {
        sim.run_sharded_ckpt(
            &pattern,
            &paths,
            steps,
            seed,
            threads,
            Some(&cfg(0, None, Some(kill_at))),
            None,
        )
    };
    prop_assert!(killed.is_err(), "stop_at must interrupt the run");
    let snap = store
        .load_latest(hash)
        .snapshot
        .expect("at least one periodic snapshot before the kill");
    let state = EngineState::decode(&snap.payload, mesh).unwrap();
    let ck = cfg(snap.generation, Some(state.t), None);
    let resumed = if threads == 0 {
        sim.run_ckpt(&pattern, &paths, steps, seed, Some(&ck), Some(&state))
    } else {
        sim.run_sharded_ckpt(
            &pattern,
            &paths,
            steps,
            seed,
            threads,
            Some(&ck),
            Some(&state),
        )
    }
    .expect("resumed run completes");
    prop_assert!(
        resumed.same_outcome(&reference),
        "threads={threads} seed={seed} every={every} kill_at={kill_at}:\n \
         resumed {resumed:?}\n  vs ref {reference:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// serialize → deserialize → step == step-without-snapshot, both
    /// engines, with and without a fault plan.
    #[test]
    fn resume_equals_straight_run(
        seed in 0u64..1_000,
        every in 10u64..40,
        kill_frac in 3u64..8,
        threads_idx in 0usize..4,
        with_faults in any::<bool>(),
    ) {
        let threads = [0usize, 1, 2, 8][threads_idx];
        let mesh = Mesh::new_mesh(&[6, 6]);
        let steps = 100u64;
        let kill_at = (steps * kill_frac / 8).max(every + 1);
        let cfg = FaultConfig {
            link_fail_prob: 0.1,
            mode: FaultMode::Transient,
            mttr: 9,
            mtbf: 50,
            node_fail_prob: 0.02,
            drop_prob: 0.01,
        };
        check_resume(
            &mesh,
            with_faults.then_some(&cfg),
            seed,
            steps,
            every,
            kill_at,
            threads,
        )?;
    }

    /// The payload codec is a bijection on valid states: decode(encode(s))
    /// re-encodes to the identical bytes.
    #[test]
    fn engine_state_codec_round_trips(
        seed in 0u64..1_000,
        stop in 20u64..120,
    ) {
        let mesh = Mesh::new_mesh(&[6, 6]);
        let pattern = UniformTraffic::new(mesh.clone());
        let paths = random_dim_order(&mesh);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::RandomRank, 0.2);
        let dir = tmp_dir("codec");
        let store = Store::open(&dir).unwrap();
        // Capture one snapshot right before the stop point.
        let cfg = CheckpointCfg {
            store: &store,
            every: stop.max(2) - 1,
            stop_at: Some(stop),
            config_hash: 7,
            resume_generation: 0,
            resume_step: None,
        };
        let _ = sim.run_sharded_ckpt(&pattern, &paths, 150, seed, 2, Some(&cfg), None);
        if let Some(snap) = store.load_latest(7).snapshot {
            let state = EngineState::decode(&snap.payload, &mesh).unwrap();
            prop_assert_eq!(state.encode(), snap.payload, "codec must round-trip bit-exactly");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The injection RNG a snapshot stores rematerializes mid-stream:
    /// export → import continues the exact sequence.
    #[test]
    fn rng_state_round_trips(seed in any::<u64>(), burn in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..burn {
            let _: u64 = rng.gen();
        }
        let mut replay = StdRng::from_state(rng.state());
        for _ in 0..64 {
            prop_assert_eq!(rng.gen::<u64>(), replay.gen::<u64>());
        }
    }

    /// The fault plan is a pure function of its inputs: a resumed process
    /// rebuilding it from the same config gets the identical schedule
    /// (digest), and the snapshot never needs to carry the plan itself.
    #[test]
    fn fault_plan_rematerializes_identically(
        seed in any::<u64>(),
        link_pm in 0u64..300,
        node_pm in 0u64..100,
        horizon in 50u64..400,
    ) {
        let mesh = Mesh::new_mesh(&[6, 6]);
        let cfg = FaultConfig {
            link_fail_prob: link_pm as f64 / 1000.0,
            mode: FaultMode::Transient,
            mttr: 10,
            mtbf: 60,
            node_fail_prob: node_pm as f64 / 1000.0,
            drop_prob: 0.01,
        };
        let a = FaultPlan::new(&mesh, &cfg, seed, horizon);
        let b = FaultPlan::new(&mesh, &cfg, seed, horizon);
        prop_assert_eq!(a.digest(), b.digest());
    }
}
