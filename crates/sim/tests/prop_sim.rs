//! Property tests for the synchronous simulator: conservation, capacity,
//! and the C/D lower bounds, on randomly routed random workloads.

use oblivion_core::{route_all, BuschD, Valiant};
use oblivion_mesh::{Coord, Mesh};
use oblivion_metrics::PathSetMetrics;
use oblivion_sim::{SchedulingPolicy, Simulation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> impl Strategy<Value = (usize, u32, Vec<(usize, usize)>, u64)> {
    (1usize..=3, 2u32..=4)
        .prop_filter("size cap", |(d, k)| d * (*k as usize) <= 9)
        .prop_flat_map(|(d, k)| {
            let n = 1usize << (k as usize * d);
            (
                Just(d),
                Just(k),
                prop::collection::vec((0..n, 0..n), 1..40),
                any::<u64>(),
            )
        })
}

fn policies() -> [SchedulingPolicy; 4] {
    [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::FurthestToGo,
        SchedulingPolicy::ClosestToGo,
        SchedulingPolicy::RandomRank,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every packet is delivered; makespan >= max(C, D); makespan <= C·D + D
    /// (each hop waits at most C-1 steps... loose safe bound: total moves).
    #[test]
    fn delivery_and_bounds((d, k, raw_pairs, seed) in scenario()) {
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        let pairs: Vec<(Coord, Coord)> = raw_pairs
            .iter()
            .map(|&(a, b)| {
                (mesh.coord(oblivion_mesh::NodeId(a)), mesh.coord(oblivion_mesh::NodeId(b)))
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let router = BuschD::new(mesh.clone());
        let paths = route_all(&router, &pairs, &mut rng);
        let m = PathSetMetrics::measure(&mesh, &paths);
        for policy in policies() {
            let res = Simulation::new(&mesh, paths.clone()).run(policy, seed);
            // Everyone arrives by the makespan.
            prop_assert_eq!(res.delivery.len(), paths.len());
            for (i, &t) in res.delivery.iter().enumerate() {
                prop_assert!(t <= res.makespan);
                // A packet needs at least its path length.
                prop_assert!(t >= paths[i].len() as u64, "{policy:?}");
            }
            // Ω(C + D)-side bounds: makespan >= D and >= C.
            prop_assert!(res.makespan >= m.dilation as u64);
            prop_assert!(res.makespan >= u64::from(m.congestion));
            // And the trivial upper bound: total moves.
            prop_assert!(res.makespan <= res.total_moves.max(1));
            prop_assert_eq!(res.total_moves, m.total_length);
        }
    }

    /// The simulator is deterministic given (paths, policy, seed), even
    /// for the random-rank policy.
    #[test]
    fn reproducible((d, k, raw_pairs, seed) in scenario()) {
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        let pairs: Vec<(Coord, Coord)> = raw_pairs
            .iter()
            .map(|&(a, b)| {
                (mesh.coord(oblivion_mesh::NodeId(a)), mesh.coord(oblivion_mesh::NodeId(b)))
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let router = Valiant::new(mesh.clone());
        let paths = route_all(&router, &pairs, &mut rng);
        let r1 = Simulation::new(&mesh, paths.clone()).run(SchedulingPolicy::RandomRank, seed);
        let r2 = Simulation::new(&mesh, paths).run(SchedulingPolicy::RandomRank, seed);
        prop_assert_eq!(r1.delivery, r2.delivery);
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.max_contention, r2.max_contention);
    }
}
