//! Checkpoint capture/restore for the online engines.
//!
//! The serialized unit is an [`EngineState`]: everything the sequential
//! and sharded engines need to continue a run as if it had never stopped
//! — the main injection RNG state, the injection cursor, every in-flight
//! packet (path, position, scheduling rank, fault-recovery clocks), the
//! accumulated latencies and link loads, fault tallies, and (when
//! observability is on) the deterministic counter/histogram state.
//!
//! **Canonical bytes.** Packets are sorted by id and latencies by value
//! at capture time, so the sharded engine's payload for a given
//! `(config, seed, step)` is byte-identical no matter how many threads
//! produced it — the snapshot CRC doubles as a thread-invariant
//! fingerprint. The sequential engine's snapshot of the same run differs
//! only in the sharded-engine bookkeeping (`handoffs_total`,
//! `max_imbalance`, and — when observability is on — the sharded
//! engine's two extra counters), which it reports as zero.
//!
//! **Identity preservation.** Packet ids are arena/flight indices, and
//! the contention tie-break key ends in the id — so restore rebuilds the
//! arena at its full pre-crash length ([`EngineState::arena_len`]),
//! placing inert dummies where delivered or dead-lettered packets sat.
//! Packets injected after resume then receive exactly the ids they would
//! have had in an uninterrupted run.

use crate::online::FaultStats;
use oblivion_ckpt::{ByteReader, ByteWriter, CkptError, Store};
use oblivion_mesh::{Mesh, NodeId, Path};
use oblivion_obs::{Histogram, HISTOGRAM_BUCKETS};

/// Checkpointing policy for one run, handed to
/// [`crate::OnlineSim::run_ckpt`] / [`crate::OnlineSim::run_sharded_ckpt`].
pub struct CheckpointCfg<'a> {
    /// Where snapshots are written (two-generation atomic store).
    pub store: &'a Store,
    /// Save every `every` steps; `0` saves only on graceful shutdown.
    pub every: u64,
    /// Test hook: stop *without saving* at this step, as if the process
    /// had been killed there (resume then comes from the last periodic
    /// snapshot). `None` in production.
    pub stop_at: Option<u64>,
    /// Hash of the run configuration; stored in every snapshot and
    /// required to match on load.
    pub config_hash: u64,
    /// Generation of the snapshot this run resumed from (`0` if fresh);
    /// new snapshots are numbered from `resume_generation + 1`.
    pub resume_generation: u64,
    /// Step of the snapshot this run resumed from, so the engine does not
    /// immediately re-save an identical snapshot at the resume boundary.
    pub resume_step: Option<u64>,
}

/// The run stopped before completion (graceful shutdown or the
/// [`CheckpointCfg::stop_at`] test hook). No final metrics exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// First step that was *not* executed.
    pub step: u64,
    /// Generation of the snapshot written at the interruption point, if
    /// one was (`stop_at` stops dead without saving — that is its job).
    pub generation: Option<u64>,
}

/// Why a checkpointed run returned early.
#[derive(Debug)]
pub enum StopReason {
    /// Stopped on request; resume from the checkpoint directory.
    Interrupted(Interrupted),
    /// A snapshot could not be written or restored.
    Error(CkptError),
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Interrupted(i) => match i.generation {
                Some(g) => write!(
                    f,
                    "interrupted at step {}; checkpoint generation {g} saved, rerun to resume",
                    i.step
                ),
                None => write!(f, "interrupted at step {} without saving", i.step),
            },
            StopReason::Error(e) => write!(f, "{e}"),
        }
    }
}

/// One in-flight packet, engine-neutral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketState {
    /// Arena/flight index — the packet's contention-tie-break identity.
    pub id: u64,
    /// Global injection index (identity for fault decisions).
    pub inj: u64,
    /// Step the packet was injected at.
    pub injected_at: u64,
    /// Step the packet reached its current node.
    pub arrived: u64,
    /// Random scheduling rank drawn at injection.
    pub rank: u64,
    /// Index of the node the packet currently occupies on its path.
    pub pos: u64,
    /// Fault-recovery budget units consumed so far.
    pub attempts: u32,
    /// Step before which fault recovery makes no further decision.
    pub backoff_until: u64,
    /// The path as mesh node ids (current edge is recomputed on restore).
    pub path: Vec<u64>,
}

impl PacketState {
    /// Rebuilds the packet's [`Path`] (validated during decode).
    pub fn to_path(&self, mesh: &Mesh) -> Path {
        Path::new_unchecked(
            self.path
                .iter()
                .map(|&n| mesh.coord(NodeId(n as usize)))
                .collect(),
        )
    }
}

/// Appends one packet to a writer — the unit shared by the snapshot
/// payload and the multi-process engine's handoff messages, so a packet
/// crossing a process boundary has exactly the bytes it would have in a
/// checkpoint.
pub(crate) fn encode_packet(w: &mut ByteWriter, p: &PacketState) {
    w.u64(p.id);
    w.u64(p.inj);
    w.u64(p.injected_at);
    w.u64(p.arrived);
    w.u64(p.rank);
    w.u64(p.pos);
    w.u32(p.attempts);
    w.u64(p.backoff_until);
    w.u64_slice(&p.path);
}

/// Reads one packet (structural decode only; cross-packet invariants
/// like id ordering and mesh validity are the caller's checks).
pub(crate) fn decode_packet(r: &mut ByteReader<'_>) -> Result<PacketState, CkptError> {
    Ok(PacketState {
        id: r.u64("packet.id")?,
        inj: r.u64("packet.inj")?,
        injected_at: r.u64("packet.injected_at")?,
        arrived: r.u64("packet.arrived")?,
        rank: r.u64("packet.rank")?,
        pos: r.u64("packet.pos")?,
        attempts: r.u32("packet.attempts")?,
        backoff_until: r.u64("packet.backoff_until")?,
        path: r.u64_vec("packet.path")?,
    })
}

/// Deterministic observability state carried through a checkpoint.
#[derive(Debug, Clone, Default)]
pub struct ObsState {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms by name.
    pub histograms: Vec<(String, Histogram)>,
}

/// Full simulation state at a step boundary — the snapshot payload.
#[derive(Debug, Clone)]
pub struct EngineState {
    /// Next step to execute.
    pub t: u64,
    /// Main injection RNG state (xoshiro256++ words).
    pub rng: [u64; 4],
    /// Packets injected so far.
    pub injected: u64,
    /// Next global injection index.
    pub inj_idx: u64,
    /// Total packets ever given an arena slot (live + delivered + dead):
    /// restore rebuilds the arena to this length so later packets get
    /// identical ids.
    pub arena_len: u64,
    /// Cross-shard handoffs so far (0 when captured by the sequential
    /// engine).
    pub handoffs_total: u64,
    /// Largest per-step shard imbalance so far (0 for sequential).
    pub max_imbalance: u64,
    /// Latencies of packets delivered so far (sorted; includes the zeros
    /// of instant self-deliveries).
    pub latencies: Vec<u64>,
    /// Per-edge traversal totals, indexed by `EdgeId`.
    pub link_loads: Vec<u64>,
    /// In-flight packets, sorted by id.
    pub packets: Vec<PacketState>,
    /// Fault tallies (`None` when the run has no fault plan).
    pub fstats: Option<FaultStats>,
    /// Deterministic observability state (`None` when obs was disabled).
    pub obs: Option<ObsState>,
}

impl EngineState {
    /// Serializes to the snapshot payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.t);
        for s in self.rng {
            w.u64(s);
        }
        w.u64(self.injected);
        w.u64(self.inj_idx);
        w.u64(self.arena_len);
        w.u64(self.handoffs_total);
        w.u64(self.max_imbalance);
        w.u64_slice(&self.latencies);
        w.u64_slice(&self.link_loads);
        w.usize(self.packets.len());
        for p in &self.packets {
            encode_packet(&mut w, p);
        }
        match &self.fstats {
            None => w.u8(0),
            Some(fs) => {
                w.u8(1);
                for v in [
                    fs.dead_letters,
                    fs.dead_on_injection,
                    fs.resamples,
                    fs.drops,
                    fs.blocked,
                    fs.src_down_skips,
                    fs.failed_links,
                    fs.failed_nodes,
                ] {
                    w.u64(v);
                }
            }
        }
        match &self.obs {
            None => w.u8(0),
            Some(obs) => {
                w.u8(1);
                w.usize(obs.counters.len());
                for (name, v) in &obs.counters {
                    w.str(name);
                    w.u64(*v);
                }
                w.usize(obs.histograms.len());
                for (name, h) in &obs.histograms {
                    w.str(name);
                    w.u64(h.count);
                    w.u64(h.sum);
                    w.u64(h.min);
                    w.u64(h.max);
                    for &b in &h.buckets {
                        w.u64(b);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes and validates a snapshot payload against `mesh`.
    ///
    /// The CRC layer already rejects accidental corruption; these checks
    /// reject *structurally impossible* states (paths that are not walks,
    /// out-of-range node ids, unsorted packets) so the engines can trust
    /// a decoded state without panicking.
    pub fn decode(bytes: &[u8], mesh: &Mesh) -> Result<Self, CkptError> {
        let mut r = ByteReader::new(bytes);
        let t = r.u64("t")?;
        let mut rng = [0u64; 4];
        for s in &mut rng {
            *s = r.u64("rng")?;
        }
        let injected = r.u64("injected")?;
        let inj_idx = r.u64("inj_idx")?;
        let arena_len = r.u64("arena_len")?;
        let handoffs_total = r.u64("handoffs_total")?;
        let max_imbalance = r.u64("max_imbalance")?;
        let latencies = r.u64_vec("latencies")?;
        let link_loads = r.u64_vec("link_loads")?;
        if link_loads.len() != mesh.edge_count() {
            return Err(CkptError::Malformed {
                field: "link_loads",
                detail: format!(
                    "{} edges in snapshot, mesh has {}",
                    link_loads.len(),
                    mesh.edge_count()
                ),
            });
        }
        let n_packets = r.len_prefix(8 * 8, "packets")?;
        let mut packets = Vec::with_capacity(n_packets);
        let mut prev_id: Option<u64> = None;
        for _ in 0..n_packets {
            let p = decode_packet(&mut r)?;
            if prev_id.is_some_and(|prev| p.id <= prev) || p.id >= arena_len {
                return Err(CkptError::Malformed {
                    field: "packet.id",
                    detail: format!("id {} out of order or beyond arena length", p.id),
                });
            }
            prev_id = Some(p.id);
            if p.path.len() < 2 || p.pos + 1 >= p.path.len() as u64 {
                return Err(CkptError::Malformed {
                    field: "packet.pos",
                    detail: format!("position {} on a {}-node path", p.pos, p.path.len()),
                });
            }
            if p.path.iter().any(|&n| n as usize >= mesh.node_count()) {
                return Err(CkptError::Malformed {
                    field: "packet.path",
                    detail: "node id beyond mesh".into(),
                });
            }
            if !p.to_path(mesh).is_valid(mesh) {
                return Err(CkptError::Malformed {
                    field: "packet.path",
                    detail: "not a valid walk in the mesh".into(),
                });
            }
            packets.push(p);
        }
        let fstats = match r.u8("fstats.flag")? {
            0 => None,
            1 => Some(FaultStats {
                dead_letters: r.u64("fstats")?,
                dead_on_injection: r.u64("fstats")?,
                resamples: r.u64("fstats")?,
                drops: r.u64("fstats")?,
                blocked: r.u64("fstats")?,
                src_down_skips: r.u64("fstats")?,
                failed_links: r.u64("fstats")?,
                failed_nodes: r.u64("fstats")?,
            }),
            other => {
                return Err(CkptError::Malformed {
                    field: "fstats.flag",
                    detail: format!("flag byte {other}"),
                })
            }
        };
        let obs = match r.u8("obs.flag")? {
            0 => None,
            1 => {
                let nc = r.len_prefix(16, "obs.counters")?;
                let mut counters = Vec::with_capacity(nc);
                for _ in 0..nc {
                    let name = r.str("obs.counter.name")?;
                    let v = r.u64("obs.counter.value")?;
                    counters.push((name, v));
                }
                let nh = r.len_prefix(8 * (4 + HISTOGRAM_BUCKETS), "obs.histograms")?;
                let mut histograms = Vec::with_capacity(nh);
                for _ in 0..nh {
                    let name = r.str("obs.histogram.name")?;
                    let count = r.u64("obs.histogram")?;
                    let sum = r.u64("obs.histogram")?;
                    let min = r.u64("obs.histogram")?;
                    let max = r.u64("obs.histogram")?;
                    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                    for b in &mut buckets {
                        *b = r.u64("obs.histogram.bucket")?;
                    }
                    histograms.push((
                        name,
                        Histogram {
                            count,
                            sum,
                            min,
                            max,
                            buckets,
                        },
                    ));
                }
                Some(ObsState {
                    counters,
                    histograms,
                })
            }
            other => {
                return Err(CkptError::Malformed {
                    field: "obs.flag",
                    detail: format!("flag byte {other}"),
                })
            }
        };
        r.finish("payload")?;
        Ok(Self {
            t,
            rng,
            injected,
            inj_idx,
            arena_len,
            handoffs_total,
            max_imbalance,
            latencies,
            link_loads,
            packets,
            fstats,
            obs,
        })
    }

    /// Reinstates the deterministic observability state (no-op when the
    /// snapshot carried none or obs is disabled in this process).
    pub fn restore_obs(&self) {
        if let (Some(obs), true) = (&self.obs, oblivion_obs::is_enabled()) {
            oblivion_obs::restore_deterministic(&obs.counters, &obs.histograms);
        }
    }
}

/// Captures the deterministic half of the obs registry, if enabled.
pub(crate) fn capture_obs() -> Option<ObsState> {
    if !oblivion_obs::is_enabled() {
        return None;
    }
    let snap = oblivion_obs::snapshot();
    Some(ObsState {
        counters: snap.counters,
        histograms: snap.histograms,
    })
}

/// What the checkpoint driver wants done at a step boundary, decided
/// *once* per boundary (the shutdown-signal read is latched into the
/// decision, so an engine that must gather state before saving — the
/// multi-process supervisor — sees the same answer the commit does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoundaryAction {
    /// Proceed with the step; no snapshot needed.
    Run,
    /// Simulated kill ([`CheckpointCfg::stop_at`]): stop without saving.
    Stop,
    /// Graceful shutdown: save a snapshot, then stop.
    SaveStop,
    /// Periodic cadence: save a snapshot, then proceed.
    Save,
}

impl BoundaryAction {
    /// Whether this action consumes a captured [`EngineState`].
    pub(crate) fn saves(self) -> bool {
        matches!(self, BoundaryAction::SaveStop | BoundaryAction::Save)
    }
}

/// Per-run checkpoint driver: decides, at each step boundary, whether to
/// stop, save, or continue. Owned by the engine's coordinator; `capture`
/// is only invoked when a snapshot is actually needed.
pub(crate) struct Driver<'a, 'b> {
    cfg: &'b CheckpointCfg<'a>,
    next_gen: u64,
}

impl<'a, 'b> Driver<'a, 'b> {
    pub(crate) fn new(cfg: &'b CheckpointCfg<'a>) -> Self {
        let next_gen = cfg.resume_generation + 1;
        Self { cfg, next_gen }
    }

    /// Decides the boundary action for step `t`.
    pub(crate) fn decide(&self, t: u64) -> BoundaryAction {
        if self.cfg.stop_at == Some(t) {
            // Simulated kill: stop dead, saving nothing.
            return BoundaryAction::Stop;
        }
        if oblivion_ckpt::signal::shutdown_requested() {
            return BoundaryAction::SaveStop;
        }
        if self.cfg.every > 0
            && t > 0
            && t.is_multiple_of(self.cfg.every)
            && self.cfg.resume_step != Some(t)
        {
            return BoundaryAction::Save;
        }
        BoundaryAction::Run
    }

    /// Commits a decided action; `state` must be `Some` iff
    /// [`BoundaryAction::saves`]. Returns `Some` when the engine must
    /// stop and propagate the reason.
    pub(crate) fn act(
        &mut self,
        t: u64,
        action: BoundaryAction,
        state: Option<EngineState>,
    ) -> Option<StopReason> {
        match action {
            BoundaryAction::Run => None,
            BoundaryAction::Stop => Some(StopReason::Interrupted(Interrupted {
                step: t,
                generation: None,
            })),
            BoundaryAction::SaveStop => {
                Some(match self.save(t, state.expect("SaveStop captures")) {
                    Ok(generation) => StopReason::Interrupted(Interrupted {
                        step: t,
                        generation: Some(generation),
                    }),
                    Err(e) => StopReason::Error(e),
                })
            }
            BoundaryAction::Save => self
                .save(t, state.expect("Save captures"))
                .err()
                .map(StopReason::Error),
        }
    }

    fn save(&mut self, t: u64, state: EngineState) -> Result<u64, CkptError> {
        let payload = state.encode();
        let generation = self.next_gen;
        self.cfg
            .store
            .save(generation, t, self.cfg.config_hash, &payload)?;
        self.next_gen += 1;
        Ok(generation)
    }
}
