//! Continuous-arrival (online) simulation.
//!
//! The paper's opening motivation: "Oblivious algorithms are by their
//! nature distributed and capable of solving **online** routing problems,
//! where packets continuously arrive in the network." This module makes
//! that setting measurable: every node injects packets as a Bernoulli
//! process of rate `λ` (packets per node per step), destinations drawn
//! from a traffic pattern; each packet's path is fixed at injection by an
//! externally supplied path source (the oblivious router); links carry one
//! packet per step. The classic evaluation is mean latency vs offered
//! load: a good router's latency stays flat until `λ` approaches the
//! pattern's capacity limit, then diverges.

use crate::SchedulingPolicy;
use oblivion_mesh::{Coord, Mesh, Path};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Where an injected packet wants to go.
pub trait TrafficPattern {
    /// Draws a destination for a packet injected at `src` (may equal
    /// `src`; such packets are counted as delivered instantly).
    fn destination(&self, src: &Coord, rng: &mut StdRng) -> Coord;
    /// Pattern name for reports.
    fn name(&self) -> String;
}

/// Uniformly random destinations.
pub struct UniformTraffic {
    mesh: Mesh,
}

impl UniformTraffic {
    /// Creates the pattern for a mesh.
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh }
    }
}

impl TrafficPattern for UniformTraffic {
    fn destination(&self, _src: &Coord, rng: &mut StdRng) -> Coord {
        let id = oblivion_mesh::NodeId(rng.gen_range(0..self.mesh.node_count()));
        self.mesh.coord(id)
    }
    fn name(&self) -> String {
        "uniform".into()
    }
}

/// Deterministic per-source destination function (transpose, complement…).
pub struct FixedTraffic {
    /// Name for reports.
    pub pattern_name: String,
    /// The destination map.
    pub map: fn(&Coord) -> Coord,
}

impl TrafficPattern for FixedTraffic {
    fn destination(&self, src: &Coord, _rng: &mut StdRng) -> Coord {
        (self.map)(src)
    }
    fn name(&self) -> String {
        self.pattern_name.clone()
    }
}

/// A source of paths: called once per injected packet. Implemented by
/// wrapping an oblivious router; kept as a closure trait so the simulator
/// does not depend on `oblivion-core`.
pub trait PathSource {
    /// Produces the full path a packet injected at `s` for `t` will take.
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> Path;
}

impl<F: Fn(&Coord, &Coord, &mut StdRng) -> Path> PathSource for F {
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self(s, t, rng)
    }
}

/// Result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// Steps simulated.
    pub steps: u64,
    /// Packets injected (excluding self-addressed no-ops).
    pub injected: usize,
    /// Packets delivered within the horizon.
    pub delivered: usize,
    /// Mean latency (injection → delivery) of delivered packets.
    pub mean_latency: f64,
    /// 95th-percentile latency of delivered packets.
    pub p95_latency: f64,
    /// Packets still in flight at the horizon.
    pub in_flight: usize,
    /// Delivered packets per node per step — the accepted throughput.
    pub throughput: f64,
}

/// Configuration of an online run.
pub struct OnlineSim<'a> {
    mesh: &'a Mesh,
    policy: SchedulingPolicy,
    /// Injection probability per node per step.
    rate: f64,
}

struct Flight {
    path: Path,
    pos: usize,
    injected_at: u64,
    arrived_at: u64,
    rank: u64,
}

impl<'a> OnlineSim<'a> {
    /// Creates an online simulation at injection rate `rate` (packets per
    /// node per step, `0 ≤ rate ≤ 1`).
    pub fn new(mesh: &'a Mesh, policy: SchedulingPolicy, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        Self { mesh, policy, rate }
    }

    /// Runs for `steps` steps (plus a drain phase of up to `steps` more in
    /// which no new packets are injected), returning latency/throughput
    /// statistics.
    pub fn run(
        &self,
        pattern: &dyn TrafficPattern,
        paths: &dyn PathSource,
        steps: u64,
        seed: u64,
    ) -> OnlineResult {
        let _span = oblivion_obs::span("online_sim");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut route_rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let nodes: Vec<Coord> = self.mesh.coords().collect();
        let mut flights: Vec<Flight> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut injected = 0usize;
        let mut contenders: HashMap<usize, Vec<usize>> = HashMap::new();

        let horizon = 2 * steps;
        let mut t = 0u64;
        while t < horizon && (t < steps || !active.is_empty()) {
            // Injection phase (only during the measurement window).
            if t < steps {
                for src in &nodes {
                    if rng.gen_bool(self.rate) {
                        let dst = pattern.destination(src, &mut rng);
                        if dst == *src {
                            continue;
                        }
                        let path = paths.path(src, &dst, &mut route_rng);
                        debug_assert!(path.is_valid(self.mesh));
                        injected += 1;
                        if path.is_empty() {
                            latencies.push(0.0);
                            continue;
                        }
                        flights.push(Flight {
                            path,
                            pos: 0,
                            injected_at: t,
                            arrived_at: t,
                            rank: rng.gen(),
                        });
                        active.push(flights.len() - 1);
                    }
                }
            }
            // Movement phase.
            contenders.clear();
            for &i in &active {
                let f = &flights[i];
                let p = f.path.nodes();
                let e = self.mesh.edge_id(&p[f.pos], &p[f.pos + 1]);
                contenders.entry(e.0).or_default().push(i);
            }
            if oblivion_obs::is_enabled() {
                oblivion_obs::counter_add("online_steps", 1);
                oblivion_obs::record(
                    "queue_len_per_step",
                    contenders.values().map(Vec::len).max().unwrap_or(0) as u64,
                );
                oblivion_obs::record("busy_links_per_step", contenders.len() as u64);
            }
            for group in contenders.values() {
                let &winner = group
                    .iter()
                    .min_by_key(|&&i| {
                        let f = &flights[i];
                        match self.policy {
                            SchedulingPolicy::Fifo => (f.arrived_at, i as u64),
                            SchedulingPolicy::FurthestToGo => {
                                (u64::MAX - (f.path.len() - f.pos) as u64, i as u64)
                            }
                            SchedulingPolicy::ClosestToGo => {
                                ((f.path.len() - f.pos) as u64, i as u64)
                            }
                            SchedulingPolicy::RandomRank => (f.rank, i as u64),
                        }
                    })
                    .unwrap();
                let f = &mut flights[winner];
                f.pos += 1;
                f.arrived_at = t + 1;
                if f.pos == f.path.len() {
                    latencies.push((t + 1 - f.injected_at) as f64);
                }
            }
            active.retain(|&i| flights[i].pos < flights[i].path.len());
            t += 1;
        }

        let delivered = latencies.len();
        let mean_latency = if delivered > 0 {
            latencies.iter().sum::<f64>() / delivered as f64
        } else {
            0.0
        };
        let p95_latency = if delivered > 0 {
            let mut sorted = latencies.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[((sorted.len() - 1) as f64 * 0.95) as usize]
        } else {
            0.0
        };
        OnlineResult {
            steps,
            injected,
            delivered,
            mean_latency,
            p95_latency,
            in_flight: active.len(),
            throughput: delivered as f64 / (self.mesh.node_count() as f64 * steps as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shortest_paths(mesh: &Mesh) -> impl Fn(&Coord, &Coord, &mut StdRng) -> Path + '_ {
        move |s: &Coord, t: &Coord, _rng: &mut StdRng| {
            // Dimension-order shortest path.
            let mut nodes = vec![*s];
            let mut cur = *s;
            for axis in 0..mesh.dim() {
                while let Some(next) = mesh.step_towards(&cur, t[axis], axis) {
                    nodes.push(next);
                    cur = next;
                }
            }
            Path::new_unchecked(nodes)
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.0);
        let r = sim.run(
            &UniformTraffic::new(mesh.clone()),
            &shortest_paths(&mesh),
            100,
            1,
        );
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn low_rate_latency_near_distance() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.01);
        let r = sim.run(
            &UniformTraffic::new(mesh.clone()),
            &shortest_paths(&mesh),
            500,
            2,
        );
        assert!(r.injected > 0);
        // Uncongested: latency ~= mean distance (~16/3 per axis * 2 ≈ 5.3).
        assert!(r.mean_latency < 12.0, "latency {}", r.mean_latency);
        assert!(r.delivered + r.in_flight <= r.injected);
    }

    #[test]
    fn saturation_grows_latency() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pattern = UniformTraffic::new(mesh.clone());
        let lat = |rate: f64| {
            let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, rate);
            sim.run(&pattern, &shortest_paths(&mesh), 400, 3)
                .mean_latency
        };
        let low = lat(0.02);
        let high = lat(0.9);
        assert!(
            high > 2.0 * low,
            "saturated latency {high} should dwarf unloaded latency {low}"
        );
    }

    #[test]
    fn drain_phase_delivers_everything_at_low_rate() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::FurthestToGo, 0.02);
        let r = sim.run(
            &UniformTraffic::new(mesh.clone()),
            &shortest_paths(&mesh),
            200,
            4,
        );
        assert_eq!(r.in_flight, 0, "low-rate run should fully drain");
        assert_eq!(r.delivered, r.injected);
    }

    #[test]
    fn fixed_traffic_pattern() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pattern = FixedTraffic {
            pattern_name: "transpose".into(),
            map: |c| Coord::new(&[c[1], c[0]]),
        };
        assert_eq!(pattern.name(), "transpose");
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.05);
        let r = sim.run(&pattern, &shortest_paths(&mesh), 300, 5);
        assert!(r.delivered > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pattern = UniformTraffic::new(mesh.clone());
        let run = |seed| {
            let sim = OnlineSim::new(&mesh, SchedulingPolicy::RandomRank, 0.1);
            let r = sim.run(&pattern, &shortest_paths(&mesh), 200, seed);
            (r.injected, r.delivered, r.mean_latency.to_bits())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic]
    fn bad_rate_rejected() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let _ = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 1.5);
    }
}
