//! Continuous-arrival (online) simulation.
//!
//! The paper's opening motivation: "Oblivious algorithms are by their
//! nature distributed and capable of solving **online** routing problems,
//! where packets continuously arrive in the network." This module makes
//! that setting measurable: every node injects packets as a Bernoulli
//! process of rate `λ` (packets per node per step), destinations drawn
//! from a traffic pattern; each packet's path is fixed at injection by an
//! externally supplied path source (the oblivious router); links carry one
//! packet per step. The classic evaluation is mean latency vs offered
//! load: a good router's latency stays flat until `λ` approaches the
//! pattern's capacity limit, then diverges.
//!
//! Two engines share one contract. [`OnlineSim::run`] is the sequential
//! reference; [`OnlineSim::run_sharded`] partitions the mesh's links into
//! spatial shards and simulates them on a thread pool (see
//! [`crate::sharded`]). Both draw injections from the same main RNG
//! stream and give packet `k` a private path-selection RNG derived from
//! `(seed, k)`, so they produce **identical results** — the differential
//! tests in `tests/parallel_online.rs` hold them to that, field for
//! field, for any thread count.

use crate::checkpoint::{capture_obs, CheckpointCfg, EngineState, PacketState, StopReason};
use crate::stepper::{Adverse, BoundaryScalars, FaultClock, Pending, PhaseTimer, StepObs, Stepper};
use crate::SchedulingPolicy;
use oblivion_faults::{FaultPlan, RecoveryPolicy};
use oblivion_mesh::{Coord, EdgeId, Mesh, Path};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Where an injected packet wants to go.
pub trait TrafficPattern {
    /// Draws a destination for a packet injected at `src` (may equal
    /// `src`; such packets are counted as delivered instantly).
    fn destination(&self, src: &Coord, rng: &mut StdRng) -> Coord;
    /// Pattern name for reports.
    fn name(&self) -> String;
}

/// Uniformly random destinations.
pub struct UniformTraffic {
    mesh: Mesh,
}

impl UniformTraffic {
    /// Creates the pattern for a mesh.
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh }
    }
}

impl TrafficPattern for UniformTraffic {
    fn destination(&self, _src: &Coord, rng: &mut StdRng) -> Coord {
        let id = oblivion_mesh::NodeId(rng.gen_range(0..self.mesh.node_count()));
        self.mesh.coord(id)
    }
    fn name(&self) -> String {
        "uniform".into()
    }
}

/// Deterministic per-source destination function (transpose, complement…).
pub struct FixedTraffic {
    /// Name for reports.
    pub pattern_name: String,
    /// The destination map.
    pub map: fn(&Coord) -> Coord,
}

impl TrafficPattern for FixedTraffic {
    fn destination(&self, src: &Coord, _rng: &mut StdRng) -> Coord {
        (self.map)(src)
    }
    fn name(&self) -> String {
        self.pattern_name.clone()
    }
}

/// A source of paths: called once per injected packet. Implemented by
/// wrapping an oblivious router; kept as a closure trait so the simulator
/// does not depend on `oblivion-core`.
pub trait PathSource {
    /// Produces the full path a packet injected at `s` for `t` will take.
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> Path;

    /// Redraws a path for an in-flight packet stranded at `current` by a
    /// fault (the `resample` recovery policy). For an oblivious source a
    /// redraw is just another independent selection, so this defaults to
    /// [`Self::path`]; wrappers over `ObliviousRouter` forward to its
    /// `resample_path` entry point instead.
    fn resample(&self, current: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self.path(current, t, rng)
    }
}

impl<F: Fn(&Coord, &Coord, &mut StdRng) -> Path> PathSource for F {
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> Path {
        self(s, t, rng)
    }
}

/// Fault setup for an online run: the materialized plan plus what a
/// packet does when its next hop is down. `Copy` (it only borrows the
/// plan), so both engines can pass it around freely.
#[derive(Clone, Copy)]
pub struct Faults<'a> {
    /// The read-only fault schedule, queried at contention time.
    pub plan: &'a FaultPlan,
    /// What a blocked packet does.
    pub recovery: RecoveryPolicy,
    /// Adverse events (budget-consuming retries, resamples, dropped
    /// traversals) a packet survives before it is dead-lettered.
    pub retry_budget: u32,
}

/// Graceful-degradation tallies of a faulted run; `None` on
/// [`OnlineResult::faults`] when no fault plan was attached. All fields
/// are order-free sums, so they are bit-identical between the sequential
/// and sharded engines at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Packets abandoned after exhausting their retry budget, plus those
    /// addressed to a dead node.
    pub dead_letters: u64,
    /// Dead letters charged at injection (destination node was dead).
    pub dead_on_injection: u64,
    /// Path redraws performed by the `resample` recovery policy.
    pub resamples: u64,
    /// Traversals lost to per-link packet drop.
    pub drops: u64,
    /// Packet-steps spent blocked behind a down link.
    pub blocked: u64,
    /// Injection attempts skipped because the source node was dead.
    pub src_down_skips: u64,
    /// Links with at least one down interval in the plan.
    pub failed_links: u64,
    /// Dead nodes in the plan.
    pub failed_nodes: u64,
}

impl FaultStats {
    pub(crate) fn for_plan(plan: &FaultPlan) -> Self {
        Self {
            failed_links: plan.failed_links() as u64,
            failed_nodes: plan.failed_nodes() as u64,
            ..Self::default()
        }
    }
}

/// SplitMix64 mix, the standard seed expander (same constants as
/// `oblivion_core`'s parallel router driver).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The private path-selection RNG of the `idx`-th injected packet. A pure
/// function of `(seed, idx)`, so path selection can run in any order — or
/// in parallel — without changing the outcome.
pub(crate) fn route_rng_for(seed: u64, idx: u64) -> StdRng {
    let base = seed ^ 0xDEAD_BEEF;
    StdRng::seed_from_u64(splitmix64(base ^ splitmix64(idx)))
}

/// Contention key of packet `id` for the one-packet-per-link rule: the
/// minimum key wins. Appending the packet id makes keys unique, so the
/// winner is independent of the order contenders are examined in.
pub(crate) fn policy_key(
    policy: SchedulingPolicy,
    arrived_at: u64,
    rank: u64,
    remaining: u64,
    id: u64,
) -> (u64, u64) {
    match policy {
        SchedulingPolicy::Fifo => (arrived_at, id),
        SchedulingPolicy::FurthestToGo => (u64::MAX - remaining, id),
        SchedulingPolicy::ClosestToGo => (remaining, id),
        SchedulingPolicy::RandomRank => (rank, id),
    }
}

/// Deterministic statistics of a sharded run (identical for every thread
/// count; see [`crate::sharded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    /// Number of spatial shards the mesh's links were partitioned into.
    pub shards: usize,
    /// Total cross-shard packet handoffs over the run.
    pub handoffs: u64,
    /// Largest per-step spread between the busiest and idlest shard's
    /// live packet count.
    pub max_imbalance: u64,
}

/// Result of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineResult {
    /// Steps simulated.
    pub steps: u64,
    /// Packets injected (excluding self-addressed no-ops).
    pub injected: usize,
    /// Packets delivered within the horizon.
    pub delivered: usize,
    /// Mean latency (injection → delivery) of delivered packets.
    pub mean_latency: f64,
    /// 95th-percentile latency of delivered packets.
    pub p95_latency: f64,
    /// Packets still in flight at the horizon.
    pub in_flight: usize,
    /// Delivered packets per node per step — the accepted throughput.
    pub throughput: f64,
    /// Total traversals of each link over the run, indexed by `EdgeId` —
    /// the online analogue of the offline congestion map.
    pub link_loads: Vec<u64>,
    /// Shard statistics when the sharded engine ran; `None` for
    /// [`OnlineSim::run`].
    pub sharding: Option<ShardSummary>,
    /// Fault tallies when a fault plan was attached; `None` otherwise.
    pub faults: Option<FaultStats>,
}

impl OnlineResult {
    /// Builds the result from raw per-run tallies. Latencies are integer
    /// step counts summed exactly in `u64`, so the derived means are
    /// bit-identical no matter what order deliveries were recorded in —
    /// the property the sharded engine's determinism contract rests on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        mesh: &Mesh,
        steps: u64,
        injected: usize,
        mut latencies: Vec<u64>,
        in_flight: usize,
        link_loads: Vec<u64>,
        sharding: Option<ShardSummary>,
        faults: Option<FaultStats>,
    ) -> Self {
        let delivered = latencies.len();
        let mean_latency = if delivered > 0 {
            latencies.iter().sum::<u64>() as f64 / delivered as f64
        } else {
            0.0
        };
        let p95_latency = if delivered > 0 {
            latencies.sort_unstable();
            latencies[((delivered - 1) as f64 * 0.95) as usize] as f64
        } else {
            0.0
        };
        Self {
            steps,
            injected,
            delivered,
            mean_latency,
            p95_latency,
            in_flight,
            throughput: delivered as f64 / (mesh.node_count() as f64 * steps as f64),
            link_loads,
            sharding,
            faults,
        }
    }

    /// Fraction of injected packets delivered within the horizon — the
    /// headline graceful-degradation metric. `1.0` for an empty run.
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// `true` when two runs produced the same simulation outcome —
    /// every field except [`Self::sharding`], which records *how* the
    /// work was organized rather than *what* happened. Used by the
    /// differential tests comparing the sequential and sharded engines.
    pub fn same_outcome(&self, other: &Self) -> bool {
        self.steps == other.steps
            && self.injected == other.injected
            && self.delivered == other.delivered
            && self.mean_latency.to_bits() == other.mean_latency.to_bits()
            && self.p95_latency.to_bits() == other.p95_latency.to_bits()
            && self.in_flight == other.in_flight
            && self.throughput.to_bits() == other.throughput.to_bits()
            && self.link_loads == other.link_loads
            && self.faults == other.faults
    }
}

/// Configuration of an online run.
pub struct OnlineSim<'a> {
    mesh: &'a Mesh,
    policy: SchedulingPolicy,
    /// Injection probability per node per step.
    rate: f64,
    faults: Option<Faults<'a>>,
}

struct Flight {
    path: Path,
    pos: usize,
    injected_at: u64,
    arrived_at: u64,
    rank: u64,
    /// Injection index: the packet's run-global identity for fault
    /// decisions (drop hashes, resample RNGs).
    inj: u64,
    /// Fault-recovery clock (shared transition rules in `stepper`).
    clock: FaultClock,
    dead: bool,
}

/// Installs a freshly resampled path on `f`, drawn from the plan's
/// derived RNG for `(f.inj, attempts)`. The packet restarts at position
/// 0 of the new path and may not act again before `t + 1`.
fn resample_flight(
    f: &mut Flight,
    fx: &Faults<'_>,
    paths: &dyn PathSource,
    mesh: &Mesh,
    attempts: u32,
    t: u64,
) {
    let cur = f.path.nodes()[f.pos];
    let dst = *f.path.nodes().last().expect("non-empty path");
    let mut rng = fx.plan.resample_rng(f.inj, attempts);
    let np = paths.resample(&cur, &dst, &mut rng);
    debug_assert!(np.is_valid(mesh), "resampled path invalid");
    f.path = np;
    f.pos = 0;
    f.clock.resampled(attempts, t);
}

impl<'a> OnlineSim<'a> {
    /// Creates an online simulation at injection rate `rate` (packets per
    /// node per step, `0 ≤ rate ≤ 1`).
    pub fn new(mesh: &'a Mesh, policy: SchedulingPolicy, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        Self {
            mesh,
            policy,
            rate,
            faults: None,
        }
    }

    /// Attaches a fault plan and recovery policy. Fault decisions never
    /// touch the main injection RNG stream (they use the plan's own
    /// derived randomness), so a run with a trivial plan is bit-identical
    /// to a run with no plan at all — except that the result then carries
    /// `Some(FaultStats)`.
    pub fn with_faults(mut self, faults: Faults<'a>) -> Self {
        self.faults = Some(faults);
        self
    }

    pub(crate) fn fault_setup(&self) -> Option<Faults<'a>> {
        self.faults
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> &'a Mesh {
        self.mesh
    }

    /// The link-contention policy.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// The per-node Bernoulli injection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Runs for `steps` steps (plus a drain phase of up to `steps` more in
    /// which no new packets are injected), returning latency/throughput
    /// statistics. Sequential reference engine; produces the same result
    /// as [`Self::run_sharded`] at any thread count.
    pub fn run(
        &self,
        pattern: &dyn TrafficPattern,
        paths: &dyn PathSource,
        steps: u64,
        seed: u64,
    ) -> OnlineResult {
        match self.run_ckpt(pattern, paths, steps, seed, None, None) {
            Ok(r) => r,
            Err(stop) => unreachable!("uncheckpointed run cannot stop early: {stop}"),
        }
    }

    /// [`Self::run`] with checkpoint/restore: `ckpt` enables periodic and
    /// shutdown snapshots, `resume` continues from a decoded snapshot. A
    /// resumed run produces an [`OnlineResult`] identical to an
    /// uninterrupted run of the same configuration.
    pub fn run_ckpt(
        &self,
        pattern: &dyn TrafficPattern,
        paths: &dyn PathSource,
        steps: u64,
        seed: u64,
        ckpt: Option<&CheckpointCfg<'_>>,
        resume: Option<&EngineState>,
    ) -> Result<OnlineResult, StopReason> {
        let _span = oblivion_obs::span("online_sim");
        let mut sp = Stepper::new(self.rate, self.faults, steps, seed, ckpt, resume);
        let nodes: Vec<Coord> = self.mesh.coords().collect();
        let mut flights: Vec<Flight> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut latencies: Vec<u64> = Vec::new();
        let mut link_loads = vec![0u64; self.mesh.edge_count()];
        let mut pending: Vec<Pending> = Vec::new();
        let mut contenders: HashMap<usize, Vec<usize>> = HashMap::new();

        if let Some(st) = resume {
            latencies = st.latencies.clone();
            link_loads.clone_from(&st.link_loads);
            // Rebuild the flight arena at its pre-stop length: live
            // packets in place, inert dummies where delivered/dead ones
            // sat, so post-resume packets get identical indices (ids).
            let mut live = st.packets.iter().peekable();
            for id in 0..st.arena_len as usize {
                if live.peek().is_some_and(|p| p.id as usize == id) {
                    let p = live.next().expect("peeked");
                    flights.push(Flight {
                        path: p.to_path(self.mesh),
                        pos: p.pos as usize,
                        injected_at: p.injected_at,
                        arrived_at: p.arrived,
                        rank: p.rank,
                        inj: p.inj,
                        clock: FaultClock::restore(p.attempts, p.backoff_until),
                        dead: false,
                    });
                    active.push(id);
                } else {
                    flights.push(Flight {
                        path: Path::trivial(self.mesh.coord(oblivion_mesh::NodeId(0))),
                        pos: 0,
                        injected_at: 0,
                        arrived_at: 0,
                        rank: 0,
                        inj: 0,
                        clock: FaultClock::default(),
                        dead: true,
                    });
                }
            }
        }
        let mut timer = PhaseTimer::idle();
        while sp.running(active.len()) {
            if let Some(stop) = sp.boundary(|scalars| {
                capture_sequential(
                    self.mesh,
                    scalars,
                    &flights,
                    &active,
                    &latencies,
                    &link_loads,
                )
            }) {
                return Err(stop);
            }
            timer.start();
            // Injection phase: draw from the main RNG (stepper), then
            // route each pending inline — its private route RNG is a pure
            // function of `(seed, idx)`, so routing order is immaterial.
            sp.draw_injections(self.mesh, &nodes, pattern, &mut pending);
            let t = sp.t;
            for pj in &pending {
                let mut prng = route_rng_for(seed, pj.idx);
                let path = paths.path(&pj.src, &pj.dst, &mut prng);
                debug_assert!(path.is_valid(self.mesh));
                if path.is_empty() {
                    latencies.push(0);
                    continue;
                }
                flights.push(Flight {
                    path,
                    pos: 0,
                    injected_at: t,
                    arrived_at: t,
                    rank: pj.rank,
                    inj: pj.idx,
                    clock: FaultClock::default(),
                    dead: false,
                });
                active.push(flights.len() - 1);
            }
            timer.inject_done();
            // Movement phase. A packet whose next link is down does not
            // contend this step; its recovery policy decides what it
            // does instead.
            contenders.clear();
            for &i in &active {
                let e = {
                    let f = &flights[i];
                    let p = f.path.nodes();
                    self.mesh.edge_id(&p[f.pos], &p[f.pos + 1])
                };
                if let Some(fx) = &sp.faults {
                    if fx.plan.link_down(e, t) {
                        let fs = sp.fstats.as_mut().unwrap();
                        fs.blocked += 1;
                        let f = &mut flights[i];
                        match f.clock.adverse(fx, t) {
                            Adverse::Hold => {}
                            Adverse::DeadLetter => {
                                f.dead = true;
                                fs.dead_letters += 1;
                            }
                            Adverse::Resample { attempts } => {
                                fs.resamples += 1;
                                resample_flight(f, fx, paths, self.mesh, attempts, t);
                            }
                        }
                        continue;
                    }
                }
                contenders.entry(e.0).or_default().push(i);
            }
            let max_group = contenders.values().map(Vec::len).max().unwrap_or(0) as u64;
            let busy = contenders.len() as u64;
            for (&e, group) in &contenders {
                let &winner = group
                    .iter()
                    .min_by_key(|&&i| {
                        let f = &flights[i];
                        policy_key(
                            self.policy,
                            f.arrived_at,
                            f.rank,
                            (f.path.len() - f.pos) as u64,
                            i as u64,
                        )
                    })
                    .unwrap();
                let f = &mut flights[winner];
                // The winning traversal can still lose the packet to
                // per-link drop; the recovery policy then decides
                // whether it is re-sent (from the same node) or dies.
                if let Some(fx) = &sp.faults {
                    if fx.plan.drops(EdgeId(e), t, f.inj) {
                        let fs = sp.fstats.as_mut().unwrap();
                        fs.drops += 1;
                        match f.clock.adverse(fx, t) {
                            Adverse::Hold => {}
                            Adverse::DeadLetter => {
                                f.dead = true;
                                fs.dead_letters += 1;
                            }
                            Adverse::Resample { attempts } => {
                                fs.resamples += 1;
                                resample_flight(f, fx, paths, self.mesh, attempts, t);
                            }
                        }
                        continue;
                    }
                    // A completed hop clears the recovery state.
                    f.clock.progressed();
                }
                f.pos += 1;
                f.arrived_at = t + 1;
                link_loads[e] += 1;
                if f.pos == f.path.len() {
                    latencies.push(t + 1 - f.injected_at);
                }
            }
            active.retain(|&i| !flights[i].dead && flights[i].pos < flights[i].path.len());
            timer.move_done();
            sp.end_step(
                active.len(),
                StepObs {
                    max_group,
                    busy,
                    shard: None,
                },
            );
        }

        sp.finish(None);
        Ok(OnlineResult::assemble(
            self.mesh,
            steps,
            sp.injected,
            latencies,
            active.len(),
            link_loads,
            None,
            sp.fstats,
        ))
    }

    /// Runs the same simulation on the sharded parallel engine with
    /// `threads` worker threads (`1` runs inline with no threads spawned).
    ///
    /// Deterministic: the outcome — every [`OnlineResult`] field,
    /// including [`OnlineResult::sharding`] — is a pure function of the
    /// configuration, `steps`, and `seed`; the thread count only changes
    /// wall-clock time. The outcome also matches [`Self::run`] (see
    /// [`OnlineResult::same_outcome`]).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn run_sharded(
        &self,
        pattern: &dyn TrafficPattern,
        paths: &(dyn PathSource + Sync),
        steps: u64,
        seed: u64,
        threads: usize,
    ) -> OnlineResult {
        match self.run_sharded_ckpt(pattern, paths, steps, seed, threads, None, None) {
            Ok(r) => r,
            Err(stop) => unreachable!("uncheckpointed run cannot stop early: {stop}"),
        }
    }

    /// [`Self::run_sharded`] with checkpoint/restore. Snapshots are
    /// captured at step boundaries, where the coordinator has exclusive
    /// access, and their bytes are canonical: the same configuration
    /// stopped at the same step yields the same snapshot (and CRC) at any
    /// thread count — and the same final result after resume.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_ckpt(
        &self,
        pattern: &dyn TrafficPattern,
        paths: &(dyn PathSource + Sync),
        steps: u64,
        seed: u64,
        threads: usize,
        ckpt: Option<&CheckpointCfg<'_>>,
        resume: Option<&EngineState>,
    ) -> Result<OnlineResult, StopReason> {
        crate::sharded::run_sharded_ckpt(self, pattern, paths, steps, seed, threads, ckpt, resume)
    }

    /// Runs the same simulation on the supervised **multi-process**
    /// engine: this process becomes the supervisor (injection, routing,
    /// step barrier) and `pcfg.procs` child worker processes step the
    /// spatial shards, exchanging boundary handoffs over checksummed
    /// pipes (see [`crate::procs`]).
    ///
    /// Deterministic: the outcome matches [`Self::run`] and
    /// [`Self::run_sharded`] byte for byte at any process count — even
    /// when a worker dies mid-run and is restored from its shadow
    /// snapshot, because a worker's state is a pure function of the
    /// shadow plus the replayed step messages.
    ///
    /// # Panics
    /// Panics if `pcfg.procs == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_procs_ckpt(
        &self,
        pattern: &dyn TrafficPattern,
        paths: &(dyn PathSource + Sync),
        steps: u64,
        seed: u64,
        pcfg: &crate::procs::ProcsCfg,
        ckpt: Option<&CheckpointCfg<'_>>,
        resume: Option<&EngineState>,
    ) -> Result<OnlineResult, StopReason> {
        crate::procs::run_procs_ckpt(self, pattern, paths, steps, seed, pcfg, ckpt, resume)
    }
}

/// Builds the canonical [`EngineState`] of the sequential engine at the
/// start of a step. Latencies are sorted (their order is immaterial to
/// the result) so that, with observability disabled, the bytes match the
/// sharded engine's capture at the same step (the sharded engine keeps
/// two extra obs counters and real handoff/imbalance totals).
fn capture_sequential(
    mesh: &Mesh,
    scalars: &BoundaryScalars<'_>,
    flights: &[Flight],
    active: &[usize],
    latencies: &[u64],
    link_loads: &[u64],
) -> EngineState {
    let packets = active
        .iter()
        .map(|&i| {
            let f = &flights[i];
            PacketState {
                id: i as u64,
                inj: f.inj,
                injected_at: f.injected_at,
                arrived: f.arrived_at,
                rank: f.rank,
                pos: f.pos as u64,
                attempts: f.clock.attempts,
                backoff_until: f.clock.backoff_until,
                path: f
                    .path
                    .nodes()
                    .iter()
                    .map(|c| mesh.node_id(c).0 as u64)
                    .collect(),
            }
        })
        .collect();
    let mut sorted_latencies = latencies.to_vec();
    sorted_latencies.sort_unstable();
    EngineState {
        t: scalars.t,
        rng: scalars.rng.state(),
        injected: scalars.injected as u64,
        inj_idx: scalars.inj_idx,
        arena_len: flights.len() as u64,
        handoffs_total: 0,
        max_imbalance: 0,
        latencies: sorted_latencies,
        link_loads: link_loads.to_vec(),
        packets,
        fstats: *scalars.fstats,
        obs: capture_obs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shortest_paths(mesh: &Mesh) -> impl Fn(&Coord, &Coord, &mut StdRng) -> Path + Sync + '_ {
        move |s: &Coord, t: &Coord, _rng: &mut StdRng| {
            // Dimension-order shortest path.
            let mut nodes = vec![*s];
            let mut cur = *s;
            for axis in 0..mesh.dim() {
                while let Some(next) = mesh.step_towards(&cur, t[axis], axis) {
                    nodes.push(next);
                    cur = next;
                }
            }
            Path::new_unchecked(nodes)
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.0);
        let r = sim.run(
            &UniformTraffic::new(mesh.clone()),
            &shortest_paths(&mesh),
            100,
            1,
        );
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.throughput, 0.0);
        assert!(r.link_loads.iter().all(|&l| l == 0));
    }

    #[test]
    fn low_rate_latency_near_distance() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.01);
        let r = sim.run(
            &UniformTraffic::new(mesh.clone()),
            &shortest_paths(&mesh),
            500,
            2,
        );
        assert!(r.injected > 0);
        // Uncongested: latency ~= mean distance (~16/3 per axis * 2 ≈ 5.3).
        assert!(r.mean_latency < 12.0, "latency {}", r.mean_latency);
        assert!(r.delivered + r.in_flight <= r.injected);
    }

    #[test]
    fn saturation_grows_latency() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pattern = UniformTraffic::new(mesh.clone());
        let lat = |rate: f64| {
            let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, rate);
            sim.run(&pattern, &shortest_paths(&mesh), 400, 3)
                .mean_latency
        };
        let low = lat(0.02);
        let high = lat(0.9);
        assert!(
            high > 2.0 * low,
            "saturated latency {high} should dwarf unloaded latency {low}"
        );
    }

    #[test]
    fn drain_phase_delivers_everything_at_low_rate() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::FurthestToGo, 0.02);
        let r = sim.run(
            &UniformTraffic::new(mesh.clone()),
            &shortest_paths(&mesh),
            200,
            4,
        );
        assert_eq!(r.in_flight, 0, "low-rate run should fully drain");
        assert_eq!(r.delivered, r.injected);
        // Every delivered packet traversed at least one link (or was an
        // instant delivery), so the load map accounts for the traffic.
        assert!(r.link_loads.iter().sum::<u64>() >= r.delivered as u64 / 2);
    }

    #[test]
    fn fixed_traffic_pattern() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pattern = FixedTraffic {
            pattern_name: "transpose".into(),
            map: |c| Coord::new(&[c[1], c[0]]),
        };
        assert_eq!(pattern.name(), "transpose");
        let sim = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 0.05);
        let r = sim.run(&pattern, &shortest_paths(&mesh), 300, 5);
        assert!(r.delivered > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pattern = UniformTraffic::new(mesh.clone());
        let run = |seed| {
            let sim = OnlineSim::new(&mesh, SchedulingPolicy::RandomRank, 0.1);
            let r = sim.run(&pattern, &shortest_paths(&mesh), 200, seed);
            (r.injected, r.delivered, r.mean_latency.to_bits())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn per_packet_route_rng_is_stable() {
        // The k-th packet's route RNG must not depend on how many packets
        // came before it in the same step — only on (seed, k).
        let mut a = route_rng_for(42, 7);
        let mut b = route_rng_for(42, 7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = route_rng_for(42, 8);
        let mut d = route_rng_for(43, 7);
        let x = route_rng_for(42, 7).gen::<u64>();
        assert_ne!(c.gen::<u64>(), x);
        assert_ne!(d.gen::<u64>(), x);
    }

    #[test]
    #[should_panic]
    fn bad_rate_rejected() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let _ = OnlineSim::new(&mesh, SchedulingPolicy::Fifo, 1.5);
    }
}
