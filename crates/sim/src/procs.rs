//! Supervised multi-process online simulation.
//!
//! `oblivion online --procs N` runs the sharded engine's spatial shards
//! in **separate OS processes**: a supervisor (this process) owns the
//! step barrier, the main injection RNG, and all routing; N worker
//! processes each own a fixed subset of the shards (the same
//! `pool::home_of` assignment the thread pool uses) and run the exact
//! `sharded::step_shard` contend-and-commit per step. Boundary
//! handoffs cross process boundaries over a length-checked line
//! protocol: `oblivion-wire`'s LF framing with CRC'd payloads, carrying
//! packets in the checkpoint codec's byte format
//! ([`crate::checkpoint::PacketState`]).
//!
//! ```text
//!             supervisor (owns RNG, routing, step barrier)
//!    RESTORE ─┬───────────────┬───────────────┐
//!    STEP t   │ injections +  │ handoffs from │      one line per
//!             │ handoffs-in   │ step t-1      │      message; hex
//!             ▼               ▼               ▼      payload + crc32
//!        ┌─────────┐     ┌─────────┐     ┌─────────┐
//!        │worker 0 │     │worker 1 │ ... │worker N │  each steps its
//!        │shards Sₒ│     │shards S₁│     │shards Sₙ│  owned shards
//!        └────┬────┘     └────┬────┘     └────┬────┘
//!    DONE t   │ tallies, new  │ latencies,    │ HB (heartbeat)
//!             │ handoffs-out  │ live counts   │ whenever quiet
//!             ▼               ▼               ▼
//!             supervisor aggregates → end_step → next STEP
//! ```
//!
//! **Determinism.** The supervisor draws injections and routes them
//! exactly as the sequential engine would (main RNG + per-packet route
//! RNGs); workers mirror `step_shard` bit for bit, and every aggregate
//! the supervisor folds (latency sums, fault tallies, busy/max-group,
//! live counts) is order-free. Deterministic obs emitted while a worker
//! steps (router resample instrumentation) are drained into each DONE
//! and merged back into the supervisor's registry, so metrics documents
//! and snapshots stay canonical too. `--procs N` is therefore
//! byte-identical to `--threads K` and to the sequential engine for
//! every N and K.
//!
//! **Robustness.** Each worker is watched through per-message deadlines
//! re-armed by heartbeats. When a worker dies (crash, kill -9, EOF,
//! poisoned frame), the supervisor kills and respawns it with capped
//! exponential backoff, restores it from the last step-boundary
//! **shadow** (an in-memory snapshot refreshed by the same SNAP
//! exchange that feeds on-disk checkpoints), and replays the journaled
//! STEP lines since — byte-identical recovery, because a worker's state
//! is a pure function of (shadow, replayed STEP lines).

use crate::checkpoint::{
    capture_obs, decode_packet, encode_packet, CheckpointCfg, EngineState, PacketState, StopReason,
};
use crate::online::{
    route_rng_for, Faults, OnlineResult, OnlineSim, PathSource, ShardSummary, TrafficPattern,
};
use crate::pool;
use crate::sharded::{step_shard, Arena, ShardMap, ShardState, GONE};
use crate::stepper::{Pending, PhaseTimer, ShardFinale, StepObs, Stepper};
use oblivion_ckpt::{ByteReader, ByteWriter, CkptError};
use oblivion_mesh::{Coord, Mesh, NodeId, Path};
use oblivion_wire::{decode_msg, encode_msg, FrameBuf, Framed, Msg};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Longest protocol line either side will buffer. Snapshot replies grow
/// with the in-flight packet population; this bound is a defense against
/// a corrupted stream, not a sizing estimate.
const MAX_MSG_LINE: usize = 1 << 28;

/// Restart attempts per worker incident before the run gives up.
const MAX_RESTARTS: u32 = 5;

/// Without on-disk checkpointing the supervisor still refreshes worker
/// shadows this often, so recovery replay and journal memory stay
/// bounded on long runs.
const SHADOW_EVERY: u64 = 64;

/// Environment hook for the fault-injection suites: `"W:T"` makes worker
/// `W` abort the instant it receives `STEP T` — a deterministic stand-in
/// for `kill -9` at a step boundary. Respawned workers get the variable
/// stripped so the replayed step does not re-trigger it.
pub const CRASH_ENV: &str = "OBLIVION_PROC_CRASH";

/// Supervisor-side configuration of a multi-process run.
pub struct ProcsCfg {
    /// Worker processes to spawn (clamped to the shard count).
    pub procs: usize,
    /// Deadline for any expected worker message; re-armed by heartbeats.
    pub handoff_timeout: Duration,
    /// Program to execute for each worker (normally `current_exe()`).
    pub worker_program: PathBuf,
    /// Arguments launching the worker entry point (the hidden
    /// `proc-worker` subcommand plus the run's full configuration). The
    /// supervisor appends `--procs <effective> --worker <index>`.
    pub worker_args: Vec<String>,
}

/// Worker-side configuration (parsed from the `proc-worker` args by the
/// CLI, which owns router construction).
pub struct WorkerCfg<'a> {
    /// The mesh being simulated.
    pub mesh: &'a Mesh,
    /// The link-contention policy.
    pub policy: crate::SchedulingPolicy,
    /// The fault setup, if the run has one.
    pub faults: Option<Faults<'a>>,
    /// Total worker processes (the supervisor's effective count).
    pub procs: usize,
    /// This worker's index in `0..procs`.
    pub worker: usize,
    /// Heartbeat cadence on stdout.
    pub heartbeat: Duration,
}

// ---------------------------------------------------------------------
// Payload codecs. All payloads are ByteWriter/ByteReader byte strings
// (the checkpoint codec), hex-armored and CRC'd by `oblivion_wire::msg`.
// ---------------------------------------------------------------------

fn put_packets(w: &mut ByteWriter, pkts: &[PacketState]) {
    w.usize(pkts.len());
    for p in pkts {
        encode_packet(w, p);
    }
}

fn get_packets(r: &mut ByteReader<'_>) -> Result<Vec<PacketState>, CkptError> {
    let n = r.len_prefix(8 * 8, "packets")?;
    let mut pkts = Vec::with_capacity(n);
    for _ in 0..n {
        pkts.push(decode_packet(r)?);
    }
    Ok(pkts)
}

fn put_loads(w: &mut ByteWriter, loads: &[Vec<u64>]) {
    w.usize(loads.len());
    for l in loads {
        w.u64_slice(l);
    }
}

fn get_loads(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u64>>, CkptError> {
    let n = r.len_prefix(8, "loads")?;
    let mut loads = Vec::with_capacity(n);
    for _ in 0..n {
        loads.push(r.u64_vec("loads.shard")?);
    }
    Ok(loads)
}

fn step_line(t: u64, arrivals: &[PacketState]) -> String {
    let mut w = ByteWriter::new();
    w.u64(t);
    put_packets(&mut w, arrivals);
    encode_msg("STEP", &w.into_bytes())
}

fn restore_line(t0: u64, packets: &[PacketState], loads: &[Vec<u64>]) -> String {
    let mut w = ByteWriter::new();
    w.u64(t0);
    put_packets(&mut w, packets);
    put_loads(&mut w, loads);
    encode_msg("RESTORE", &w.into_bytes())
}

/// Order-free per-step tallies a worker reports in `DONE` — the shard
/// harvest of the thread engine, serialized.
#[derive(Default)]
struct DoneTallies {
    delivered: u64,
    dead: u64,
    blocked: u64,
    resamples: u64,
    drops: u64,
    busy: u64,
    max_group: u64,
    handoffs: u64,
}

struct Done {
    t: u64,
    tallies: DoneTallies,
    new_latencies: Vec<u64>,
    /// Live counts of the worker's owned shards, in owned order.
    live: Vec<u64>,
    /// Packets handed off to shards owned by other workers.
    handoffs_out: Vec<PacketState>,
    /// Deterministic obs counters emitted in-worker this step (e.g.
    /// router bridge hits during fault resamples), drained for the
    /// supervisor's registry.
    obs_counters: Vec<(String, u64)>,
    /// Deterministic obs histograms emitted in-worker this step.
    obs_histograms: Vec<(String, oblivion_obs::Histogram)>,
}

fn done_line(d: &Done) -> String {
    let mut w = ByteWriter::new();
    w.u64(d.t);
    for v in [
        d.tallies.delivered,
        d.tallies.dead,
        d.tallies.blocked,
        d.tallies.resamples,
        d.tallies.drops,
        d.tallies.busy,
        d.tallies.max_group,
        d.tallies.handoffs,
    ] {
        w.u64(v);
    }
    w.u64_slice(&d.new_latencies);
    w.u64_slice(&d.live);
    put_packets(&mut w, &d.handoffs_out);
    w.usize(d.obs_counters.len());
    for (name, v) in &d.obs_counters {
        w.str(name);
        w.u64(*v);
    }
    w.usize(d.obs_histograms.len());
    for (name, h) in &d.obs_histograms {
        w.str(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.min);
        w.u64(h.max);
        for b in &h.buckets {
            w.u64(*b);
        }
    }
    encode_msg("DONE", &w.into_bytes())
}

fn parse_done(payload: &[u8]) -> Result<Done, CkptError> {
    let mut r = ByteReader::new(payload);
    let t = r.u64("done.t")?;
    let mut vals = [0u64; 8];
    for v in &mut vals {
        *v = r.u64("done.tally")?;
    }
    let new_latencies = r.u64_vec("done.latencies")?;
    let live = r.u64_vec("done.live")?;
    let handoffs_out = get_packets(&mut r)?;
    let nc = r.len_prefix(16, "done.obs.counters")?;
    let mut obs_counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        let name = r.str("done.obs.counter.name")?;
        let v = r.u64("done.obs.counter.value")?;
        obs_counters.push((name, v));
    }
    let nh = r.len_prefix(
        8 * (4 + oblivion_obs::HISTOGRAM_BUCKETS),
        "done.obs.histograms",
    )?;
    let mut obs_histograms = Vec::with_capacity(nh);
    for _ in 0..nh {
        let name = r.str("done.obs.histogram.name")?;
        let count = r.u64("done.obs.histogram")?;
        let sum = r.u64("done.obs.histogram")?;
        let min = r.u64("done.obs.histogram")?;
        let max = r.u64("done.obs.histogram")?;
        let mut buckets = [0u64; oblivion_obs::HISTOGRAM_BUCKETS];
        for b in &mut buckets {
            *b = r.u64("done.obs.histogram.bucket")?;
        }
        obs_histograms.push((
            name,
            oblivion_obs::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
            },
        ));
    }
    r.finish("done")?;
    Ok(Done {
        t,
        tallies: DoneTallies {
            delivered: vals[0],
            dead: vals[1],
            blocked: vals[2],
            resamples: vals[3],
            drops: vals[4],
            busy: vals[5],
            max_group: vals[6],
            handoffs: vals[7],
        },
        new_latencies,
        live,
        handoffs_out,
        obs_counters,
        obs_histograms,
    })
}

// ---------------------------------------------------------------------
// Supervisor side.
// ---------------------------------------------------------------------

/// Last known-good state of one worker: its live packets and owned-shard
/// link loads at step `t0`. Restoring a worker from its shadow and
/// replaying the journaled STEP lines since reproduces its state bit for
/// bit.
struct Shadow {
    t0: u64,
    packets: Vec<PacketState>,
    /// Per owned shard (owned order), slot-indexed traversal totals.
    loads: Vec<Vec<u64>>,
}

/// A decoded SNAPOK/RESTORE payload: the step it captures, the worker's
/// live packets, and its per-owned-shard link loads — the same triple a
/// [`Shadow`] holds.
type SnapParts = (u64, Vec<PacketState>, Vec<Vec<u64>>);

struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<Result<Msg, String>>,
}

/// The fleet of worker processes plus everything needed to resurrect
/// any of them: shadows, journals, and spawn parameters.
struct Fleet<'a> {
    program: &'a std::path::Path,
    args: &'a [String],
    procs: usize,
    timeout: Duration,
    workers: Vec<Option<WorkerHandle>>,
    /// Raw STEP lines sent since each worker's shadow was refreshed.
    journals: Vec<Vec<String>>,
    shadows: Vec<Shadow>,
}

impl Drop for Fleet<'_> {
    fn drop(&mut self) {
        for slot in &mut self.workers {
            if let Some(mut h) = slot.take() {
                let _ = h.child.kill();
                let _ = h.child.wait();
            }
        }
    }
}

/// Reads a worker's stdout on a dedicated thread, decoding protocol
/// lines into `tx`. EOF and framing damage surface as `Err`, which the
/// supervisor treats as a dead worker.
fn spawn_reader(mut out: impl Read + Send + 'static, tx: Sender<Result<Msg, String>>) {
    std::thread::spawn(move || {
        let mut frames = FrameBuf::new(MAX_MSG_LINE);
        let mut buf = [0u8; 1 << 16];
        loop {
            let n = match out.read(&mut buf) {
                Ok(0) => {
                    let _ = tx.send(Err("worker closed its pipe".into()));
                    return;
                }
                Ok(n) => n,
                Err(e) => {
                    let _ = tx.send(Err(format!("worker pipe read failed: {e}")));
                    return;
                }
            };
            frames.extend(&buf[..n]);
            while let Some(framed) = frames.next_line() {
                let item = match framed {
                    Framed::Line(line) => {
                        decode_msg(&line).map_err(|e| format!("bad worker message: {e:?}"))
                    }
                    Framed::Bad(why) => Err(format!("bad worker frame: {why}")),
                };
                let fatal = item.is_err();
                if tx.send(item).is_err() || fatal {
                    return;
                }
            }
        }
    });
}

impl<'a> Fleet<'a> {
    fn spawn(&mut self, w: usize, strip_crash_env: bool) -> io::Result<()> {
        let mut cmd = Command::new(self.program);
        cmd.args(self.args)
            .args([
                "--procs",
                &self.procs.to_string(),
                "--worker",
                &w.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if strip_crash_env {
            // A respawned worker must not re-trigger an injected crash
            // while replaying the very step that killed it.
            cmd.env_remove(CRASH_ENV);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = std::sync::mpsc::channel();
        spawn_reader(stdout, tx);
        eprintln!("proc worker {w} pid {}", child.id());
        self.workers[w] = Some(WorkerHandle { child, stdin, rx });
        let restore = restore_line(
            self.shadows[w].t0,
            &self.shadows[w].packets,
            &self.shadows[w].loads,
        );
        self.send(w, &restore)
    }

    fn send(&mut self, w: usize, line: &str) -> io::Result<()> {
        let h = self.workers[w].as_mut().expect("worker spawned");
        h.stdin.write_all(line.as_bytes())?;
        h.stdin.flush()
    }

    /// Receives the next non-heartbeat message from worker `w`. Each
    /// heartbeat re-arms the deadline; silence past the deadline, EOF,
    /// or a damaged frame is a dead worker.
    fn recv(&mut self, w: usize) -> Result<Msg, String> {
        let h = self.workers[w].as_ref().expect("worker spawned");
        let mut deadline = Instant::now() + self.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match h.rx.recv_timeout(left) {
                Ok(Ok(msg)) if msg.tag == "HB" => deadline = Instant::now() + self.timeout,
                Ok(Ok(msg)) => return Ok(msg),
                Ok(Err(why)) => return Err(why),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(format!("no message within {} ms", self.timeout.as_millis()))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err("worker reader disconnected".into())
                }
            }
        }
    }

    fn expect(&mut self, w: usize, tag: &str) -> Result<Msg, String> {
        let msg = self.recv(w)?;
        if msg.tag == tag {
            Ok(msg)
        } else {
            Err(format!("expected {tag}, got {}", msg.tag))
        }
    }

    /// Kills and resurrects worker `w`: respawn with capped exponential
    /// backoff, restore its shadow, replay the journaled STEP lines.
    /// `trailing` journal entries are left *pending* — their DONE replies
    /// are the caller's to consume (1 while awaiting the current step's
    /// DONE, 0 when the failure happened between steps).
    fn revive(&mut self, w: usize, trailing: usize, why: &str) -> Result<(), String> {
        let started = Instant::now();
        eprintln!(
            "proc worker {w} died ({why}); restarting from step {}",
            self.shadows[w].t0
        );
        let replayed = self.journals[w].len();
        for attempt in 0..MAX_RESTARTS {
            if let Some(mut h) = self.workers[w].take() {
                let _ = h.child.kill();
                let _ = h.child.wait();
            }
            // Capped exponential backoff between restart attempts.
            std::thread::sleep(Duration::from_millis((50u64 << attempt).min(2000)));
            let ok = (|| -> Result<(), String> {
                self.spawn(w, true).map_err(|e| format!("respawn: {e}"))?;
                for i in 0..self.journals[w].len() {
                    let line = self.journals[w][i].clone();
                    self.send(w, &line).map_err(|e| format!("replay: {e}"))?;
                }
                // Drain the replayed steps' DONEs: their contents were
                // already aggregated before the crash (determinism makes
                // the replay byte-identical, so there is nothing new).
                let discard = self.journals[w].len().saturating_sub(trailing);
                for _ in 0..discard {
                    self.expect(w, "DONE")?;
                }
                Ok(())
            })();
            match ok {
                Ok(()) => {
                    eprintln!(
                        "proc worker {w} recovered in {} ms (replayed {replayed} steps)",
                        started.elapsed().as_millis()
                    );
                    return Ok(());
                }
                Err(e) => eprintln!("proc worker {w} restart attempt {attempt} failed: {e}"),
            }
        }
        Err(format!(
            "worker {w} unrecoverable after {MAX_RESTARTS} restarts"
        ))
    }

    /// Refreshes every worker's shadow via a SNAP exchange at boundary
    /// `t`, clearing the journals. The same exchange feeds checkpoint
    /// captures, so a saved snapshot and a crash shadow always agree.
    fn refresh_shadows(&mut self, t: u64) -> Result<(), String> {
        let snap = {
            let mut w = ByteWriter::new();
            w.u64(t);
            encode_msg("SNAP", &w.into_bytes())
        };
        for w in 0..self.procs {
            let mut tries = 0u32;
            let msg = loop {
                let res = self
                    .send(w, &snap)
                    .map_err(|e| format!("snap send: {e}"))
                    .and_then(|()| self.expect(w, "SNAPOK"));
                match res {
                    Ok(msg) => break msg,
                    Err(why) => {
                        tries += 1;
                        if tries > 2 {
                            return Err(why);
                        }
                        self.revive(w, 0, &why)?;
                    }
                }
            };
            let mut r = ByteReader::new(&msg.payload);
            let parsed = (|| -> Result<SnapParts, CkptError> {
                let st = r.u64("snapok.t")?;
                let packets = get_packets(&mut r)?;
                let loads = get_loads(&mut r)?;
                r.finish("snapok")?;
                Ok((st, packets, loads))
            })()
            .map_err(|e| format!("worker {w} SNAPOK: {e}"))?;
            if parsed.0 != t {
                return Err(format!("worker {w} snapshotted step {} at {t}", parsed.0));
            }
            self.shadows[w] = Shadow {
                t0: t,
                packets: parsed.1,
                loads: parsed.2,
            };
            self.journals[w].clear();
        }
        Ok(())
    }
}

fn io_stop(why: String) -> StopReason {
    StopReason::Error(CkptError::Io(io::Error::other(why)))
}

/// Runs the supervised multi-process simulation. See
/// [`OnlineSim::run_procs_ckpt`] for the public contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_procs_ckpt(
    sim: &OnlineSim<'_>,
    pattern: &dyn TrafficPattern,
    paths: &(dyn PathSource + Sync),
    steps: u64,
    seed: u64,
    pcfg: &ProcsCfg,
    ckpt: Option<&CheckpointCfg<'_>>,
    resume: Option<&EngineState>,
) -> Result<OnlineResult, StopReason> {
    assert!(pcfg.procs >= 1, "need at least one worker process");
    let _span = oblivion_obs::span("online_sim_procs");
    let mesh = sim.mesh();
    let faults = sim.fault_setup();
    let map = ShardMap::new(mesh);
    let shards_n = map.shards();
    let procs = pcfg.procs.min(shards_n);
    if procs < pcfg.procs {
        eprintln!(
            "note: --procs {} clamped to {procs} ({} shards on this mesh)",
            pcfg.procs, shards_n
        );
    }
    // worker -> owned shards (the thread pool's home assignment, so the
    // shard statistics are identical to the thread engine's).
    let owned: Vec<Vec<usize>> = (0..procs)
        .map(|w| {
            (0..shards_n)
                .filter(|&s| pool::home_of(s, shards_n, procs) == w)
                .collect()
        })
        .collect();
    // Inverse of the (shard, slot) -> edge map, for reassembling full
    // link-load vectors from per-shard slot arrays.
    let mut edge_of_slot: Vec<Vec<usize>> = map.slots.iter().map(|&n| vec![0; n]).collect();
    for e in 0..mesh.edge_count() {
        edge_of_slot[map.shard_of_edge[e] as usize][map.slot_of_edge[e] as usize] = e;
    }
    let worker_of_edge = |e: usize| pool::home_of(map.shard_of_edge[e] as usize, shards_n, procs);
    let cur_edge_of = |p: &PacketState| {
        let pos = p.pos as usize;
        let a = mesh.coord(NodeId(p.path[pos] as usize));
        let b = mesh.coord(NodeId(p.path[pos + 1] as usize));
        mesh.edge_id(&a, &b).0
    };

    let mut sp = Stepper::new(sim.rate(), faults, steps, seed, ckpt, resume);
    let nodes: Vec<Coord> = mesh.coords().collect();
    let mut alive = 0usize;
    let mut delivered_instant = 0usize;
    let mut handoffs_total = 0u64;
    let mut max_imbalance = 0u64;
    let mut arena_len = 0u64;
    let mut base_latencies: Vec<u64> = Vec::new();
    let mut latencies_acc: Vec<u64> = Vec::new();
    // Handoffs reported at step t-1, delivered with STEP t. At a step
    // boundary these are live packets owned by no worker, so captures
    // and shadows must include them.
    let mut in_transit: Vec<PacketState> = Vec::new();

    let mut shadows: Vec<Shadow> = (0..procs)
        .map(|w| Shadow {
            t0: sp.t,
            packets: Vec::new(),
            loads: owned[w].iter().map(|&s| vec![0u64; map.slots[s]]).collect(),
        })
        .collect();
    if let Some(st) = resume {
        alive = st.packets.len();
        handoffs_total = st.handoffs_total;
        max_imbalance = st.max_imbalance;
        base_latencies = st.latencies.clone();
        arena_len = st.arena_len;
        for p in &st.packets {
            shadows[worker_of_edge(cur_edge_of(p))]
                .packets
                .push(p.clone());
        }
        for (e, &load) in st.link_loads.iter().enumerate() {
            let s = map.shard_of_edge[e] as usize;
            let w = worker_of_edge(e);
            let k = owned[w].iter().position(|&o| o == s).expect("owner owns s");
            shadows[w].loads[k][map.slot_of_edge[e] as usize] = load;
        }
    }

    let mut fleet = Fleet {
        program: &pcfg.worker_program,
        args: &pcfg.worker_args,
        procs,
        timeout: pcfg.handoff_timeout,
        workers: (0..procs).map(|_| None).collect(),
        journals: vec![Vec::new(); procs],
        shadows,
    };
    for w in 0..procs {
        fleet.spawn(w, false).map_err(|e| {
            io_stop(format!(
                "cannot spawn worker {w} ({}): {e}",
                pcfg.worker_program.display()
            ))
        })?;
    }

    let mut live_by_shard = vec![0u64; shards_n];
    let mut pending: Vec<Pending> = Vec::new();
    let mut timer = PhaseTimer::idle();
    let mut last_shadow = sp.t;

    while sp.running(alive) {
        // Step boundary: decide once, gather remote state only if a
        // snapshot is actually saved (the SNAP exchange doubles as the
        // crash-shadow refresh).
        let action = sp.boundary_action();
        let state = if action.saves() {
            fleet.refresh_shadows(sp.t).map_err(io_stop)?;
            last_shadow = sp.t;
            let scalars = sp.scalars();
            let mut packets: Vec<PacketState> = in_transit.clone();
            for sh in &fleet.shadows {
                packets.extend(sh.packets.iter().cloned());
            }
            packets.sort_unstable_by_key(|p| p.id);
            let mut link_loads = vec![0u64; mesh.edge_count()];
            for (w, sh) in fleet.shadows.iter().enumerate() {
                for (k, &s) in owned[w].iter().enumerate() {
                    for (slot, &load) in sh.loads[k].iter().enumerate() {
                        link_loads[edge_of_slot[s][slot]] = load;
                    }
                }
            }
            let mut latencies: Vec<u64> =
                Vec::with_capacity(base_latencies.len() + delivered_instant + latencies_acc.len());
            latencies.extend_from_slice(&base_latencies);
            latencies.resize(latencies.len() + delivered_instant, 0);
            latencies.extend_from_slice(&latencies_acc);
            latencies.sort_unstable();
            Some(EngineState {
                t: scalars.t,
                rng: scalars.rng.state(),
                injected: scalars.injected as u64,
                inj_idx: scalars.inj_idx,
                arena_len,
                handoffs_total,
                max_imbalance,
                latencies,
                link_loads,
                packets,
                fstats: *scalars.fstats,
                obs: capture_obs(),
            })
        } else {
            if sp.t >= last_shadow + SHADOW_EVERY {
                fleet.refresh_shadows(sp.t).map_err(io_stop)?;
                last_shadow = sp.t;
            }
            None
        };
        if let Some(stop) = sp.resolve_boundary(action, state) {
            return Err(stop);
        }

        timer.start();
        sp.draw_injections(mesh, &nodes, pattern, &mut pending);
        let t = sp.t;
        // Route this step's injections (supervisor-side: each from its
        // private (seed, idx) RNG, exactly as every other engine does)
        // and assign each packet to the worker owning its first edge.
        let mut arrivals: Vec<Vec<PacketState>> = vec![Vec::new(); procs];
        for pj in &pending {
            let mut prng = route_rng_for(seed, pj.idx);
            let path = paths.path(&pj.src, &pj.dst, &mut prng);
            debug_assert!(path.is_valid(mesh), "path source produced invalid walk");
            if path.is_empty() {
                delivered_instant += 1;
                continue;
            }
            let id = arena_len;
            arena_len += 1;
            let pnodes = path.nodes();
            let e0 = mesh.edge_id(&pnodes[0], &pnodes[1]).0;
            arrivals[worker_of_edge(e0)].push(PacketState {
                id,
                inj: pj.idx,
                injected_at: t,
                arrived: t,
                rank: pj.rank,
                pos: 0,
                attempts: 0,
                backoff_until: 0,
                path: pnodes.iter().map(|c| mesh.node_id(c).0 as u64).collect(),
            });
            alive += 1;
        }
        // Deliver last step's cross-worker handoffs with this STEP.
        for p in in_transit.drain(..) {
            let w = worker_of_edge(cur_edge_of(&p));
            arrivals[w].push(p);
        }
        for (w, arr) in arrivals.iter().enumerate() {
            let line = step_line(t, arr);
            fleet.journals[w].push(line.clone());
            if let Err(e) = fleet.send(w, &line) {
                fleet
                    .revive(w, 1, &format!("step send: {e}"))
                    .map_err(io_stop)?;
            }
        }
        timer.inject_done();

        // Barrier: await every worker's DONE, resurrecting any worker
        // that dies while we wait.
        let mut max_group = 0u64;
        let mut busy = 0u64;
        let mut step_handoffs = 0u64;
        let mut delivered_step = 0u64;
        let mut dead_step = 0u64;
        for (w, owned_w) in owned.iter().enumerate() {
            let msg = loop {
                match fleet.expect(w, "DONE") {
                    Ok(msg) => break msg,
                    Err(why) => fleet.revive(w, 1, &why).map_err(io_stop)?,
                }
            };
            let done =
                parse_done(&msg.payload).map_err(|e| io_stop(format!("worker {w} DONE: {e}")))?;
            if done.t != t {
                return Err(io_stop(format!(
                    "worker {w} answered step {} during step {t}",
                    done.t
                )));
            }
            delivered_step += done.tallies.delivered;
            dead_step += done.tallies.dead;
            if let Some(fs) = sp.fstats.as_mut() {
                fs.blocked += done.tallies.blocked;
                fs.resamples += done.tallies.resamples;
                fs.drops += done.tallies.drops;
                fs.dead_letters += done.tallies.dead;
            }
            busy += done.tallies.busy;
            max_group = max_group.max(done.tallies.max_group);
            step_handoffs += done.tallies.handoffs;
            latencies_acc.extend_from_slice(&done.new_latencies);
            oblivion_obs::merge_deterministic(&done.obs_counters, &done.obs_histograms);
            if done.live.len() != owned_w.len() {
                return Err(io_stop(format!(
                    "worker {w} reported {} shards, owns {}",
                    done.live.len(),
                    owned_w.len()
                )));
            }
            for (k, &s) in owned_w.iter().enumerate() {
                live_by_shard[s] = done.live[k];
            }
            in_transit.extend(done.handoffs_out);
        }
        alive -= (delivered_step + dead_step) as usize;
        handoffs_total += step_handoffs;
        let live_max = live_by_shard.iter().copied().max().unwrap_or(0);
        let live_min = live_by_shard.iter().copied().min().unwrap_or(0);
        let imbalance = live_max - live_min;
        max_imbalance = max_imbalance.max(imbalance);
        timer.move_done();
        sp.end_step(
            alive,
            StepObs {
                max_group,
                busy,
                shard: Some((step_handoffs, imbalance)),
            },
        );
    }

    // Finale: collect link loads and shut the fleet down.
    let fin = encode_msg("FIN", &[]);
    let mut link_loads = vec![0u64; mesh.edge_count()];
    for (w, owned_w) in owned.iter().enumerate() {
        let mut tries = 0u32;
        let msg = loop {
            let res = fleet
                .send(w, &fin)
                .map_err(|e| format!("fin send: {e}"))
                .and_then(|()| fleet.expect(w, "FINOK"));
            match res {
                Ok(msg) => break msg,
                Err(why) => {
                    tries += 1;
                    if tries > 2 {
                        return Err(io_stop(why));
                    }
                    fleet.revive(w, 0, &why).map_err(io_stop)?;
                }
            }
        };
        let mut r = ByteReader::new(&msg.payload);
        let loads = get_loads(&mut r)
            .and_then(|l| r.finish("finok").map(|()| l))
            .map_err(|e| io_stop(format!("worker {w} FINOK: {e}")))?;
        if loads.len() != owned_w.len() {
            return Err(io_stop(format!(
                "worker {w} FINOK covers {} shards, owns {}",
                loads.len(),
                owned_w.len()
            )));
        }
        for (k, &s) in owned_w.iter().enumerate() {
            for (slot, &load) in loads[k].iter().enumerate() {
                link_loads[edge_of_slot[s][slot]] = load;
            }
        }
    }
    drop(fleet);

    sp.finish(Some(ShardFinale {
        shards: shards_n,
        steals: 0,
    }));

    let mut latencies: Vec<u64> = base_latencies;
    latencies.resize(latencies.len() + delivered_instant, 0);
    latencies.append(&mut latencies_acc);
    debug_assert!(in_transit.is_empty(), "drained run left packets in transit");
    Ok(OnlineResult::assemble(
        mesh,
        steps,
        sp.injected,
        latencies,
        alive,
        link_loads,
        Some(ShardSummary {
            shards: shards_n,
            handoffs: handoffs_total,
            max_imbalance,
        }),
        sp.fstats,
    ))
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

/// Writes one protocol line to stdout under the shared lock (the
/// heartbeat thread interleaves whole lines, never bytes).
fn write_line(guard: &Mutex<()>, line: &str) -> io::Result<()> {
    let _g = guard.lock().unwrap();
    let mut out = io::stdout();
    out.write_all(line.as_bytes())?;
    out.flush()
}

fn dummy_slot(arena: &mut Arena, mesh: &Mesh) {
    arena
        .path
        .push(Mutex::new(Path::trivial(mesh.coord(NodeId(0)))));
    arena.injected_at.push(0);
    arena.rank.push(0);
    arena.inj.push(0);
    arena.pos.push(AtomicUsize::new(0));
    arena.arrived.push(AtomicU64::new(0));
    arena.cur_edge.push(AtomicUsize::new(0));
    arena.attempts.push(AtomicU32::new(0));
    arena.backoff.push(AtomicU64::new(0));
}

/// Installs an arriving packet into the arena at its global id (padding
/// with inert dummies so ids align with every other process), returning
/// its current edge.
fn install(arena: &mut Arena, mesh: &Mesh, p: &PacketState) -> usize {
    let path = p.to_path(mesh);
    debug_assert!(path.is_valid(mesh), "supervisor sent an invalid path");
    let pos = p.pos as usize;
    let pnodes = path.nodes();
    let e = mesh.edge_id(&pnodes[pos], &pnodes[pos + 1]).0;
    let id = p.id as usize;
    while arena.path.len() <= id {
        dummy_slot(arena, mesh);
    }
    arena.path[id] = Mutex::new(path);
    arena.injected_at[id] = p.injected_at;
    arena.rank[id] = p.rank;
    arena.inj[id] = p.inj;
    arena.pos[id].store(pos, Ordering::Relaxed);
    arena.arrived[id].store(p.arrived, Ordering::Relaxed);
    arena.cur_edge[id].store(e, Ordering::Relaxed);
    arena.attempts[id].store(p.attempts, Ordering::Relaxed);
    arena.backoff[id].store(p.backoff_until, Ordering::Relaxed);
    e
}

/// Reads packet `id` back out of the arena (for handoffs and snapshots)
/// — the same field mapping the thread engine's capture uses.
fn extract(arena: &Arena, mesh: &Mesh, id: usize) -> PacketState {
    let path = arena.path[id].lock().unwrap();
    PacketState {
        id: id as u64,
        inj: arena.inj[id],
        injected_at: arena.injected_at[id],
        arrived: arena.arrived[id].load(Ordering::Relaxed),
        rank: arena.rank[id],
        pos: arena.pos[id].load(Ordering::Relaxed) as u64,
        attempts: arena.attempts[id].load(Ordering::Relaxed),
        backoff_until: arena.backoff[id].load(Ordering::Relaxed),
        path: path
            .nodes()
            .iter()
            .map(|c| mesh.node_id(c).0 as u64)
            .collect(),
    }
}

/// Serves one worker process: reads supervisor messages on stdin,
/// steps its owned shards, and writes replies (and heartbeats) on
/// stdout. Returns when the supervisor says `FIN` or closes the pipe.
pub fn worker_serve(cfg: &WorkerCfg<'_>, paths: &(dyn PathSource + Sync)) -> Result<(), String> {
    let mesh = cfg.mesh;
    let map = ShardMap::new(mesh);
    let shards_n = map.shards();
    if cfg.worker >= cfg.procs {
        return Err(format!(
            "--worker {} out of range for --procs {}",
            cfg.worker, cfg.procs
        ));
    }
    let owned: Vec<usize> = (0..shards_n)
        .filter(|&s| pool::home_of(s, shards_n, cfg.procs) == cfg.worker)
        .collect();
    let is_owned: Vec<bool> = {
        let mut v = vec![false; shards_n];
        for &s in &owned {
            v[s] = true;
        }
        v
    };
    let crash_at: Option<u64> = std::env::var(CRASH_ENV).ok().and_then(|v| {
        let (w, t) = v.split_once(':')?;
        if w.parse::<usize>().ok()? != cfg.worker {
            return None;
        }
        t.parse::<u64>().ok()
    });

    // Heartbeats: a detached thread writes HB lines so the supervisor
    // can tell a slow step from a dead process.
    let out_guard = Arc::new(Mutex::new(()));
    let stop = Arc::new(AtomicBool::new(false));
    {
        let out_guard = Arc::clone(&out_guard);
        let stop = Arc::clone(&stop);
        let period = cfg.heartbeat;
        let hb = encode_msg("HB", &[]);
        std::thread::spawn(move || loop {
            std::thread::sleep(period);
            if stop.load(Ordering::Relaxed) || write_line(&out_guard, &hb).is_err() {
                return;
            }
        });
    }

    let mut arena = Arena::default();
    let mut shards: Vec<Mutex<ShardState>> = map
        .slots
        .iter()
        .map(|&slots| Mutex::new(ShardState::new(slots)))
        .collect();
    let mut inboxes: Vec<[Mutex<Vec<usize>>; 2]> = (0..shards_n)
        .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
        .collect();

    let mut frames = FrameBuf::new(MAX_MSG_LINE);
    let mut stdin = io::stdin().lock();
    let mut buf = [0u8; 1 << 16];
    'serve: loop {
        let msg = loop {
            if let Some(framed) = frames.next_line() {
                match framed {
                    Framed::Line(line) => {
                        break decode_msg(&line).map_err(|e| format!("bad message: {e:?}"))?
                    }
                    Framed::Bad(why) => return Err(format!("bad frame: {why}")),
                }
            }
            let n = std::io::Read::read(&mut stdin, &mut buf).map_err(|e| format!("stdin: {e}"))?;
            if n == 0 {
                // Supervisor is gone; exit quietly.
                break 'serve;
            }
            frames.extend(&buf[..n]);
        };
        match msg.tag.as_str() {
            "RESTORE" => {
                let mut r = ByteReader::new(&msg.payload);
                let (t0, packets, loads) = (|| -> Result<SnapParts, CkptError> {
                    let t0 = r.u64("restore.t0")?;
                    let packets = get_packets(&mut r)?;
                    let loads = get_loads(&mut r)?;
                    r.finish("restore")?;
                    Ok((t0, packets, loads))
                })()
                .map_err(|e| format!("RESTORE: {e}"))?;
                if loads.len() != owned.len() {
                    return Err(format!(
                        "RESTORE covers {} shards, this worker owns {}",
                        loads.len(),
                        owned.len()
                    ));
                }
                arena = Arena::default();
                shards = map
                    .slots
                    .iter()
                    .map(|&slots| Mutex::new(ShardState::new(slots)))
                    .collect();
                inboxes = (0..shards_n)
                    .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                    .collect();
                let _ = t0; // parity is re-established by the next STEP's t
                for p in &packets {
                    let e = install(&mut arena, mesh, p);
                    let s = map.shard_of_edge[e] as usize;
                    if !is_owned[s] {
                        return Err(format!("RESTORE packet {} belongs to shard {s}", p.id));
                    }
                    shards[s].lock().unwrap().active.push(p.id as usize);
                }
                for (k, &s) in owned.iter().enumerate() {
                    let mut st = shards[s].lock().unwrap();
                    if loads[k].len() != st.loads.len() {
                        return Err(format!("RESTORE loads for shard {s} have wrong length"));
                    }
                    st.loads.copy_from_slice(&loads[k]);
                    st.live = st.active.len();
                }
            }
            "STEP" => {
                let mut r = ByteReader::new(&msg.payload);
                let (t, arrivals) = (|| -> Result<(u64, Vec<PacketState>), CkptError> {
                    let t = r.u64("step.t")?;
                    let packets = get_packets(&mut r)?;
                    r.finish("step")?;
                    Ok((t, packets))
                })()
                .map_err(|e| format!("STEP: {e}"))?;
                if crash_at == Some(t) {
                    // Deterministic stand-in for `kill -9` at this step.
                    std::process::abort();
                }
                for p in &arrivals {
                    let e = install(&mut arena, mesh, p);
                    let s = map.shard_of_edge[e] as usize;
                    debug_assert!(is_owned[s], "supervisor misrouted packet {}", p.id);
                    inboxes[s][(t % 2) as usize]
                        .lock()
                        .unwrap()
                        .push(p.id as usize);
                }
                for &s in &owned {
                    step_shard(
                        &arena, &map, &shards[s], &inboxes, mesh, paths, cfg.policy, cfg.faults, s,
                        t,
                    );
                }
                let mut done = Done {
                    t,
                    tallies: DoneTallies::default(),
                    new_latencies: Vec::new(),
                    live: Vec::with_capacity(owned.len()),
                    handoffs_out: Vec::new(),
                    obs_counters: Vec::new(),
                    obs_histograms: Vec::new(),
                };
                for &s in &owned {
                    let mut st = shards[s].lock().unwrap();
                    done.tallies.delivered += st.step_delivered;
                    done.tallies.dead += st.step_dead;
                    done.tallies.blocked += st.step_blocked;
                    done.tallies.resamples += st.step_resamples;
                    done.tallies.drops += st.step_drops;
                    done.tallies.busy += u64::from(st.step_busy);
                    done.tallies.max_group =
                        done.tallies.max_group.max(u64::from(st.step_max_group));
                    done.tallies.handoffs += st.step_handoffs;
                    done.new_latencies.append(&mut st.latencies);
                    done.live.push(st.live as u64);
                }
                // Deterministic obs emitted while stepping (router
                // resample instrumentation) belong in the supervisor's
                // registry; drain them so each DONE carries a delta.
                let (oc, oh) = oblivion_obs::take_deterministic();
                done.obs_counters = oc;
                done.obs_histograms = oh;
                // Handoffs into shards owned by other workers route via
                // the supervisor: full packet state out, arena slot left
                // behind as an inert dummy.
                for (s, inbox) in inboxes.iter().enumerate() {
                    if is_owned[s] {
                        continue;
                    }
                    let mut ib = inbox[((t + 1) % 2) as usize].lock().unwrap();
                    for id in ib.drain(..) {
                        done.handoffs_out.push(extract(&arena, mesh, id));
                    }
                }
                write_line(&out_guard, &done_line(&done)).map_err(|e| format!("stdout: {e}"))?;
            }
            "SNAP" => {
                let mut r = ByteReader::new(&msg.payload);
                let t = r
                    .u64("snap.t")
                    .and_then(|t| r.finish("snap").map(|()| t))
                    .map_err(|e| format!("SNAP: {e}"))?;
                let mut ids: Vec<usize> = Vec::new();
                for &s in &owned {
                    let st = shards[s].lock().unwrap();
                    ids.extend(st.active.iter().copied().filter(|&i| i != GONE));
                    drop(st);
                    ids.extend(inboxes[s][(t % 2) as usize].lock().unwrap().iter().copied());
                }
                ids.sort_unstable();
                let packets: Vec<PacketState> =
                    ids.iter().map(|&i| extract(&arena, mesh, i)).collect();
                let loads: Vec<Vec<u64>> = owned
                    .iter()
                    .map(|&s| shards[s].lock().unwrap().loads.clone())
                    .collect();
                let mut w = ByteWriter::new();
                w.u64(t);
                put_packets(&mut w, &packets);
                put_loads(&mut w, &loads);
                write_line(&out_guard, &encode_msg("SNAPOK", &w.into_bytes()))
                    .map_err(|e| format!("stdout: {e}"))?;
            }
            "FIN" => {
                let loads: Vec<Vec<u64>> = owned
                    .iter()
                    .map(|&s| shards[s].lock().unwrap().loads.clone())
                    .collect();
                let mut w = ByteWriter::new();
                put_loads(&mut w, &loads);
                write_line(&out_guard, &encode_msg("FINOK", &w.into_bytes()))
                    .map_err(|e| format!("stdout: {e}"))?;
                break 'serve;
            }
            other => return Err(format!("unknown supervisor message `{other}`")),
        }
    }
    stop.store(true, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_payload_round_trips() {
        let d = Done {
            t: 17,
            tallies: DoneTallies {
                delivered: 3,
                dead: 1,
                blocked: 4,
                resamples: 1,
                drops: 5,
                busy: 9,
                max_group: 2,
                handoffs: 6,
            },
            new_latencies: vec![5, 3, 8],
            live: vec![10, 0],
            handoffs_out: vec![PacketState {
                id: 7,
                inj: 2,
                injected_at: 11,
                arrived: 17,
                rank: 99,
                pos: 1,
                attempts: 2,
                backoff_until: 19,
                path: vec![0, 1, 2, 3],
            }],
            obs_counters: vec![("bridge_tree_hits".to_string(), 4)],
            obs_histograms: vec![("access_height_climbed".to_string(), {
                let mut h = oblivion_obs::Histogram::new();
                h.record(3);
                h.record(5);
                h
            })],
        };
        let line = done_line(&d);
        let msg = decode_msg(line.trim_end()).expect("valid line");
        assert_eq!(msg.tag, "DONE");
        let back = parse_done(&msg.payload).expect("valid payload");
        assert_eq!(back.t, 17);
        assert_eq!(back.tallies.drops, 5);
        assert_eq!(back.new_latencies, vec![5, 3, 8]);
        assert_eq!(back.live, vec![10, 0]);
        assert_eq!(back.handoffs_out.len(), 1);
        assert_eq!(back.handoffs_out[0].path, vec![0, 1, 2, 3]);
        assert_eq!(back.obs_counters, vec![("bridge_tree_hits".to_string(), 4)]);
        assert_eq!(back.obs_histograms.len(), 1);
        assert_eq!(back.obs_histograms[0].0, "access_height_climbed");
        assert_eq!(back.obs_histograms[0].1.count, 2);
        assert_eq!(back.obs_histograms[0].1.sum, 8);
    }

    #[test]
    fn step_and_restore_lines_round_trip() {
        let p = PacketState {
            id: 0,
            inj: 0,
            injected_at: 1,
            arrived: 1,
            rank: 42,
            pos: 0,
            attempts: 0,
            backoff_until: 0,
            path: vec![0, 1],
        };
        let line = step_line(3, std::slice::from_ref(&p));
        let msg = decode_msg(line.trim_end()).expect("valid");
        assert_eq!(msg.tag, "STEP");
        let mut r = ByteReader::new(&msg.payload);
        assert_eq!(r.u64("t").unwrap(), 3);
        let pkts = get_packets(&mut r).unwrap();
        assert_eq!(pkts, vec![p.clone()]);

        let line = restore_line(8, std::slice::from_ref(&p), &[vec![1, 2], vec![]]);
        let msg = decode_msg(line.trim_end()).expect("valid");
        assert_eq!(msg.tag, "RESTORE");
        let mut r = ByteReader::new(&msg.payload);
        assert_eq!(r.u64("t0").unwrap(), 8);
        assert_eq!(get_packets(&mut r).unwrap(), vec![p]);
        assert_eq!(get_loads(&mut r).unwrap(), vec![vec![1, 2], vec![]]);
        r.finish("restore").unwrap();
    }

    #[test]
    fn home_assignment_partitions_shards() {
        // Every shard is owned by exactly one worker for any proc count.
        for shards_n in [1usize, 2, 5, 16] {
            for procs in 1..=shards_n {
                let owners: Vec<usize> = (0..shards_n)
                    .map(|s| pool::home_of(s, shards_n, procs))
                    .collect();
                for &owner in &owners {
                    assert!(owner < procs);
                }
                // Owners are monotone bands, so each worker's set is
                // contiguous and the union is everything.
                for w in owners.windows(2) {
                    assert!(w[0] <= w[1]);
                }
            }
        }
    }
}
