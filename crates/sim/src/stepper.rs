//! The shared step protocol of every online engine.
//!
//! `online.rs` (sequential), `sharded.rs` (thread pool), and `procs.rs`
//! (process pool) used to each hand-thread the same per-step ritual —
//! termination test, checkpoint boundary, injection draws with fault
//! gating, fault-recovery clocks, per-step observability, finale
//! counters — three divergent copies of one protocol, and a standing
//! source of drift bugs. [`Stepper`] is that protocol, written once.
//!
//! The engines remain the pluggable *phase drivers*: each still owns its
//! movement/contention machinery (a flight list, a sharded arena, a
//! fleet of worker processes), but every decision that defines the
//! simulation's deterministic outcome — when the run ends, what the main
//! RNG draws, how a blocked packet's retry clock advances, which obs
//! values a step emits — flows through this module. A policy change here
//! lands in all engines at once, and the differential suites hold them
//! byte-identical.
//!
//! Step shape (driven by the engine's loop):
//!
//! ```text
//! while stepper.running(alive) {
//!     stepper.boundary(capture)?;        // checkpoint / stop protocol
//!     stepper.draw_injections(.., &mut pending);
//!     /* engine routes `pending`, moves packets, tallies a StepObs */
//!     stepper.end_step(alive, obs);      // per-step obs + t advance
//! }
//! stepper.finish(shard_finale);          // finale counters
//! ```

use crate::checkpoint::{BoundaryAction, CheckpointCfg, Driver, EngineState, StopReason};
use crate::online::{FaultStats, Faults, TrafficPattern};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet drawn for injection this step, awaiting routing. Routing is
/// deliberately *not* part of the draw: each packet's path comes from a
/// private RNG derived from `(seed, idx)`, so engines may route pendings
/// inline, on a thread pool, or in another process without touching the
/// main RNG stream.
pub(crate) struct Pending {
    /// Injection node.
    pub(crate) src: Coord,
    /// Destination drawn from the traffic pattern.
    pub(crate) dst: Coord,
    /// Random scheduling rank drawn at injection.
    pub(crate) rank: u64,
    /// Global injection index — seeds the packet's private route RNG and
    /// identifies it to the fault plan.
    pub(crate) idx: u64,
}

/// What a packet whose progress was interrupted by a fault does next.
/// Pure function of `(policy, budget, attempts so far, backoff deadline,
/// now)` — the single copy every engine's recovery behaviour flows
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultDecision {
    /// Still inside a backoff window: do nothing this step.
    Hold,
    /// Consume one budget unit and sleep until `until`.
    Backoff { attempts: u32, until: u64 },
    /// Consume one budget unit and redraw the path (resample policy).
    Resample { attempts: u32 },
    /// Budget exhausted: abandon the packet.
    DeadLetter,
}

fn fault_decision(
    recovery: oblivion_faults::RecoveryPolicy,
    retry_budget: u32,
    attempts: u32,
    backoff_until: u64,
    now: u64,
) -> FaultDecision {
    use oblivion_faults::RecoveryPolicy;
    if now < backoff_until {
        return FaultDecision::Hold;
    }
    let attempts = attempts + 1;
    if attempts > retry_budget {
        return FaultDecision::DeadLetter;
    }
    match recovery {
        RecoveryPolicy::Wait => FaultDecision::Backoff {
            attempts,
            // Bounded exponential backoff: 1, 2, 4, … capped at 64 steps.
            until: now + (1u64 << (attempts - 1).min(6)),
        },
        RecoveryPolicy::DropAfterBudget => FaultDecision::Backoff {
            attempts,
            until: now + 1,
        },
        RecoveryPolicy::Resample => FaultDecision::Resample { attempts },
    }
}

/// A packet's MTTR/MTBF fault-recovery clock: budget consumed so far and
/// the step before which no further recovery decision is made. The
/// sequential engine embeds one per flight; the sharded engine round-trips
/// it through its arena atomics; the process workers carry it in their
/// packet records — but the transition rules live only here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FaultClock {
    /// Fault-recovery budget units consumed so far.
    pub(crate) attempts: u32,
    /// Step before which recovery makes no further decision.
    pub(crate) backoff_until: u64,
}

/// The engine-visible outcome of an adverse event (blocked by a down
/// link, or a dropped traversal) after the clock has advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Adverse {
    /// The packet stays put this step (inside, or newly entering, a
    /// backoff window). The clock has already been updated.
    Hold,
    /// Budget exhausted: the engine dead-letters the packet.
    DeadLetter,
    /// The engine redraws the packet's path from the plan's derived RNG
    /// for `(inj, attempts)`, then calls [`FaultClock::resampled`].
    Resample {
        /// Budget units consumed including this event.
        attempts: u32,
    },
}

impl FaultClock {
    /// Restores a clock from its checkpointed fields.
    pub(crate) fn restore(attempts: u32, backoff_until: u64) -> Self {
        Self {
            attempts,
            backoff_until,
        }
    }

    /// Advances the clock for an adverse event at step `now` and returns
    /// what the engine does with the packet.
    pub(crate) fn adverse(&mut self, fx: &Faults<'_>, now: u64) -> Adverse {
        match fault_decision(
            fx.recovery,
            fx.retry_budget,
            self.attempts,
            self.backoff_until,
            now,
        ) {
            FaultDecision::Hold => Adverse::Hold,
            FaultDecision::Backoff { attempts, until } => {
                self.attempts = attempts;
                self.backoff_until = until;
                Adverse::Hold
            }
            FaultDecision::DeadLetter => Adverse::DeadLetter,
            FaultDecision::Resample { attempts } => Adverse::Resample { attempts },
        }
    }

    /// A completed hop clears the recovery state.
    pub(crate) fn progressed(&mut self) {
        self.attempts = 0;
        self.backoff_until = 0;
    }

    /// Records a resample performed at step `now` with `attempts` budget
    /// units consumed; the packet may not act again before `now + 1`.
    pub(crate) fn resampled(&mut self, attempts: u32, now: u64) {
        self.attempts = attempts;
        self.backoff_until = now + 1;
    }
}

/// Scalar state exposed to an engine's snapshot capture at a step
/// boundary — the stepper-owned half of an [`EngineState`].
pub(crate) struct BoundaryScalars<'s> {
    /// Next step to execute.
    pub(crate) t: u64,
    /// The main injection RNG.
    pub(crate) rng: &'s StdRng,
    /// Packets injected so far.
    pub(crate) injected: usize,
    /// Next global injection index.
    pub(crate) inj_idx: u64,
    /// Fault tallies so far.
    pub(crate) fstats: &'s Option<FaultStats>,
}

/// Deterministic per-step observability values an engine tallies during
/// its movement phase and hands to [`Stepper::end_step`].
pub(crate) struct StepObs {
    /// Largest per-link contender group this step.
    pub(crate) max_group: u64,
    /// Links with at least one contender this step.
    pub(crate) busy: u64,
    /// `Some((handoffs, imbalance))` for the shard-partitioned engines;
    /// `None` for the sequential engine.
    pub(crate) shard: Option<(u64, u64)>,
}

/// Finale values of a shard-partitioned run, for [`Stepper::finish`].
pub(crate) struct ShardFinale {
    /// Number of spatial shards.
    pub(crate) shards: usize,
    /// Work-stealing events (wall-clock side; not deterministic).
    pub(crate) steals: u64,
}

/// Wall-clock per-step phase timers (obs "runtime" side — never part of
/// the determinism contract). The timer is gated on observability so the
/// uninstrumented hot path pays one relaxed load.
pub(crate) struct PhaseTimer {
    inject: Option<std::time::Instant>,
    moving: Option<std::time::Instant>,
}

impl PhaseTimer {
    /// A timer with no phase running (before the first step).
    pub(crate) fn idle() -> Self {
        Self {
            inject: None,
            moving: None,
        }
    }

    /// Starts timing the injection phase of a step.
    pub(crate) fn start(&mut self) {
        self.inject = oblivion_obs::is_enabled().then(std::time::Instant::now);
        self.moving = None;
    }

    /// Injection (draw + routing) done: record it, start the move phase.
    pub(crate) fn inject_done(&mut self) {
        if let Some(started) = self.inject.take() {
            oblivion_obs::record_runtime(
                "online_phase_inject_us",
                started.elapsed().as_micros() as u64,
            );
            self.moving = Some(std::time::Instant::now());
        }
    }

    /// Movement phase done: record it.
    pub(crate) fn move_done(&mut self) {
        if let Some(started) = self.moving.take() {
            oblivion_obs::record_runtime(
                "online_phase_move_us",
                started.elapsed().as_micros() as u64,
            );
        }
    }
}

/// The unified step protocol: owns the simulation clock, the main
/// injection RNG, the injection cursor, the fault tallies, and the
/// checkpoint driver. One per run, held by the engine's coordinator.
pub(crate) struct Stepper<'fx, 'st, 'cfg> {
    /// Next step to execute.
    pub(crate) t: u64,
    /// Measurement window (no injections at `t >= steps`).
    pub(crate) steps: u64,
    /// Hard stop (drain bound): `2 * steps`.
    pub(crate) horizon: u64,
    /// The main injection RNG — the only RNG whose draw order matters.
    pub(crate) rng: StdRng,
    /// Packets injected so far (excluding self-addressed no-ops).
    pub(crate) injected: usize,
    /// Next global injection index.
    pub(crate) inj_idx: u64,
    /// Fault tallies; `Some` iff a fault plan is attached.
    pub(crate) fstats: Option<FaultStats>,
    /// The attached fault setup, if any.
    pub(crate) faults: Option<Faults<'fx>>,
    rate: f64,
    driver: Option<Driver<'st, 'cfg>>,
}

impl<'fx, 'st, 'cfg> Stepper<'fx, 'st, 'cfg> {
    /// Builds the stepper for a run, restoring the stepper-owned scalars
    /// (clock, RNG, injection cursor, fault tallies, obs registry) from
    /// `resume` when present. Engine-owned state (packets, latencies,
    /// link loads) is the engine's to restore.
    pub(crate) fn new(
        rate: f64,
        faults: Option<Faults<'fx>>,
        steps: u64,
        seed: u64,
        ckpt: Option<&'cfg CheckpointCfg<'st>>,
        resume: Option<&EngineState>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0u64;
        let mut injected = 0usize;
        let mut inj_idx = 0u64;
        let mut fstats = faults.map(|fx| FaultStats::for_plan(fx.plan));
        if let Some(st) = resume {
            st.restore_obs();
            rng = StdRng::from_state(st.rng);
            t = st.t;
            injected = st.injected as usize;
            inj_idx = st.inj_idx;
            if fstats.is_some() {
                if let Some(fs) = st.fstats {
                    fstats = Some(fs);
                }
            }
        }
        Self {
            t,
            steps,
            horizon: 2 * steps,
            rng,
            injected,
            inj_idx,
            fstats,
            faults,
            rate,
            driver: ckpt.map(Driver::new),
        }
    }

    /// The loop condition: inside the horizon, and either still injecting
    /// or still carrying live packets.
    pub(crate) fn running(&self, alive: usize) -> bool {
        self.t < self.horizon && (self.t < self.steps || alive > 0)
    }

    /// Decides the checkpoint boundary action for the coming step
    /// (latching the shutdown-signal read, so a later
    /// [`Stepper::resolve_boundary`] commits exactly what was decided).
    /// `BoundaryAction::Run` when no checkpointing is configured.
    pub(crate) fn boundary_action(&self) -> BoundaryAction {
        self.driver
            .as_ref()
            .map_or(BoundaryAction::Run, |d| d.decide(self.t))
    }

    /// The stepper-owned half of an [`EngineState`], for engines that
    /// capture a snapshot themselves (after [`Stepper::boundary_action`]
    /// said one is needed).
    pub(crate) fn scalars(&self) -> BoundaryScalars<'_> {
        BoundaryScalars {
            t: self.t,
            rng: &self.rng,
            injected: self.injected,
            inj_idx: self.inj_idx,
            fstats: &self.fstats,
        }
    }

    /// Commits a decided boundary action; `state` must be `Some` iff
    /// `action.saves()`. Returns `Some` when the engine must stop and
    /// propagate the reason.
    pub(crate) fn resolve_boundary(
        &mut self,
        action: BoundaryAction,
        state: Option<EngineState>,
    ) -> Option<StopReason> {
        let t = self.t;
        self.driver.as_mut().and_then(|d| d.act(t, action, state))
    }

    /// Runs the checkpoint step-boundary protocol (periodic save,
    /// graceful shutdown, the `stop_at` kill hook). `capture` is invoked
    /// only when a snapshot is actually written. Returns `Some` when the
    /// engine must stop and propagate the reason.
    pub(crate) fn boundary(
        &mut self,
        capture: impl FnOnce(&BoundaryScalars<'_>) -> EngineState,
    ) -> Option<StopReason> {
        let action = self.boundary_action();
        let state = action.saves().then(|| capture(&self.scalars()));
        self.resolve_boundary(action, state)
    }

    /// Draws this step's injections from the main RNG into `out` (cleared
    /// first), applying the fault gates in their canonical order: a dead
    /// source injects nothing (before any state changes, so the RNG
    /// stream matches the no-fault run); a packet addressed to a dead
    /// node is dead-lettered at injection but still counts as injected
    /// and consumes its index. No draws happen outside the measurement
    /// window.
    pub(crate) fn draw_injections(
        &mut self,
        mesh: &Mesh,
        nodes: &[Coord],
        pattern: &dyn TrafficPattern,
        out: &mut Vec<Pending>,
    ) {
        out.clear();
        if self.t >= self.steps {
            return;
        }
        for src in nodes {
            if self.rng.gen_bool(self.rate) {
                let dst = pattern.destination(src, &mut self.rng);
                if dst == *src {
                    continue;
                }
                if let Some(fx) = &self.faults {
                    if fx.plan.node_down(mesh.node_id(src)) {
                        self.fstats.as_mut().unwrap().src_down_skips += 1;
                        continue;
                    }
                }
                self.injected += 1;
                let rank: u64 = self.rng.gen();
                let idx = self.inj_idx;
                self.inj_idx += 1;
                if let Some(fx) = &self.faults {
                    if fx.plan.node_down(mesh.node_id(&dst)) {
                        let fs = self.fstats.as_mut().unwrap();
                        fs.dead_letters += 1;
                        fs.dead_on_injection += 1;
                        continue;
                    }
                }
                out.push(Pending {
                    src: *src,
                    dst,
                    rank,
                    idx,
                });
            }
        }
    }

    /// Emits the step's deterministic observability and advances the
    /// clock. `alive` is the in-flight count *after* the step's
    /// movement phase.
    pub(crate) fn end_step(&mut self, alive: usize, obs: StepObs) {
        if oblivion_obs::is_enabled() {
            oblivion_obs::counter_add("online_steps", 1);
            oblivion_obs::record("queue_len_per_step", obs.max_group);
            oblivion_obs::record("busy_links_per_step", obs.busy);
            if let Some((handoffs, imbalance)) = obs.shard {
                oblivion_obs::counter_add("online_shard_handoffs", handoffs);
                oblivion_obs::record("shard_imbalance_per_step", imbalance);
            }
            // End-of-step in-flight count: deterministic, so it lives on
            // the gauge side and must match across engines step for step.
            oblivion_obs::gauge_set("sim_in_flight", alive as i64);
        }
        self.t += 1;
    }

    /// Emits the run's finale counters (shard totals for the partitioned
    /// engines, fault totals for faulted runs).
    pub(crate) fn finish(&self, shard: Option<ShardFinale>) {
        if !oblivion_obs::is_enabled() {
            return;
        }
        if let Some(sf) = shard {
            oblivion_obs::counter_add("online_shards", sf.shards as u64);
            oblivion_obs::runtime_counter_add("online_pool_steals", sf.steals);
        }
        if let Some(fs) = &self.fstats {
            oblivion_obs::counter_add("online_fault_blocked", fs.blocked);
            oblivion_obs::counter_add("online_fault_resamples", fs.resamples);
            oblivion_obs::counter_add("online_fault_drops", fs.drops);
            oblivion_obs::counter_add("online_dead_letters", fs.dead_letters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_faults::RecoveryPolicy;

    #[test]
    fn clock_backoff_is_capped_exponential() {
        // attempts 1..: 1, 2, 4, ... capped at 64 steps of backoff.
        let mut until = Vec::new();
        let mut attempts = 0;
        for now in [10u64, 100, 200, 300, 400, 500, 600, 700, 800] {
            match fault_decision(RecoveryPolicy::Wait, 100, attempts, 0, now) {
                FaultDecision::Backoff {
                    attempts: a,
                    until: u,
                } => {
                    attempts = a;
                    until.push(u - now);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(until, vec![1, 2, 4, 8, 16, 32, 64, 64, 64]);
    }

    #[test]
    fn clock_holds_inside_backoff_window() {
        let mut clock = FaultClock::restore(3, 50);
        let fx_plan = oblivion_faults::FaultPlan::new(
            &oblivion_mesh::Mesh::new_mesh(&[2, 2]),
            &oblivion_faults::FaultConfig::default(),
            1,
            10,
        );
        let fx = Faults {
            plan: &fx_plan,
            recovery: RecoveryPolicy::Wait,
            retry_budget: 10,
        };
        assert_eq!(clock.adverse(&fx, 49), Adverse::Hold);
        assert_eq!(
            clock,
            FaultClock::restore(3, 50),
            "hold leaves clock untouched"
        );
        assert_eq!(clock.adverse(&fx, 50), Adverse::Hold);
        assert_eq!(clock.attempts, 4, "past the window: budget consumed");
        assert!(clock.backoff_until > 50);
        clock.progressed();
        assert_eq!(clock, FaultClock::default());
    }

    #[test]
    fn clock_dead_letters_past_budget() {
        let fx_plan = oblivion_faults::FaultPlan::new(
            &oblivion_mesh::Mesh::new_mesh(&[2, 2]),
            &oblivion_faults::FaultConfig::default(),
            1,
            10,
        );
        let fx = Faults {
            plan: &fx_plan,
            recovery: RecoveryPolicy::Resample,
            retry_budget: 2,
        };
        let mut clock = FaultClock::default();
        assert_eq!(clock.adverse(&fx, 0), Adverse::Resample { attempts: 1 });
        clock.resampled(1, 0);
        assert_eq!(clock.backoff_until, 1);
        assert_eq!(clock.adverse(&fx, 1), Adverse::Resample { attempts: 2 });
        clock.resampled(2, 1);
        assert_eq!(clock.adverse(&fx, 2), Adverse::DeadLetter);
    }
}
