//! Deterministic sharded parallel online simulation.
//!
//! The mesh's links are partitioned into **spatial shards** — contiguous
//! bands along axis 0, a pure function of the mesh, never of the thread
//! count — and every simulation step runs as a deterministic two-phase
//! protocol on the hand-rolled scoped pool of [`crate::pool`]:
//!
//! 1. **Route** (parallel): packets injected this step select their
//!    oblivious paths, each from a private RNG derived from
//!    `(seed, injection index)` — the same SplitMix64 derivation as
//!    `oblivion_core::route_all_parallel`, so the paths are a pure
//!    function of the inputs.
//! 2. **Contend + commit** (parallel, per shard): every shard resolves
//!    link contention for the packets it owns against an immutable
//!    snapshot of the fleet, then commits its winners. A packet is owned
//!    by exactly one shard (the shard of the link it waits on), and a
//!    shard's winners are packets it owns, so commits are disjoint by
//!    construction. Cross-shard handoffs land in the destination shard's
//!    parity-buffered inbox and are drained at the start of the *next*
//!    step, in whatever order shards happened to finish — harmless,
//!    because winner selection per link uses a totally ordered key
//!    (policy priority, then packet id) and every reported metric is an
//!    order-free aggregate.
//!
//! The result is byte-for-byte identical to [`OnlineSim::run`] for any
//! thread count: the pool decides *who* computes, never *what*.

use crate::checkpoint::{capture_obs, CheckpointCfg, EngineState, PacketState, StopReason};
use crate::online::{
    policy_key, route_rng_for, Faults, OnlineResult, OnlineSim, PathSource, ShardSummary,
    TrafficPattern,
};
use crate::pool;
use crate::stepper::{
    Adverse, BoundaryScalars, FaultClock, Pending, PhaseTimer, ShardFinale, StepObs, Stepper,
};
use oblivion_mesh::{Coord, EdgeId, Mesh, Path};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// Maximum number of spatial shards (bands along axis 0).
pub const MAX_SHARDS: usize = 16;

/// A spatial partition of a mesh's links into contiguous axis-0 bands.
///
/// Depends only on the mesh — the same map serves any thread count, so
/// per-shard statistics (handoffs, imbalance) are deterministic.
pub struct ShardMap {
    shards: usize,
    /// Shard of each edge, indexed by `EdgeId`.
    pub(crate) shard_of_edge: Vec<u32>,
    /// Dense slot of each edge within its shard, indexed by `EdgeId`.
    pub(crate) slot_of_edge: Vec<u32>,
    /// Edges per shard.
    pub(crate) slots: Vec<usize>,
}

impl ShardMap {
    /// Builds the shard map for a mesh: `min(side(0), MAX_SHARDS)` bands,
    /// each edge assigned by the axis-0 coordinate of its lower endpoint.
    pub fn new(mesh: &Mesh) -> Self {
        let side = u64::from(mesh.side(0).max(1));
        let shards = (side as usize).min(MAX_SHARDS);
        let ec = mesh.edge_count();
        let mut shard_of_edge = vec![0u32; ec];
        let mut slot_of_edge = vec![0u32; ec];
        let mut slots = vec![0usize; shards];
        for e in 0..ec {
            let (a, b) = mesh.edge_endpoints(EdgeId(e));
            let x = u64::from(a[0].min(b[0]));
            let s = ((x * shards as u64) / side) as usize;
            shard_of_edge[e] = s as u32;
            slot_of_edge[e] = slots[s] as u32;
            slots[s] += 1;
        }
        Self {
            shards,
            shard_of_edge,
            slot_of_edge,
            slots,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning an edge.
    pub fn shard_of(&self, e: EdgeId) -> usize {
        self.shard_of_edge[e.0] as usize
    }
}

/// Immutable-per-step packet state, structure-of-arrays. `pos`,
/// `arrived`, and `cur_edge` are atomics so disjoint per-shard commits
/// can write them under a shared read lock; the `RwLock` around the
/// arena is taken for write only when the coordinator appends newly
/// injected packets between parallel rounds.
#[derive(Default)]
pub(crate) struct Arena {
    /// Each path sits behind its own (uncontended) mutex: a packet is
    /// owned by exactly one shard per step, and only that shard ever
    /// locks it — needed so `resample` recovery can swap the path in
    /// place without `unsafe`.
    pub(crate) path: Vec<Mutex<Path>>,
    pub(crate) injected_at: Vec<u64>,
    pub(crate) rank: Vec<u64>,
    /// Global injection index — identity for fault decisions.
    pub(crate) inj: Vec<u64>,
    pub(crate) pos: Vec<AtomicUsize>,
    pub(crate) arrived: Vec<AtomicU64>,
    pub(crate) cur_edge: Vec<AtomicUsize>,
    /// Fault-recovery budget units consumed so far.
    pub(crate) attempts: Vec<AtomicU32>,
    /// Step before which fault recovery makes no further decision.
    pub(crate) backoff: Vec<AtomicU64>,
}

/// Tombstone marker in a shard's active list: the packet left the shard
/// (delivered or handed off) and is skipped at the next scan.
pub(crate) const GONE: usize = usize::MAX;

/// Per-shard mutable state. Locked by whichever worker claims the shard
/// this step (uncontended: each shard is claimed exactly once per step).
pub(crate) struct ShardState {
    /// Packets owned by this shard (`GONE` entries are compacted lazily).
    pub(crate) active: Vec<usize>,
    /// Live packet count after the last step (excludes tombstones).
    pub(crate) live: usize,
    /// Per-slot winner key `(policy priority, packet id)` this step.
    pub(crate) best: Vec<(u64, u64)>,
    /// Per-slot winner position in `active` (for tombstoning).
    pub(crate) best_pos: Vec<u32>,
    /// Per-slot contender count this step.
    pub(crate) count: Vec<u32>,
    /// Slots touched this step (insertion order).
    pub(crate) touched: Vec<u32>,
    /// Per-slot traversal totals (the shard's slice of the link loads).
    pub(crate) loads: Vec<u64>,
    /// Delivery latencies of packets that completed in this shard.
    pub(crate) latencies: Vec<u64>,
    pub(crate) step_max_group: u32,
    pub(crate) step_busy: u32,
    pub(crate) step_handoffs: u64,
    pub(crate) step_delivered: u64,
    pub(crate) step_dead: u64,
    pub(crate) step_blocked: u64,
    pub(crate) step_resamples: u64,
    pub(crate) step_drops: u64,
}

impl ShardState {
    pub(crate) fn new(slots: usize) -> Self {
        Self {
            active: Vec::new(),
            live: 0,
            best: vec![(0, 0); slots],
            best_pos: vec![0; slots],
            count: vec![0; slots],
            touched: Vec::new(),
            loads: vec![0; slots],
            latencies: Vec::new(),
            step_max_group: 0,
            step_busy: 0,
            step_handoffs: 0,
            step_delivered: 0,
            step_dead: 0,
            step_blocked: 0,
            step_resamples: 0,
            step_drops: 0,
        }
    }
}

/// A routed pending packet: its path and first edge (`GONE` if the path
/// is empty, i.e. delivered instantly).
type Staged = (Path, usize);

const ROUTE_PHASE: usize = 0;
const STEP_PHASE: usize = 1;
/// Injections claimed per atomic fetch in the route phase.
const ROUTE_CHUNK: usize = 8;

/// Runs the sharded simulation. See [`OnlineSim::run_sharded`] for the
/// public contract; `sim` carries the mesh, policy, and injection rate.
/// `ckpt`/`resume` implement [`OnlineSim::run_sharded_ckpt`]: snapshots
/// are captured (and restored) at step boundaries, between parallel
/// rounds, where the coordinator has exclusive access to all state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded_ckpt(
    sim: &OnlineSim<'_>,
    pattern: &dyn TrafficPattern,
    paths: &(dyn PathSource + Sync),
    steps: u64,
    seed: u64,
    threads: usize,
    ckpt: Option<&CheckpointCfg<'_>>,
    resume: Option<&EngineState>,
) -> Result<OnlineResult, StopReason> {
    assert!(threads >= 1, "need at least one thread");
    let _span = oblivion_obs::span("online_sim_sharded");
    let mesh = sim.mesh();
    let policy = sim.policy();
    let faults = sim.fault_setup();
    let map = ShardMap::new(mesh);
    let shards_n = map.shards();

    let arena: RwLock<Arena> = RwLock::new(Arena::default());
    let shards: Vec<Mutex<ShardState>> = map
        .slots
        .iter()
        .map(|&slots| Mutex::new(ShardState::new(slots)))
        .collect();
    // Parity-buffered handoff inboxes: step `t` drains `[s][t % 2]` while
    // commits push into `[s][(t + 1) % 2]`.
    let inboxes: Vec<[Mutex<Vec<usize>>; 2]> = (0..shards_n)
        .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
        .collect();
    let pending: RwLock<Vec<Pending>> = RwLock::new(Vec::new());
    let staging: RwLock<Vec<Mutex<Option<Staged>>>> = RwLock::new(Vec::new());

    let phase = AtomicUsize::new(STEP_PHASE);
    let cursor = AtomicUsize::new(0);
    let cur_t = AtomicU64::new(0);
    let steals = AtomicU64::new(0);

    // ------------------------------------------------------------------
    // The parallel job: route pending injections, or contend-and-commit
    // one shard, depending on the phase the coordinator selected.
    // ------------------------------------------------------------------
    let job = |w: usize| {
        let mut local_steals = 0u64;
        match phase.load(Ordering::SeqCst) {
            ROUTE_PHASE => {
                let pend = pending.read().unwrap();
                let stage = staging.read().unwrap();
                let chunks = pend.len().div_ceil(ROUTE_CHUNK);
                loop {
                    let base = cursor.fetch_add(ROUTE_CHUNK, Ordering::Relaxed);
                    if base >= pend.len() {
                        break;
                    }
                    if pool::home_of(base / ROUTE_CHUNK, chunks, threads) != w {
                        local_steals += 1;
                    }
                    for k in base..(base + ROUTE_CHUNK).min(pend.len()) {
                        let pj = &pend[k];
                        let mut prng = route_rng_for(seed, pj.idx);
                        let path = paths.path(&pj.src, &pj.dst, &mut prng);
                        debug_assert!(path.is_valid(mesh), "path source produced invalid walk");
                        let edge0 = if path.is_empty() {
                            GONE
                        } else {
                            let nodes = path.nodes();
                            mesh.edge_id(&nodes[0], &nodes[1]).0
                        };
                        *stage[k].lock().unwrap() = Some((path, edge0));
                    }
                }
            }
            _ => {
                let t = cur_t.load(Ordering::SeqCst);
                let arena = arena.read().unwrap();
                loop {
                    let s = cursor.fetch_add(1, Ordering::Relaxed);
                    if s >= shards_n {
                        break;
                    }
                    if pool::home_of(s, shards_n, threads) != w {
                        local_steals += 1;
                    }
                    step_shard(
                        &arena, &map, &shards[s], &inboxes, mesh, paths, policy, faults, s, t,
                    );
                }
            }
        }
        if local_steals > 0 {
            steals.fetch_add(local_steals, Ordering::Relaxed);
        }
    };

    // ------------------------------------------------------------------
    // The coordinator: injection draws, arena growth, per-step metric
    // aggregation, termination — the shared step protocol lives in the
    // stepper; this function adds only the shard bookkeeping. Runs
    // strictly between parallel rounds.
    // ------------------------------------------------------------------
    let mut sp = Stepper::new(sim.rate(), faults, steps, seed, ckpt, resume);
    let nodes: Vec<Coord> = mesh.coords().collect();
    let mut alive = 0usize;
    let mut delivered_instant = 0usize;
    let mut handoffs_total = 0u64;
    let mut max_imbalance = 0u64;

    // Latencies carried over from a resumed snapshot (includes the zeros
    // of pre-resume instant deliveries); `delivered_instant` counts only
    // post-resume ones.
    let mut base_latencies: Vec<u64> = Vec::new();
    if let Some(st) = resume {
        alive = st.packets.len();
        handoffs_total = st.handoffs_total;
        max_imbalance = st.max_imbalance;
        base_latencies = st.latencies.clone();
        // Rebuild the arena at its pre-stop length: live packets in
        // place, inert dummies where delivered/dead ones sat, so
        // post-resume packets get identical ids. Live packets join the
        // active list of the shard owning their current edge.
        let mut a = arena.write().unwrap();
        let mut live = st.packets.iter().peekable();
        for id in 0..st.arena_len as usize {
            if live.peek().is_some_and(|p| p.id as usize == id) {
                let p = live.next().expect("peeked");
                let path = p.to_path(mesh);
                let pos = p.pos as usize;
                let nodes = path.nodes();
                let e0 = mesh.edge_id(&nodes[pos], &nodes[pos + 1]).0;
                a.path.push(Mutex::new(path));
                a.injected_at.push(p.injected_at);
                a.rank.push(p.rank);
                a.inj.push(p.inj);
                a.pos.push(AtomicUsize::new(pos));
                a.arrived.push(AtomicU64::new(p.arrived));
                a.cur_edge.push(AtomicUsize::new(e0));
                a.attempts.push(AtomicU32::new(p.attempts));
                a.backoff.push(AtomicU64::new(p.backoff_until));
                let s = map.shard_of_edge[e0] as usize;
                shards[s].lock().unwrap().active.push(id);
            } else {
                a.path.push(Mutex::new(Path::trivial(
                    mesh.coord(oblivion_mesh::NodeId(0)),
                )));
                a.injected_at.push(0);
                a.rank.push(0);
                a.inj.push(0);
                a.pos.push(AtomicUsize::new(0));
                a.arrived.push(AtomicU64::new(0));
                a.cur_edge.push(AtomicUsize::new(0));
                a.attempts.push(AtomicU32::new(0));
                a.backoff.push(AtomicU64::new(0));
            }
        }
        drop(a);
        for shard in &shards {
            let mut st = shard.lock().unwrap();
            st.live = st.active.len();
        }
        // Re-seed each shard's load slots with the pre-stop traversal
        // totals, so final link loads span the whole run.
        let mut locked: Vec<_> = shards.iter().map(|s| s.lock().unwrap()).collect();
        for (e, &load) in st.link_loads.iter().enumerate() {
            locked[map.shard_of_edge[e] as usize].loads[map.slot_of_edge[e] as usize] = load;
        }
    }
    let mut stopped: Option<StopReason> = None;

    #[derive(Clone, Copy, PartialEq)]
    enum Stage {
        Begin,
        Routed,
        Stepped,
    }
    let mut stage = Stage::Begin;
    // Per-step phase timers. Inject spans Begin→Routed commit (draw +
    // parallel routing), move spans the STEP phase + harvest, so the two
    // phases line up with the sequential engine's split.
    let mut timer = PhaseTimer::idle();

    let next = || -> bool {
        loop {
            match stage {
                Stage::Begin => {
                    if !sp.running(alive) {
                        return false;
                    }
                    let stop = sp.boundary(|scalars| {
                        capture_sharded(
                            mesh,
                            &map,
                            &arena,
                            &shards,
                            &inboxes,
                            scalars,
                            &base_latencies,
                            delivered_instant,
                            handoffs_total,
                            max_imbalance,
                        )
                    });
                    if let Some(stop) = stop {
                        stopped = Some(stop);
                        return false;
                    }
                    timer.start();
                    // Draw this step's injections into the shared pending
                    // list (cleared by the stepper: drain steps must not
                    // replay the final injection step's list).
                    let mut pend = pending.write().unwrap();
                    sp.draw_injections(mesh, &nodes, pattern, &mut pend);
                    if !pend.is_empty() {
                        let mut stage_slots = staging.write().unwrap();
                        stage_slots.clear();
                        stage_slots.resize_with(pend.len(), || Mutex::new(None));
                        drop(stage_slots);
                        drop(pend);
                        phase.store(ROUTE_PHASE, Ordering::SeqCst);
                        cursor.store(0, Ordering::SeqCst);
                        stage = Stage::Routed;
                        return true;
                    }
                    stage = Stage::Routed;
                }
                Stage::Routed => {
                    // Commit routed injections into the arena in draw
                    // order (deterministic), then run the step phase.
                    let t = sp.t;
                    let pend = pending.read().unwrap();
                    if !pend.is_empty() {
                        let stage_slots = staging.read().unwrap();
                        let mut arena = arena.write().unwrap();
                        for (k, pj) in pend.iter().enumerate() {
                            let (path, edge0) =
                                stage_slots[k].lock().unwrap().take().expect("routed slot");
                            if edge0 == GONE {
                                delivered_instant += 1;
                                continue;
                            }
                            let id = arena.path.len();
                            arena.path.push(Mutex::new(path));
                            arena.injected_at.push(t);
                            arena.rank.push(pj.rank);
                            arena.inj.push(pj.idx);
                            arena.pos.push(AtomicUsize::new(0));
                            arena.arrived.push(AtomicU64::new(t));
                            arena.cur_edge.push(AtomicUsize::new(edge0));
                            arena.attempts.push(AtomicU32::new(0));
                            arena.backoff.push(AtomicU64::new(0));
                            let s = map.shard_of_edge[edge0] as usize;
                            shards[s].lock().unwrap().active.push(id);
                            alive += 1;
                        }
                    }
                    drop(pend);
                    timer.inject_done();
                    cur_t.store(t, Ordering::SeqCst);
                    phase.store(STEP_PHASE, Ordering::SeqCst);
                    cursor.store(0, Ordering::SeqCst);
                    stage = Stage::Stepped;
                    return true;
                }
                Stage::Stepped => {
                    // Harvest the step: order-free aggregates over shards.
                    let mut max_group = 0u64;
                    let mut busy = 0u64;
                    let mut step_handoffs = 0u64;
                    let mut delivered_step = 0u64;
                    let mut dead_step = 0u64;
                    let (mut live_max, mut live_min) = (0u64, u64::MAX);
                    for shard in &shards {
                        let st = shard.lock().unwrap();
                        max_group = max_group.max(u64::from(st.step_max_group));
                        busy += u64::from(st.step_busy);
                        step_handoffs += st.step_handoffs;
                        delivered_step += st.step_delivered;
                        dead_step += st.step_dead;
                        if let Some(fs) = sp.fstats.as_mut() {
                            fs.blocked += st.step_blocked;
                            fs.resamples += st.step_resamples;
                            fs.drops += st.step_drops;
                            fs.dead_letters += st.step_dead;
                        }
                        live_max = live_max.max(st.live as u64);
                        live_min = live_min.min(st.live as u64);
                    }
                    let imbalance = live_max.saturating_sub(live_min);
                    alive -= (delivered_step + dead_step) as usize;
                    handoffs_total += step_handoffs;
                    max_imbalance = max_imbalance.max(imbalance);
                    timer.move_done();
                    sp.end_step(
                        alive,
                        StepObs {
                            max_group,
                            busy,
                            shard: Some((step_handoffs, imbalance)),
                        },
                    );
                    stage = Stage::Begin;
                }
            }
        }
    };

    pool::run_rounds(threads, job, next);

    if let Some(stop) = stopped {
        return Err(stop);
    }

    sp.finish(Some(ShardFinale {
        shards: shards_n,
        steals: steals.load(Ordering::Relaxed),
    }));

    // ------------------------------------------------------------------
    // Assemble the result: per-shard pieces concatenated in shard order.
    // ------------------------------------------------------------------
    let mut latencies: Vec<u64> = base_latencies;
    latencies.resize(latencies.len() + delivered_instant, 0);
    let mut link_loads = vec![0u64; mesh.edge_count()];
    for shard in &shards {
        latencies.extend_from_slice(&shard.lock().unwrap().latencies);
    }
    for (e, load) in link_loads.iter_mut().enumerate() {
        let s = map.shard_of_edge[e] as usize;
        *load = shards[s].lock().unwrap().loads[map.slot_of_edge[e] as usize];
    }
    Ok(OnlineResult::assemble(
        mesh,
        steps,
        sp.injected,
        latencies,
        alive,
        link_loads,
        Some(ShardSummary {
            shards: shards_n,
            handoffs: handoffs_total,
            max_imbalance,
        }),
        sp.fstats,
    ))
}

/// Captures the full sharded-engine state at a step boundary into a
/// canonical [`EngineState`]: live packet ids are the union of shard
/// active lists and the current-parity inboxes, sorted ascending, and
/// latencies are sorted — so the bytes are independent of shard finish
/// order and (with observability off) identical to the sequential
/// engine's capture at the same step.
#[allow(clippy::too_many_arguments)]
fn capture_sharded(
    mesh: &Mesh,
    map: &ShardMap,
    arena: &RwLock<Arena>,
    shards: &[Mutex<ShardState>],
    inboxes: &[[Mutex<Vec<usize>>; 2]],
    scalars: &BoundaryScalars<'_>,
    base_latencies: &[u64],
    delivered_instant: usize,
    handoffs_total: u64,
    max_imbalance: u64,
) -> EngineState {
    let t = scalars.t;
    let arena = arena.read().unwrap();
    let mut ids: Vec<usize> = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        let st = shard.lock().unwrap();
        ids.extend(st.active.iter().copied().filter(|&i| i != GONE));
        drop(st);
        ids.extend(inboxes[s][(t % 2) as usize].lock().unwrap().iter().copied());
    }
    ids.sort_unstable();
    let packets: Vec<PacketState> = ids
        .iter()
        .map(|&i| {
            let path = arena.path[i].lock().unwrap();
            PacketState {
                id: i as u64,
                inj: arena.inj[i],
                injected_at: arena.injected_at[i],
                arrived: arena.arrived[i].load(Ordering::Relaxed),
                rank: arena.rank[i],
                pos: arena.pos[i].load(Ordering::Relaxed) as u64,
                attempts: arena.attempts[i].load(Ordering::Relaxed),
                backoff_until: arena.backoff[i].load(Ordering::Relaxed),
                path: path
                    .nodes()
                    .iter()
                    .map(|c| mesh.node_id(c).0 as u64)
                    .collect(),
            }
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(base_latencies.len() + delivered_instant);
    latencies.extend_from_slice(base_latencies);
    latencies.resize(latencies.len() + delivered_instant, 0);
    for shard in shards {
        latencies.extend_from_slice(&shard.lock().unwrap().latencies);
    }
    latencies.sort_unstable();
    let link_loads: Vec<u64> = (0..mesh.edge_count())
        .map(|e| {
            let s = map.shard_of_edge[e] as usize;
            shards[s].lock().unwrap().loads[map.slot_of_edge[e] as usize]
        })
        .collect();
    EngineState {
        t,
        rng: scalars.rng.state(),
        injected: scalars.injected as u64,
        inj_idx: scalars.inj_idx,
        arena_len: arena.path.len() as u64,
        handoffs_total,
        max_imbalance,
        latencies,
        link_loads,
        packets,
        fstats: *scalars.fstats,
        obs: capture_obs(),
    }
}

/// One shard's contend-and-commit for step `t`: drain the parity inbox,
/// scan the active list (compacting tombstones), pick the winner per
/// link, and commit winners — advancing positions, recording loads and
/// latencies, and pushing cross-shard handoffs into the next-parity
/// inbox of the destination shard.
/// Swaps packet `i`'s path for a freshly resampled one drawn from the
/// plan's derived RNG, restarting it at position 0, and returns the new
/// first edge. Mirrors the sequential engine's `resample_flight`.
#[allow(clippy::too_many_arguments)]
fn resample_arena(
    arena: &Arena,
    paths: &(dyn PathSource + Sync),
    mesh: &Mesh,
    fx: &Faults<'_>,
    i: usize,
    pos: usize,
    attempts: u32,
    t: u64,
) -> usize {
    let mut path = arena.path[i].lock().unwrap();
    let cur = path.nodes()[pos];
    let dst = *path.nodes().last().expect("non-empty path");
    let mut rng = fx.plan.resample_rng(arena.inj[i], attempts);
    let np = paths.resample(&cur, &dst, &mut rng);
    debug_assert!(np.is_valid(mesh), "resampled path invalid");
    let nodes = np.nodes();
    let e2 = mesh.edge_id(&nodes[0], &nodes[1]).0;
    *path = np;
    drop(path);
    let mut clock = FaultClock::default();
    clock.resampled(attempts, t);
    arena.pos[i].store(0, Ordering::Relaxed);
    arena.attempts[i].store(clock.attempts, Ordering::Relaxed);
    arena.backoff[i].store(clock.backoff_until, Ordering::Relaxed);
    arena.cur_edge[i].store(e2, Ordering::Relaxed);
    e2
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn step_shard(
    arena: &Arena,
    map: &ShardMap,
    shard: &Mutex<ShardState>,
    inboxes: &[[Mutex<Vec<usize>>; 2]],
    mesh: &Mesh,
    paths: &(dyn PathSource + Sync),
    policy: crate::SchedulingPolicy,
    faults: Option<Faults<'_>>,
    s: usize,
    t: u64,
) {
    let mut st = shard.lock().unwrap();
    let st = &mut *st;
    st.step_handoffs = 0;
    st.step_delivered = 0;
    st.step_dead = 0;
    st.step_blocked = 0;
    st.step_resamples = 0;
    st.step_drops = 0;
    {
        let mut ib = inboxes[s][(t % 2) as usize].lock().unwrap();
        st.active.append(&mut ib);
    }
    // Contention scan. A packet whose next link is down does not
    // contend; its recovery decision runs here instead (mirroring the
    // sequential engine's movement-phase scan).
    let mut w = 0usize;
    for r in 0..st.active.len() {
        let i = st.active[r];
        if i == GONE {
            continue;
        }
        let pos = arena.pos[i].load(Ordering::Relaxed);
        let e = arena.cur_edge[i].load(Ordering::Relaxed);
        if let Some(fx) = &faults {
            if fx.plan.link_down(EdgeId(e), t) {
                st.step_blocked += 1;
                // Round-trip the packet's fault clock through the shared
                // transition rules (arena atomics are just its storage).
                let mut clock = FaultClock::restore(
                    arena.attempts[i].load(Ordering::Relaxed),
                    arena.backoff[i].load(Ordering::Relaxed),
                );
                match clock.adverse(fx, t) {
                    Adverse::Hold => {
                        arena.attempts[i].store(clock.attempts, Ordering::Relaxed);
                        arena.backoff[i].store(clock.backoff_until, Ordering::Relaxed);
                    }
                    Adverse::DeadLetter => {
                        st.step_dead += 1;
                        continue; // drops out of the active list
                    }
                    Adverse::Resample { attempts } => {
                        st.step_resamples += 1;
                        let e2 = resample_arena(arena, paths, mesh, fx, i, pos, attempts, t);
                        let s2 = map.shard_of_edge[e2] as usize;
                        if s2 != s {
                            st.step_handoffs += 1;
                            inboxes[s2][((t + 1) % 2) as usize].lock().unwrap().push(i);
                            continue; // now owned by the other shard
                        }
                    }
                }
                // Blocked (or resampled in place): stays active, does
                // not contend this step.
                st.active[w] = i;
                w += 1;
                continue;
            }
        }
        st.active[w] = i;
        let slot = map.slot_of_edge[e] as usize;
        let remaining = (arena.path[i].lock().unwrap().len() - pos) as u64;
        let key = policy_key(
            policy,
            arena.arrived[i].load(Ordering::Relaxed),
            arena.rank[i],
            remaining,
            i as u64,
        );
        let c = st.count[slot];
        if c == 0 {
            st.touched.push(slot as u32);
            st.best[slot] = key;
            st.best_pos[slot] = w as u32;
        } else if key < st.best[slot] {
            st.best[slot] = key;
            st.best_pos[slot] = w as u32;
        }
        st.count[slot] = c + 1;
        w += 1;
    }
    st.active.truncate(w);
    // Commit winners in touch order (order-free outcomes: one winner per
    // link, keys totally ordered).
    st.step_busy = st.touched.len() as u32;
    st.step_max_group = 0;
    let mut tombstoned = 0usize;
    for ti in 0..st.touched.len() {
        let slot = st.touched[ti] as usize;
        st.step_max_group = st.step_max_group.max(st.count[slot]);
        st.count[slot] = 0;
        let (_, pid) = st.best[slot];
        let i = pid as usize;
        let r = st.best_pos[slot] as usize;
        if let Some(fx) = &faults {
            // The winning traversal can still lose the packet to
            // per-link drop (same check, in the same order, as the
            // sequential engine's commit).
            let e = arena.cur_edge[i].load(Ordering::Relaxed);
            if fx.plan.drops(EdgeId(e), t, arena.inj[i]) {
                st.step_drops += 1;
                let mut clock = FaultClock::restore(
                    arena.attempts[i].load(Ordering::Relaxed),
                    arena.backoff[i].load(Ordering::Relaxed),
                );
                match clock.adverse(fx, t) {
                    Adverse::Hold => {
                        arena.attempts[i].store(clock.attempts, Ordering::Relaxed);
                        arena.backoff[i].store(clock.backoff_until, Ordering::Relaxed);
                    }
                    Adverse::DeadLetter => {
                        st.step_dead += 1;
                        st.active[r] = GONE;
                        tombstoned += 1;
                    }
                    Adverse::Resample { attempts } => {
                        st.step_resamples += 1;
                        let pos = arena.pos[i].load(Ordering::Relaxed);
                        let e2 = resample_arena(arena, paths, mesh, fx, i, pos, attempts, t);
                        let s2 = map.shard_of_edge[e2] as usize;
                        if s2 != s {
                            st.step_handoffs += 1;
                            inboxes[s2][((t + 1) % 2) as usize].lock().unwrap().push(i);
                            st.active[r] = GONE;
                            tombstoned += 1;
                        }
                    }
                }
                continue; // no advance, no load
            }
            // A completed hop clears the recovery state.
            let cleared = FaultClock::default();
            arena.attempts[i].store(cleared.attempts, Ordering::Relaxed);
            arena.backoff[i].store(cleared.backoff_until, Ordering::Relaxed);
        }
        let pos = arena.pos[i].load(Ordering::Relaxed) + 1;
        arena.pos[i].store(pos, Ordering::Relaxed);
        arena.arrived[i].store(t + 1, Ordering::Relaxed);
        st.loads[slot] += 1;
        let path = arena.path[i].lock().unwrap();
        if pos == path.len() {
            drop(path);
            st.latencies.push(t + 1 - arena.injected_at[i]);
            st.step_delivered += 1;
            st.active[r] = GONE;
            tombstoned += 1;
        } else {
            let nodes = path.nodes();
            let e2 = mesh.edge_id(&nodes[pos], &nodes[pos + 1]);
            drop(path);
            arena.cur_edge[i].store(e2.0, Ordering::Relaxed);
            let s2 = map.shard_of_edge[e2.0] as usize;
            if s2 != s {
                st.step_handoffs += 1;
                inboxes[s2][((t + 1) % 2) as usize].lock().unwrap().push(i);
                st.active[r] = GONE;
                tombstoned += 1;
            }
        }
    }
    st.touched.clear();
    st.live = w - tombstoned;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_covers_every_edge_exactly_once() {
        for mesh in [
            Mesh::new_mesh(&[8, 8]),
            Mesh::new_mesh(&[4, 4, 4]),
            Mesh::new_mesh(&[32]),
            Mesh::new_torus(&[8, 8]),
        ] {
            let map = ShardMap::new(&mesh);
            assert!(map.shards() >= 1 && map.shards() <= MAX_SHARDS);
            let mut seen = vec![false; mesh.edge_count()];
            let mut per_shard = vec![0usize; map.shards()];
            for (e, seen_edge) in seen.iter_mut().enumerate() {
                let s = map.shard_of(EdgeId(e));
                let slot = map.slot_of_edge[e] as usize;
                assert!(s < map.shards());
                assert!(slot < map.slots[s]);
                assert!(!*seen_edge);
                *seen_edge = true;
                per_shard[s] += 1;
            }
            assert_eq!(per_shard, map.slots, "{:?}", mesh.dims());
            assert_eq!(per_shard.iter().sum::<usize>(), mesh.edge_count());
        }
    }

    #[test]
    fn shard_map_is_spatial() {
        // Edges wholly inside the same band share a shard; shard index
        // is monotone in the axis-0 coordinate.
        let mesh = Mesh::new_mesh(&[32, 4]);
        let map = ShardMap::new(&mesh);
        let mut last = 0;
        for x in 0..31u32 {
            let e = mesh.edge_id(&Coord::new(&[x, 0]), &Coord::new(&[x + 1, 0]));
            let s = map.shard_of(e);
            assert!(s >= last);
            last = s;
        }
        assert_eq!(last, map.shards() - 1);
    }
}
