//! # oblivion-sim
//!
//! A synchronous store-and-forward packet-switching simulator for mesh
//! networks — the routing model of the paper's introduction: time is
//! slotted, **at most one packet traverses any link per time step**, and
//! packets wait in unbounded FIFO buffers otherwise. Any schedule needs
//! `Ω(C + D)` steps on paths with congestion `C` and dilation `D`; the
//! simulator lets us check how close simple online schedulers get, making
//! the paper's `C + D` path-quality metric operational.
//!
//! ```
//! use oblivion_mesh::{Coord, Mesh, Path};
//! use oblivion_sim::{SchedulingPolicy, Simulation};
//!
//! let mesh = Mesh::new_mesh(&[4, 4]);
//! let p = Path::new(&mesh, vec![
//!     Coord::new(&[0, 0]), Coord::new(&[0, 1]), Coord::new(&[0, 2]),
//! ]);
//! let res = Simulation::new(&mesh, vec![p]).run(SchedulingPolicy::Fifo, 0);
//! assert_eq!(res.makespan, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod online;
pub mod pool;
pub mod procs;
pub mod sharded;
mod stepper;
pub use checkpoint::{CheckpointCfg, EngineState, Interrupted, StopReason};
pub use online::{
    FaultStats, Faults, FixedTraffic, OnlineResult, OnlineSim, PathSource, ShardSummary,
    TrafficPattern, UniformTraffic,
};
pub use sharded::ShardMap;

use oblivion_mesh::{Mesh, Path};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Contention-resolution rule applied independently at every link, every
/// step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// First come, first served at the link (ties by packet id).
    Fifo,
    /// The packet with the most remaining hops wins ("furthest to go").
    FurthestToGo,
    /// The packet with the fewest remaining hops wins.
    ClosestToGo,
    /// Each packet carries a random priority drawn at injection time —
    /// the classic random-rank rule behind `O(C + D log N)` schedules.
    RandomRank,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Step at which the last packet arrived (0 if no packet moves).
    pub makespan: u64,
    /// Per-packet delivery step, same order as the input paths.
    pub delivery: Vec<u64>,
    /// Total link traversals (= Σ path lengths).
    pub total_moves: u64,
    /// Largest number of packets contending for one link in one step.
    pub max_contention: usize,
    /// Largest number of in-flight packets buffered at one node at the
    /// start of any step — the buffer capacity an implementation would
    /// need for this schedule.
    pub max_queue: usize,
}

impl SimResult {
    /// Mean delivery time.
    pub fn mean_delivery(&self) -> f64 {
        if self.delivery.is_empty() {
            return 0.0;
        }
        self.delivery.iter().map(|&t| t as f64).sum::<f64>() / self.delivery.len() as f64
    }
}

/// A configured simulation of a fixed path set.
pub struct Simulation<'a> {
    mesh: &'a Mesh,
    paths: Vec<Path>,
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation; paths must be valid walks in `mesh`.
    ///
    /// # Panics
    /// Panics if any path is invalid.
    pub fn new(mesh: &'a Mesh, paths: Vec<Path>) -> Self {
        for (i, p) in paths.iter().enumerate() {
            assert!(p.is_valid(mesh), "path {i} is not a valid walk");
        }
        Self { mesh, paths }
    }

    /// Runs the synchronous schedule to completion.
    ///
    /// `seed` feeds the random-rank policy (ignored by the others, but the
    /// result is deterministic given `(paths, policy, seed)` always).
    pub fn run(&self, policy: SchedulingPolicy, seed: u64) -> SimResult {
        self.run_with_delays(policy, seed, None)
    }

    /// Runs with **random initial delays**: each packet waits a uniform
    /// delay in `[0, max_delay]` before injecting, then competes as usual.
    ///
    /// This is the classic offline technique behind near-`O(C + D)`
    /// schedules (Leighton–Maggs–Rao style, cited by the paper as the
    /// non-oblivious route to optimizing `C + D`): spreading start times
    /// de-synchronizes bursts on shared links.
    pub fn run_with_random_delays(
        &self,
        policy: SchedulingPolicy,
        seed: u64,
        max_delay: u64,
    ) -> SimResult {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
        let delays: Vec<u64> = (0..self.paths.len())
            .map(|_| rng.gen_range(0..=max_delay))
            .collect();
        self.run_with_delays(policy, seed, Some(&delays))
    }

    /// Runs with explicit per-packet injection times.
    ///
    /// # Panics
    /// Panics if `delays` (when given) has the wrong length.
    pub fn run_with_delays(
        &self,
        policy: SchedulingPolicy,
        seed: u64,
        delays: Option<&[u64]>,
    ) -> SimResult {
        if let Some(d) = delays {
            assert_eq!(d.len(), self.paths.len(), "one delay per packet");
        }
        let _span = oblivion_obs::span("simulation");
        let n = self.paths.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks: Vec<u64> = (0..n).map(|_| rng.gen()).collect();

        // pos[i]: index of the node the packet currently occupies.
        let mut pos = vec![0usize; n];
        // arrived_at[i]: step at which the packet reached its current node.
        let mut arrived_at = vec![0u64; n];
        let mut delivery = vec![0u64; n];
        let mut remaining: Vec<usize> = (0..n).filter(|&i| !self.paths[i].is_empty()).collect();
        let total_moves: u64 = self.paths.iter().map(|p| p.len() as u64).sum();

        let mut makespan = 0u64;
        let mut max_contention = 0usize;
        let mut t = 0u64;
        // Progress guarantee: once every packet is injected, some packet
        // advances each step, so max_delay + total_moves bounds the steps.
        let max_delay = delays
            .map(|d| d.iter().copied().max().unwrap_or(0))
            .unwrap_or(0);
        let step_limit = max_delay + total_moves + 1;

        let mut max_queue = 0usize;
        let mut contenders: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut occupancy: HashMap<usize, usize> = HashMap::new();
        while !remaining.is_empty() {
            assert!(t < step_limit, "scheduler failed to make progress");
            contenders.clear();
            occupancy.clear();
            for &i in &remaining {
                if let Some(d) = delays {
                    if d[i] > t {
                        continue; // not yet injected
                    }
                }
                let p = self.paths[i].nodes();
                let node = self.mesh.node_id(&p[pos[i]]).0;
                *occupancy.entry(node).or_insert(0) += 1;
                let e = self.mesh.edge_id(&p[pos[i]], &p[pos[i] + 1]);
                contenders.entry(e.0).or_default().push(i);
            }
            max_queue = max_queue.max(occupancy.values().copied().max().unwrap_or(0));
            if oblivion_obs::is_enabled() {
                oblivion_obs::counter_add("sim_steps", 1);
                oblivion_obs::record(
                    "queue_len_per_step",
                    occupancy.values().copied().max().unwrap_or(0) as u64,
                );
                oblivion_obs::record("busy_links_per_step", contenders.len() as u64);
            }
            for group in contenders.values() {
                max_contention = max_contention.max(group.len());
                let &winner = group
                    .iter()
                    .min_by_key(|&&i| match policy {
                        SchedulingPolicy::Fifo => (arrived_at[i], i as u64),
                        SchedulingPolicy::FurthestToGo => {
                            let rem = self.paths[i].len() - pos[i];
                            (u64::MAX - rem as u64, i as u64)
                        }
                        SchedulingPolicy::ClosestToGo => {
                            let rem = self.paths[i].len() - pos[i];
                            (rem as u64, i as u64)
                        }
                        SchedulingPolicy::RandomRank => (ranks[i], i as u64),
                    })
                    .unwrap();
                pos[winner] += 1;
                arrived_at[winner] = t + 1;
                if pos[winner] == self.paths[winner].len() {
                    delivery[winner] = t + 1;
                    makespan = makespan.max(t + 1);
                }
            }
            remaining.retain(|&i| pos[i] < self.paths[i].len());
            t += 1;
        }
        SimResult {
            makespan,
            delivery,
            total_moves,
            max_contention,
            max_queue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_mesh::Coord;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    fn all_policies() -> [SchedulingPolicy; 4] {
        [
            SchedulingPolicy::Fifo,
            SchedulingPolicy::FurthestToGo,
            SchedulingPolicy::ClosestToGo,
            SchedulingPolicy::RandomRank,
        ]
    }

    #[test]
    fn lone_packet_takes_its_length() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&mesh, vec![c(0, 0), c(1, 0), c(2, 0), c(3, 0)]);
        for policy in all_policies() {
            let r = Simulation::new(&mesh, vec![p.clone()]).run(policy, 1);
            assert_eq!(r.makespan, 3);
            assert_eq!(r.delivery, vec![3]);
        }
    }

    #[test]
    fn head_on_contention_serializes() {
        let mesh = Mesh::new_mesh(&[2, 2]);
        // Two packets crossing the same edge in opposite directions.
        let p1 = Path::new(&mesh, vec![c(0, 0), c(0, 1)]);
        let p2 = Path::new(&mesh, vec![c(0, 1), c(0, 0)]);
        for policy in all_policies() {
            let r = Simulation::new(&mesh, vec![p1.clone(), p2.clone()]).run(policy, 2);
            assert_eq!(r.makespan, 2, "{policy:?}");
            assert_eq!(r.max_contention, 2);
        }
    }

    #[test]
    fn chain_of_packets_pipelines() {
        let mesh = Mesh::new_mesh(&[8, 1]);
        // 4 packets all moving right along the same line, staggered.
        let mk = |a: u32, b: u32| {
            Path::new(
                &mesh,
                (a..=b).map(|x| Coord::new(&[x, 0])).collect::<Vec<_>>(),
            )
        };
        let paths = vec![mk(0, 4), mk(1, 5), mk(2, 6), mk(3, 7)];
        let r = Simulation::new(&mesh, paths).run(SchedulingPolicy::Fifo, 3);
        // All can move each step after initial serialisation on shared
        // links; C = 2 on interior links, D = 4; makespan ≤ C + D + slack.
        assert!(r.makespan >= 4);
        assert!(r.makespan <= 8, "makespan {}", r.makespan);
    }

    #[test]
    fn makespan_at_least_c_and_d() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        // Four packets share the first edge.
        let paths: Vec<Path> = (0..4)
            .map(|_| Path::new(&mesh, vec![c(0, 0), c(0, 1), c(0, 2)]))
            .collect();
        for policy in all_policies() {
            let r = Simulation::new(&mesh, paths.clone()).run(policy, 4);
            assert!(r.makespan >= 4, "C bound violated: {}", r.makespan); // C = 4
            assert!(r.makespan >= 2); // D bound
            assert_eq!(r.total_moves, 8);
        }
    }

    #[test]
    fn trivial_paths_deliver_instantly() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let r = Simulation::new(&mesh, vec![Path::trivial(c(1, 1))]).run(SchedulingPolicy::Fifo, 5);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.delivery, vec![0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let paths = vec![
            Path::new(&mesh, vec![c(0, 0), c(0, 1), c(1, 1)]),
            Path::new(&mesh, vec![c(1, 0), c(0, 0), c(0, 1)]),
            Path::new(&mesh, vec![c(0, 2), c(0, 1), c(0, 0)]),
        ];
        let r1 = Simulation::new(&mesh, paths.clone()).run(SchedulingPolicy::RandomRank, 9);
        let r2 = Simulation::new(&mesh, paths).run(SchedulingPolicy::RandomRank, 9);
        assert_eq!(r1.delivery, r2.delivery);
    }

    #[test]
    fn no_packets() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let r = Simulation::new(&mesh, vec![]).run(SchedulingPolicy::Fifo, 0);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.total_moves, 0);
    }

    #[test]
    #[should_panic]
    fn invalid_path_rejected() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let bad = Path::new_unchecked(vec![c(0, 0), c(2, 2)]);
        let _ = Simulation::new(&mesh, vec![bad]);
    }

    #[test]
    fn max_queue_counts_colocated_packets() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        // Three packets all starting at (0,0): queue of 3 at step 0.
        let paths: Vec<Path> = vec![
            Path::new(&mesh, vec![c(0, 0), c(0, 1)]),
            Path::new(&mesh, vec![c(0, 0), c(1, 0)]),
            Path::new(&mesh, vec![c(0, 0), c(0, 1), c(0, 2)]),
        ];
        let r = Simulation::new(&mesh, paths).run(SchedulingPolicy::Fifo, 0);
        assert_eq!(r.max_queue, 3);
    }

    #[test]
    fn lone_packet_queue_is_one() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&mesh, vec![c(0, 0), c(0, 1), c(0, 2)]);
        let r = Simulation::new(&mesh, vec![p]).run(SchedulingPolicy::Fifo, 0);
        assert_eq!(r.max_queue, 1);
    }

    #[test]
    fn explicit_delays_shift_delivery() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&mesh, vec![c(0, 0), c(1, 0), c(2, 0)]);
        let sim = Simulation::new(&mesh, vec![p]);
        let r = sim.run_with_delays(SchedulingPolicy::Fifo, 0, Some(&[5]));
        assert_eq!(r.delivery, vec![7]); // waits 5, then 2 hops
        assert_eq!(r.makespan, 7);
    }

    #[test]
    fn random_delays_deliver_everything() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        // Four packets hammering the same edge.
        let paths: Vec<Path> = (0..4)
            .map(|_| Path::new(&mesh, vec![c(0, 0), c(0, 1), c(0, 2), c(0, 3)]))
            .collect();
        let sim = Simulation::new(&mesh, paths);
        let r = sim.run_with_random_delays(SchedulingPolicy::Fifo, 1, 8);
        assert_eq!(r.delivery.len(), 4);
        assert!(r.makespan >= 6); // C = 4 plus D = 3 minus overlap
        assert!(r.makespan <= 8 + 12);
    }

    #[test]
    fn zero_max_delay_equals_plain_run() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let paths = vec![
            Path::new(&mesh, vec![c(0, 0), c(0, 1), c(1, 1)]),
            Path::new(&mesh, vec![c(1, 0), c(0, 0), c(0, 1)]),
        ];
        let sim = Simulation::new(&mesh, paths);
        let a = sim.run(SchedulingPolicy::Fifo, 3);
        let b = sim.run_with_random_delays(SchedulingPolicy::Fifo, 3, 0);
        assert_eq!(a.delivery, b.delivery);
    }

    #[test]
    #[should_panic]
    fn wrong_delay_length_rejected() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&mesh, vec![c(0, 0), c(1, 0)]);
        let sim = Simulation::new(&mesh, vec![p]);
        let _ = sim.run_with_delays(SchedulingPolicy::Fifo, 0, Some(&[1, 2]));
    }
}
