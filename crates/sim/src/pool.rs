//! A hand-rolled scoped thread pool for barrier-synchronized round
//! execution (no external dependencies, no unsafe).
//!
//! The sharded online simulator runs thousands of short parallel phases
//! — far too many to spawn threads per phase. [`run_rounds`] spawns
//! `threads - 1` workers once (scoped, so the job may borrow local
//! state), then repeatedly executes a *round*: the coordinator (the
//! calling thread) decides whether another round is needed, every thread
//! runs the shared job closure once, and a barrier joins them before the
//! next decision. All coordination state — which phase the round
//! executes, which work items remain — lives in the job's captured
//! environment (atomics, mutex-protected shards), not in the pool.
//!
//! Determinism contract: the pool never decides *what* is computed, only
//! *who* computes it. As long as the job partitions work into
//! self-contained tasks whose results land in per-task slots, the
//! outcome is a pure function of the inputs for any thread count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Runs barrier-synchronized rounds of `job` on `threads` threads.
///
/// Repeatedly calls `next()` on the calling thread (the coordinator).
/// When it returns `true`, every thread — the `threads - 1` spawned
/// workers plus the coordinator — invokes `job(worker_index)` once, and
/// all of them rendezvous before `next()` is consulted again; worker
/// index 0 is the coordinator. When `next()` returns `false`, the
/// workers shut down and `run_rounds` returns.
///
/// `next()` runs strictly between rounds: it may freely mutate state the
/// job reads, set up the next round's work queue, and harvest the
/// previous round's results.
///
/// With `threads == 1` no threads are spawned at all; the coordinator
/// alternates `next()` and `job(0)` inline.
///
/// # Panics
/// Panics if `threads == 0`. A panic inside `job` on a worker thread
/// propagates to the caller when the scope joins.
pub fn run_rounds<J, N>(threads: usize, job: J, mut next: N)
where
    J: Fn(usize) + Sync,
    N: FnMut() -> bool,
{
    assert!(threads >= 1, "pool needs at least one thread");
    if threads == 1 {
        while next() {
            job(0);
        }
        return;
    }
    // Barrier pairs delimit each round: one release (coordinator has
    // published the round's work) and one join (all results visible).
    let barrier = Barrier::new(threads);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 1..threads {
            let (job, barrier, stop) = (&job, &barrier, &stop);
            scope.spawn(move || loop {
                barrier.wait();
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                job(w);
                barrier.wait();
            });
        }
        loop {
            if !next() {
                stop.store(true, Ordering::SeqCst);
                barrier.wait();
                break;
            }
            barrier.wait();
            job(0);
            barrier.wait();
        }
    });
}

/// Runs `worker(w)` once on each of `threads` scoped threads and joins
/// them all — the free-running sibling of [`run_rounds`] for crews whose
/// members coordinate through their captured environment instead of
/// barriers (queues, atomics, shutdown flags). Worker 0 runs on the
/// calling thread, so with `threads == 1` nothing is spawned.
///
/// This is the pool the `oblivion-serve` request server runs on: one
/// crew member accepts connections, the rest drain the bounded request
/// queue until it is closed and empty.
///
/// # Panics
/// Panics if `threads == 0`. A panic inside `worker` on a spawned thread
/// propagates to the caller when the scope joins.
pub fn run_crew<W>(threads: usize, worker: W)
where
    W: Fn(usize) + Sync,
{
    assert!(threads >= 1, "crew needs at least one worker");
    std::thread::scope(|scope| {
        for w in 1..threads {
            let worker = &worker;
            scope.spawn(move || worker(w));
        }
        worker(0);
    });
}

/// The worker expected to claim task `task` of `tasks` under a static
/// block partition across `threads` workers — the "home" assignment the
/// steal counter in the sharded simulator compares dynamic claims
/// against.
pub fn home_of(task: usize, tasks: usize, threads: usize) -> usize {
    if tasks == 0 {
        return 0;
    }
    (task * threads / tasks).min(threads - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    /// Sums 0..n over several rounds, any thread count → same result.
    fn sum_with(threads: usize, rounds: usize, tasks: usize) -> u64 {
        let total = AtomicUsize::new(0);
        let cursor = AtomicUsize::new(0);
        let mut round = 0usize;
        run_rounds(
            threads,
            |_w| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                total.fetch_add(t, Ordering::Relaxed);
            },
            || {
                if round == rounds {
                    return false;
                }
                round += 1;
                cursor.store(0, Ordering::SeqCst);
                true
            },
        );
        total.load(Ordering::SeqCst) as u64
    }

    #[test]
    fn rounds_produce_identical_totals_for_any_thread_count() {
        let expected = sum_with(1, 3, 100);
        assert_eq!(expected, 3 * (100 * 99 / 2));
        for threads in [2, 3, 8] {
            assert_eq!(sum_with(threads, 3, 100), expected, "threads {threads}");
        }
    }

    #[test]
    fn coordinator_sees_results_between_rounds() {
        // Each round appends one entry per task; next() checks the count
        // grew by exactly the task count — i.e. the barrier joined.
        let log = Mutex::new(Vec::new());
        let cursor = AtomicUsize::new(0);
        let mut round = 0usize;
        run_rounds(
            4,
            |_w| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= 10 {
                    break;
                }
                log.lock().unwrap().push(t);
            },
            || {
                assert_eq!(log.lock().unwrap().len(), round * 10);
                if round == 5 {
                    return false;
                }
                round += 1;
                cursor.store(0, Ordering::SeqCst);
                true
            },
        );
        assert_eq!(log.lock().unwrap().len(), 50);
    }

    #[test]
    fn zero_rounds_spawns_and_joins_cleanly() {
        run_rounds(8, |_| panic!("no round was requested"), || false);
    }

    #[test]
    fn home_partition_is_balanced_and_monotone() {
        assert_eq!(home_of(0, 16, 4), 0);
        assert_eq!(home_of(15, 16, 4), 3);
        assert_eq!(home_of(0, 0, 4), 0);
        let homes: Vec<usize> = (0..12).map(|t| home_of(t, 12, 3)).collect();
        assert_eq!(homes, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        run_rounds(0, |_| {}, || false);
    }

    #[test]
    fn crew_runs_every_worker_exactly_once() {
        for threads in [1usize, 2, 8] {
            let seen = Mutex::new(Vec::new());
            run_crew(threads, |w| seen.lock().unwrap().push(w));
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, (0..threads).collect::<Vec<_>>());
        }
    }

    #[test]
    fn crew_members_share_captured_state_concurrently() {
        // A tiny producer/consumer handshake: worker 0 publishes tasks,
        // the others consume until the published count is reached — the
        // shape the request server uses.
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        run_crew(4, |w| {
            if w == 0 {
                produced.store(100, Ordering::SeqCst);
            } else {
                while produced.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
                while consumed.fetch_add(1, Ordering::SeqCst) < 99 {}
            }
        });
        assert!(consumed.load(Ordering::SeqCst) >= 100);
    }

    #[test]
    #[should_panic]
    fn zero_crew_rejected() {
        run_crew(0, |_| {});
    }
}
