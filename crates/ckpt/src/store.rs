//! Two-generation atomic snapshot store.
//!
//! Layout on disk: a checkpoint directory holds two slot files,
//! `snap-a.ckpt` and `snap-b.ckpt`, selected by generation parity.
//! Writing generation *g* always targets the slot the *older* surviving
//! generation does not occupy, so the previous good snapshot is never
//! overwritten until the new one is durably in place. Each save goes
//! through write-temp → fsync → rename → fsync-dir, and the file carries
//! a magic/version header plus a CRC-32 over everything after the
//! checksum field — a torn or bit-flipped write at any byte is detected
//! on load and the store falls back to the other slot.
//!
//! Deliberate chaos hooks (env var `OBLIVION_CKPT_CRASH`) let tests and
//! CI simulate `kill -9` at the two interesting instants:
//!
//! * `mid-write:<gen>` — the save of generation `<gen>` leaves a torn
//!   file at the final slot path and aborts the process.
//! * `after-gen:<gen>` — the save of generation `<gen>` completes
//!   durably, then the process aborts.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::bytes::CkptError;
use crate::crc32::crc32;

/// File magic: "OBLCKPT" plus a format byte.
pub const MAGIC: [u8; 8] = *b"OBLCKPT\x01";
/// Bump when the header or payload framing changes incompatibly.
pub const VERSION: u32 = 1;
/// Header bytes before the payload: magic + version + crc + generation +
/// step + config hash + payload length.
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8 + 8;

/// Environment variable holding a crash-injection directive.
pub const CRASH_ENV: &str = "OBLIVION_CKPT_CRASH";

/// A decoded, integrity-checked snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic save counter; higher wins on load.
    pub generation: u64,
    /// Simulation step the state was captured at.
    pub step: u64,
    /// Hash of the run configuration the snapshot belongs to.
    pub config_hash: u64,
    /// Engine-defined state bytes.
    pub payload: Vec<u8>,
    /// CRC-32 recorded in the file (over header tail + payload).
    pub checksum: u32,
}

/// Result of scanning the checkpoint directory.
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// Newest valid snapshot, if any slot decoded cleanly.
    pub snapshot: Option<Snapshot>,
    /// One human-readable line per slot that existed but was rejected
    /// (torn, corrupt, wrong config) — callers surface these on stderr so
    /// a fallback to the previous generation is visible.
    pub warnings: Vec<String>,
}

/// A checkpoint directory holding up to two snapshot generations.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the checkpoint directory.
    pub fn open(dir: &Path) -> Result<Self, CkptError> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Slot path for a generation (parity-selected).
    pub fn slot_path(&self, generation: u64) -> PathBuf {
        let name = if generation.is_multiple_of(2) {
            "snap-a.ckpt"
        } else {
            "snap-b.ckpt"
        };
        self.dir.join(name)
    }

    /// Encodes header + payload into the exact bytes a slot file holds.
    fn encode(generation: u64, step: u64, config_hash: u64, payload: &[u8]) -> (Vec<u8>, u32) {
        // CRC covers everything after the checksum field so the checksum
        // protects the metadata (generation/step/hash/len) too.
        let mut tail = Vec::with_capacity(32 + payload.len());
        tail.extend_from_slice(&generation.to_le_bytes());
        tail.extend_from_slice(&step.to_le_bytes());
        tail.extend_from_slice(&config_hash.to_le_bytes());
        tail.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        tail.extend_from_slice(payload);
        let crc = crc32(&tail);

        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&crc.to_le_bytes());
        file.extend_from_slice(&tail);
        (file, crc)
    }

    /// Durably writes one snapshot generation; returns its CRC-32.
    ///
    /// Honors [`CRASH_ENV`] chaos directives (tests/CI only).
    pub fn save(
        &self,
        generation: u64,
        step: u64,
        config_hash: u64,
        payload: &[u8],
    ) -> Result<u32, CkptError> {
        let (bytes, crc) = Self::encode(generation, step, config_hash, payload);
        let final_path = self.slot_path(generation);

        if let Some(directive) = crash_directive() {
            if directive == format!("mid-write:{generation}") {
                // Simulate a kill -9 mid-write: a torn file sits at the
                // slot path (as if rename landed but the data did not, or
                // the writer bypassed the temp file) and the process dies.
                let torn = &bytes[..bytes.len() / 2];
                let mut f = File::create(&final_path)?;
                f.write_all(torn)?;
                f.sync_all()?;
                std::process::abort();
            }
        }

        let tmp_path = final_path.with_extension("ckpt.tmp");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // fsync the directory so the rename itself survives power loss.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        if let Some(directive) = crash_directive() {
            if directive == format!("after-gen:{generation}") {
                // Simulate a kill -9 immediately after a durable save.
                std::process::abort();
            }
        }
        Ok(crc)
    }

    /// Decodes and verifies one slot file.
    fn read_slot(path: &Path, expected_config_hash: u64) -> Result<Snapshot, CkptError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN {
            return Err(CkptError::Integrity(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(CkptError::Integrity("bad magic".into()));
        }
        let word = |off: usize| {
            let mut w = [0u8; 4];
            w.copy_from_slice(&bytes[off..off + 4]);
            u32::from_le_bytes(w)
        };
        let dword = |off: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(w)
        };
        let version = word(8);
        if version != VERSION {
            return Err(CkptError::Integrity(format!(
                "snapshot format version {version}, this build reads {VERSION}"
            )));
        }
        let stored_crc = word(12);
        let tail = &bytes[16..];
        let actual_crc = crc32(tail);
        if stored_crc != actual_crc {
            return Err(CkptError::Integrity(format!(
                "CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }
        let generation = dword(16);
        let step = dword(24);
        let config_hash = dword(32);
        let payload_len = dword(40) as usize;
        if bytes.len() != HEADER_LEN + payload_len {
            return Err(CkptError::Integrity(format!(
                "payload length field says {payload_len} bytes, file holds {}",
                bytes.len() - HEADER_LEN
            )));
        }
        if config_hash != expected_config_hash {
            return Err(CkptError::ConfigMismatch {
                found: config_hash,
                expected: expected_config_hash,
            });
        }
        Ok(Snapshot {
            generation,
            step,
            config_hash,
            payload: bytes[HEADER_LEN..].to_vec(),
            checksum: stored_crc,
        })
    }

    /// Scans both slots and returns the newest valid snapshot for this
    /// configuration, with a warning line for every slot that existed but
    /// failed validation.
    pub fn load_latest(&self, expected_config_hash: u64) -> LoadOutcome {
        let mut out = LoadOutcome::default();
        for name in ["snap-a.ckpt", "snap-b.ckpt"] {
            let path = self.dir.join(name);
            if !path.exists() {
                continue;
            }
            match Self::read_slot(&path, expected_config_hash) {
                Ok(snap) => {
                    let newer = out
                        .snapshot
                        .as_ref()
                        .is_none_or(|best| snap.generation > best.generation);
                    if newer {
                        out.snapshot = Some(snap);
                    }
                }
                Err(e) => out
                    .warnings
                    .push(format!("checkpoint slot {} rejected: {e}", path.display())),
            }
        }
        out
    }

    /// Deletes all snapshot slots and leftover temp files. Called when a
    /// run completes so a finished experiment is never resumed by accident.
    pub fn clear(&self) -> Result<(), CkptError> {
        for name in [
            "snap-a.ckpt",
            "snap-b.ckpt",
            "snap-a.ckpt.tmp",
            "snap-b.ckpt.tmp",
        ] {
            let path = self.dir.join(name);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

fn crash_directive() -> Option<String> {
    std::env::var(CRASH_ENV).ok().filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oblivion-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let crc = store.save(1, 100, 0xABCD, b"payload-one").unwrap();
        let out = store.load_latest(0xABCD);
        assert!(out.warnings.is_empty());
        let snap = out.snapshot.unwrap();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.step, 100);
        assert_eq!(snap.payload, b"payload-one");
        assert_eq!(snap.checksum, crc);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_generation_wins_and_two_survive() {
        let dir = tmp_dir("twogen");
        let store = Store::open(&dir).unwrap();
        store.save(1, 10, 7, b"g1").unwrap();
        store.save(2, 20, 7, b"g2").unwrap();
        store.save(3, 30, 7, b"g3").unwrap();
        // Generation 3 (odd slot) replaced 1; generation 2 (even slot) remains.
        let out = store.load_latest(7);
        assert_eq!(out.snapshot.unwrap().generation, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_single_byte_corruption_falls_back_to_previous_generation() {
        let dir = tmp_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        store.save(2, 20, 7, b"older-but-good").unwrap();
        store.save(3, 30, 7, b"newest").unwrap();
        let newest = store.slot_path(3);
        let good = fs::read(&newest).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            fs::write(&newest, &bad).unwrap();
            let out = store.load_latest(7);
            let snap = out.snapshot.expect("previous generation must survive");
            assert_eq!(snap.generation, 2, "byte {i}: should fall back to gen 2");
            assert_eq!(snap.payload, b"older-but-good");
            assert!(!out.warnings.is_empty(), "byte {i}: corruption must warn");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_length_falls_back() {
        let dir = tmp_dir("torn");
        let store = Store::open(&dir).unwrap();
        store.save(2, 20, 9, b"previous").unwrap();
        store.save(3, 30, 9, b"current-current").unwrap();
        let newest = store.slot_path(3);
        let good = fs::read(&newest).unwrap();
        for cut in 0..good.len() {
            fs::write(&newest, &good[..cut]).unwrap();
            let out = store.load_latest(9);
            assert_eq!(
                out.snapshot.expect("fallback").generation,
                2,
                "torn at {cut} bytes"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_mismatch_is_rejected_with_warning() {
        let dir = tmp_dir("config");
        let store = Store::open(&dir).unwrap();
        store.save(1, 10, 111, b"x").unwrap();
        let out = store.load_latest(222);
        assert!(out.snapshot.is_none());
        assert_eq!(out.warnings.len(), 1);
        assert!(out.warnings[0].contains("different run configuration"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_all_slots() {
        let dir = tmp_dir("clear");
        let store = Store::open(&dir).unwrap();
        store.save(1, 10, 5, b"x").unwrap();
        store.save(2, 20, 5, b"y").unwrap();
        store.clear().unwrap();
        assert!(store.load_latest(5).snapshot.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
