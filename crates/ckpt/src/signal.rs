//! Signal-aware graceful shutdown — re-exported from [`oblivion_signal`].
//!
//! The flag-setting SIGINT/SIGTERM handler used to live here; the
//! serving layer (`oblivion-serve`) needs the same plumbing without
//! pulling in the whole checkpoint store, so the implementation moved
//! to the shared `oblivion-signal` crate. This module re-exports it
//! unchanged so existing checkpoint users keep compiling and, more
//! importantly, so both subsystems share the *same* installer and flag:
//! a SIGTERM observed by the server's drain loop is the same SIGTERM
//! the engines poll at step boundaries.

pub use oblivion_signal::{install, request_shutdown, reset, shutdown_requested, SIGINT, SIGTERM};
