//! `oblivion-ckpt`: crash-consistent checkpoint/restore for long online
//! simulation runs, with no external dependencies.
//!
//! A production-scale router simulation can run for hours; an OOM-kill or
//! preemption should not discard the run. This crate provides the three
//! pieces the online engines need to make a killed run resumable with
//! **byte-identical** final metrics:
//!
//! * [`bytes`] — a validating little-endian codec ([`ByteWriter`] /
//!   [`ByteReader`]) so engine state serializes without serde and corrupt
//!   payloads decode to typed errors, never panics. (Shared via
//!   `oblivion-wire`; re-exported here so checkpoint callers keep one
//!   import path.)
//! * [`mod@crc32`] — standard CRC-32 (IEEE) with a const-built table; every
//!   snapshot carries a checksum over its metadata and payload. (Also
//!   re-exported from `oblivion-wire`.)
//! * [`store`] — a two-generation atomic snapshot [`Store`]: saves go
//!   write-temp → fsync → rename → fsync-dir, and the previous generation
//!   is kept so a torn or bit-flipped newest snapshot falls back cleanly.
//! * [`signal`] — SIGINT/SIGTERM handlers that set a flag engines poll at
//!   step boundaries, so a polite kill writes a final checkpoint. (The
//!   implementation lives in the shared `oblivion-signal` crate, used by
//!   both this store and the `oblivion-serve` drain loop; this module
//!   re-exports it.)
//!
//! The format is versioned ([`store::MAGIC`], [`store::VERSION`]) and
//! config-hashed: a snapshot only resumes a run with the same mesh,
//! workload, policy, seed, and fault plan.

#![warn(missing_docs)]
// The crate is entirely safe code; the `signal(2)` declaration moved to
// the shared `oblivion-signal` crate that `signal` re-exports.
#![deny(unsafe_op_in_unsafe_fn)]

pub use oblivion_wire::bytes;
// Imports the `crc32` module and the `crc32` function in one shot:
// `oblivion-wire` re-exports the function at its root alongside the
// module, so both `oblivion_ckpt::crc32(..)` and
// `oblivion_ckpt::crc32::crc32(..)` keep working.
pub use oblivion_wire::crc32;
pub mod signal;
pub mod store;

pub use bytes::{ByteReader, ByteWriter, CkptError};
pub use store::{LoadOutcome, Snapshot, Store};
