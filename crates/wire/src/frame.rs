//! Incremental LF framing for pipelined byte streams.
//!
//! Originally the serving layer's request framer; now shared with the
//! multi-process simulation handoff, whose supervisor reads worker
//! replies off a pipe with exactly the same rules. The framer survives
//! garbage between terminators and keeps memory bounded no matter what
//! the peer sends.

/// One framing outcome popped off a [`FrameBuf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Framed {
    /// A complete line (CR/LF stripped, valid UTF-8, within the length
    /// cap).
    Line(String),
    /// A complete line that broke the framing rules (over-long or not
    /// UTF-8). The terminator was found, so the reader can answer in
    /// order and the stream stays in sync.
    Bad(&'static str),
}

/// Incremental LF framing for a pipelined connection.
///
/// Bytes read off the socket (or pipe) go in via [`FrameBuf::extend`];
/// complete lines pop out of [`FrameBuf::next_line`] one at a time, and
/// a partial trailing line survives untouched until the next read.
///
/// Memory stays bounded no matter what the peer sends: once an
/// unterminated line passes the `max_line` cap the buffer is poisoned
/// and further bytes are discarded until the next LF, which then yields
/// a single [`Framed::Bad`]. A peer that never sends the LF is handled
/// by the reader's per-line deadline on partial input, not by memory
/// growth here.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    max_line: usize,
    poisoned: bool,
}

impl FrameBuf {
    /// An empty buffer enforcing `max_line` bytes per line.
    pub fn new(max_line: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_line,
            poisoned: false,
        }
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.poisoned {
            // Discard up to (and excluding) the resynchronizing LF.
            match bytes.iter().position(|&b| b == b'\n') {
                Some(nl) => self.buf.extend_from_slice(&bytes[nl..]),
                None => return,
            }
        } else {
            self.buf.extend_from_slice(bytes);
        }
        // Over-long unterminated tail: poison and drop the bytes so a
        // hostile peer cannot grow server memory (slow-loris defence).
        if !self.buf.contains(&b'\n') && self.buf.len() > self.max_line {
            self.buf.clear();
            self.poisoned = true;
        }
    }

    /// Pops the next complete line, if any. `None` means every buffered
    /// byte belongs to a still-partial trailing line.
    pub fn next_line(&mut self) -> Option<Framed> {
        let nl = match self.buf.iter().position(|&b| b == b'\n') {
            Some(nl) => nl,
            None => {
                if !self.poisoned && self.buf.len() > self.max_line {
                    self.buf.clear();
                    self.poisoned = true;
                }
                return None;
            }
        };
        let line: Vec<u8> = self.buf.drain(..=nl).collect();
        let mut line = &line[..nl];
        if self.poisoned {
            // The LF resynchronized the stream; the discarded line
            // becomes one in-order error.
            self.poisoned = false;
            return Some(Framed::Bad("request line too long"));
        }
        if line.ends_with(b"\r") {
            line = &line[..line.len() - 1];
        }
        if line.len() > self.max_line {
            return Some(Framed::Bad("request line too long"));
        }
        match std::str::from_utf8(line) {
            Ok(s) => Some(Framed::Line(s.to_string())),
            Err(_) => Some(Framed::Bad("request line is not valid UTF-8")),
        }
    }

    /// Whether a partial (unterminated) line is pending — including a
    /// poisoned one still awaiting its resynchronizing LF. Readers apply
    /// their per-line deadline to this state.
    pub fn has_partial(&self) -> bool {
        self.poisoned || !self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_pipelined_lines_across_reads() {
        let mut fb = FrameBuf::new(64);
        fb.extend(b"alpha\nbra");
        assert_eq!(fb.next_line(), Some(Framed::Line("alpha".into())));
        assert_eq!(fb.next_line(), None);
        assert!(fb.has_partial());
        fb.extend(b"vo\r\n");
        assert_eq!(fb.next_line(), Some(Framed::Line("bravo".into())));
        assert_eq!(fb.next_line(), None);
        assert!(!fb.has_partial());
    }

    #[test]
    fn overlong_line_poisons_and_resynchronizes() {
        let mut fb = FrameBuf::new(8);
        fb.extend(&[b'x'; 64]);
        assert_eq!(fb.next_line(), None);
        fb.extend(b"tail\nok\n");
        assert_eq!(fb.next_line(), Some(Framed::Bad("request line too long")));
        assert_eq!(fb.next_line(), Some(Framed::Line("ok".into())));
    }

    #[test]
    fn non_utf8_line_is_bad_but_stream_recovers() {
        let mut fb = FrameBuf::new(64);
        fb.extend(&[0xFF, 0xFE, b'\n', b'o', b'k', b'\n']);
        assert_eq!(
            fb.next_line(),
            Some(Framed::Bad("request line is not valid UTF-8"))
        );
        assert_eq!(fb.next_line(), Some(Framed::Line("ok".into())));
    }
}
