//! A checksummed single-line message codec.
//!
//! The multi-process simulation exchanges binary payloads (packet
//! states, per-shard tallies) over plain pipes, one message per LF
//! line so the [`crate::frame::FrameBuf`] framer applies unchanged. A
//! message is
//!
//! ```text
//! <TAG> <hex payload> <crc32 hex>\n
//! ```
//!
//! where the payload is lowercase hex (`-` when empty) and the CRC-32
//! covers the tag and the raw payload bytes, so neither a corrupted
//! payload nor a mislabeled tag decodes silently. Payload *contents*
//! are typically produced with the [`crate::bytes`] codec, which adds
//! per-field validation on top of this envelope's integrity check.

use crate::crc32::crc32;

/// A decoded message: its tag and raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// The message tag (first token of the line).
    pub tag: String,
    /// The decoded payload bytes (empty for bare messages).
    pub payload: Vec<u8>,
}

/// Why a line failed to decode as a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgError {
    /// The line does not have the three `tag payload crc` fields.
    Malformed(&'static str),
    /// The payload hex or the CRC field is not valid hex.
    BadHex,
    /// The CRC-32 did not match the tag + payload.
    Checksum {
        /// CRC computed over the received tag and payload.
        computed: u32,
        /// CRC stated on the line.
        stated: u32,
    },
}

impl std::fmt::Display for MsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgError::Malformed(d) => write!(f, "malformed message line: {d}"),
            MsgError::BadHex => write!(f, "message payload is not valid hex"),
            MsgError::Checksum { computed, stated } => write!(
                f,
                "message checksum mismatch (computed {computed:08x}, stated {stated:08x})"
            ),
        }
    }
}

impl std::error::Error for MsgError {}

fn crc_of(tag: &str, payload: &[u8]) -> u32 {
    let mut bytes = Vec::with_capacity(tag.len() + 1 + payload.len());
    bytes.extend_from_slice(tag.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(payload);
    crc32(&bytes)
}

/// Encodes a tag + payload as one LF-terminated message line.
///
/// # Panics
/// Panics if `tag` is empty or contains whitespace (tags are protocol
/// constants, so this is a programming error, not an input error).
pub fn encode_msg(tag: &str, payload: &[u8]) -> String {
    assert!(
        !tag.is_empty() && !tag.contains(char::is_whitespace),
        "message tag must be a single non-empty token"
    );
    use std::fmt::Write;
    let crc = crc_of(tag, payload);
    let mut line = String::with_capacity(tag.len() + 2 * payload.len() + 12);
    line.push_str(tag);
    line.push(' ');
    if payload.is_empty() {
        line.push('-');
    } else {
        for b in payload {
            let _ = write!(line, "{b:02x}");
        }
    }
    let _ = write!(line, " {crc:08x}");
    line.push('\n');
    line
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Decodes one message line (without its trailing LF), verifying the
/// CRC over the tag and payload.
pub fn decode_msg(line: &str) -> Result<Msg, MsgError> {
    let mut parts = line.split(' ');
    let tag = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or(MsgError::Malformed("empty line"))?;
    let hex = parts.next().ok_or(MsgError::Malformed("missing payload"))?;
    let crc_hex = parts.next().ok_or(MsgError::Malformed("missing crc"))?;
    if parts.next().is_some() {
        return Err(MsgError::Malformed("trailing fields"));
    }
    let payload = if hex == "-" {
        Vec::new()
    } else {
        let bytes = hex.as_bytes();
        if bytes.len() % 2 != 0 {
            return Err(MsgError::BadHex);
        }
        let mut out = Vec::with_capacity(bytes.len() / 2);
        for pair in bytes.chunks_exact(2) {
            let (hi, lo) = (hex_val(pair[0]), hex_val(pair[1]));
            match (hi, lo) {
                (Some(hi), Some(lo)) => out.push((hi << 4) | lo),
                _ => return Err(MsgError::BadHex),
            }
        }
        out
    };
    if crc_hex.len() != 8 {
        return Err(MsgError::BadHex);
    }
    let stated = u32::from_str_radix(crc_hex, 16).map_err(|_| MsgError::BadHex)?;
    let computed = crc_of(tag, &payload);
    if computed != stated {
        return Err(MsgError::Checksum { computed, stated });
    }
    Ok(Msg {
        tag: tag.to_string(),
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_and_without_payload() {
        for payload in [&[][..], &[0u8, 1, 2, 0xFF, 0x7E]] {
            let line = encode_msg("STEP", payload);
            assert!(line.ends_with('\n'));
            let msg = decode_msg(line.trim_end()).unwrap();
            assert_eq!(msg.tag, "STEP");
            assert_eq!(msg.payload, payload);
        }
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let line = encode_msg("DONE", &[0xAB, 0xCD]);
        let corrupted = line.trim_end().replacen("abcd", "abcc", 1);
        assert!(matches!(
            decode_msg(&corrupted),
            Err(MsgError::Checksum { .. })
        ));
    }

    #[test]
    fn tag_is_covered_by_the_checksum() {
        let line = encode_msg("SNAP", &[1, 2, 3]);
        let retagged = line.trim_end().replacen("SNAP", "STEP", 1);
        assert!(matches!(
            decode_msg(&retagged),
            Err(MsgError::Checksum { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(decode_msg("").is_err());
        assert!(decode_msg("STEP").is_err());
        assert!(decode_msg("STEP abc").is_err());
        assert!(decode_msg("STEP xyz 00000000").is_err());
        assert!(decode_msg("STEP - 0000000").is_err());
        assert!(decode_msg("STEP - 00000000 extra").is_err());
    }
}
