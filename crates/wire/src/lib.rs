//! `oblivion-wire`: shared wire-format primitives.
//!
//! Three independent subsystems of the workspace speak length-checked,
//! checksummed byte protocols: the TCP serving layer (`oblivion-serve`),
//! the crash-consistent checkpoint store (`oblivion-ckpt`), and the
//! multi-process simulation supervisor (`oblivion_sim::procs`). This
//! crate is the one place their framing and integrity machinery lives,
//! so a poisoning bug or a checksum change cannot drift between them:
//!
//! * [`frame`] — incremental LF framing for pipelined byte streams
//!   ([`FrameBuf`]), with bounded memory under hostile input (over-long
//!   unterminated lines poison the buffer and resynchronize at the next
//!   LF).
//! * [`mod@crc32`] — standard CRC-32 (IEEE) with a const-built table.
//! * [`bytes`] — the validating little-endian codec ([`ByteWriter`] /
//!   [`ByteReader`]): corrupt payloads decode to typed errors, never
//!   panics.
//! * [`msg`] — a checksummed single-line message codec
//!   (`TAG <hex payload> <crc>`): binary payloads framed as LF lines,
//!   CRC-verified on decode. The inter-process step handoff runs on it.
//!
//! Dependency-free like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod crc32;
pub mod frame;
pub mod msg;

pub use bytes::{ByteReader, ByteWriter, CkptError};
pub use crc32::crc32;
pub use frame::{FrameBuf, Framed};
pub use msg::{decode_msg, encode_msg, Msg, MsgError};
