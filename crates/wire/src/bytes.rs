//! A tiny little-endian byte codec for checkpoint payloads.
//!
//! Serde-free by design (the workspace is dependency-free): writers emit
//! fixed-width little-endian integers and length-prefixed sequences;
//! readers validate every length against the remaining buffer so a
//! truncated or corrupted payload surfaces as a typed [`CkptError`]
//! instead of a panic or an out-of-bounds slice.

use std::fmt;

/// Errors surfaced while encoding, decoding, or storing snapshots.
#[derive(Debug)]
pub enum CkptError {
    /// Payload ended before a field could be read.
    Truncated {
        /// What was being decoded when the bytes ran out.
        field: &'static str,
    },
    /// A decoded value is structurally impossible (e.g. a length larger
    /// than the remaining payload).
    Malformed {
        /// What was being decoded.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The snapshot checksum or magic/version header did not match.
    Integrity(String),
    /// The snapshot was written for a different run configuration.
    ConfigMismatch {
        /// Hash stored in the snapshot.
        found: u64,
        /// Hash of the current run configuration.
        expected: u64,
    },
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { field } => {
                write!(f, "checkpoint payload truncated while reading {field}")
            }
            CkptError::Malformed { field, detail } => {
                write!(f, "checkpoint payload malformed at {field}: {detail}")
            }
            CkptError::Integrity(msg) => write!(f, "checkpoint integrity check failed: {msg}"),
            CkptError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different run configuration \
                 (snapshot config hash {found:#018x}, current {expected:#018x})"
            ),
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a u64 (checkpoints are portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed slice of u64s.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    /// Appends a length-prefixed slice of usizes (as u64s).
    pub fn usize_slice(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Validating little-endian decoder over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches trailing
    /// garbage that a length-prefixed format would otherwise ignore.
    pub fn finish(self, field: &'static str) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Malformed {
                field,
                detail: format!("{} trailing bytes", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { field });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, CkptError> {
        let mut w = [0u8; 4];
        w.copy_from_slice(self.take(4, field)?);
        Ok(u32::from_le_bytes(w))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, CkptError> {
        let mut w = [0u8; 8];
        w.copy_from_slice(self.take(8, field)?);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a usize stored as u64, rejecting values over the platform's
    /// address range.
    pub fn usize(&mut self, field: &'static str) -> Result<usize, CkptError> {
        let v = self.u64(field)?;
        usize::try_from(v).map_err(|_| CkptError::Malformed {
            field,
            detail: format!("value {v} exceeds usize"),
        })
    }

    /// Reads a length prefix, rejecting lengths that could not possibly
    /// fit in the remaining payload (each element is at least
    /// `min_elem_bytes` wide). This bounds allocations on corrupt input.
    pub fn len_prefix(
        &mut self,
        min_elem_bytes: usize,
        field: &'static str,
    ) -> Result<usize, CkptError> {
        let n = self.usize(field)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CkptError::Malformed {
                field,
                detail: format!(
                    "length {n} exceeds remaining payload ({})",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed slice of u64s.
    pub fn u64_vec(&mut self, field: &'static str) -> Result<Vec<u64>, CkptError> {
        let n = self.len_prefix(8, field)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(field)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed slice of usizes.
    pub fn usize_vec(&mut self, field: &'static str) -> Result<Vec<usize>, CkptError> {
        let n = self.len_prefix(8, field)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.usize(field)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, field: &'static str) -> Result<String, CkptError> {
        let n = self.len_prefix(1, field)?;
        let bytes = self.take(n, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Malformed {
            field,
            detail: "invalid utf-8".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(123_456);
        w.u64_slice(&[1, 2, 3]);
        w.usize_slice(&[9, 8]);
        w.str("hello ✓");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.usize("d").unwrap(), 123_456);
        assert_eq!(r.u64_vec("e").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.usize_vec("f").unwrap(), vec![9, 8]);
        assert_eq!(r.str("g").unwrap(), "hello ✓");
        r.finish("end").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64_slice(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.u64_vec("xs").is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn absurd_length_prefix_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // length prefix claiming 2^64-1 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.u64_vec("xs"), Err(CkptError::Malformed { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8("a").unwrap();
        assert!(r.finish("end").is_err());
    }
}
