//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with a
//! const-built lookup table — the same checksum gzip and zip use, so
//! snapshots can be verified with standard tools if ever needed.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"checkpoint payload under test".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
