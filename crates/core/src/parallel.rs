//! Parallel path selection.
//!
//! Obliviousness is embarrassingly parallel — each packet's path depends
//! only on its own `(s, t)` and private randomness — so routing a large
//! problem should scale linearly with cores. The subtlety is
//! **reproducibility**: sharing one RNG across threads would make results
//! depend on scheduling. Instead, each packet gets its own RNG seeded from
//! `(base_seed, packet index)` via SplitMix64, which makes the output a
//! pure function of the inputs: identical for any thread count, including
//! the sequential reference.

use crate::router::ObliviousRouter;
use oblivion_mesh::{Coord, Path};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64: a fast, well-distributed 64→64-bit mixer, used to derive
/// per-packet seeds from `(base_seed, index)`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The RNG for packet `i` under `base_seed`.
fn packet_rng(base_seed: u64, i: usize) -> StdRng {
    StdRng::seed_from_u64(splitmix64(base_seed ^ splitmix64(i as u64)))
}

/// Sequential reference: routes every pair with an independent per-packet
/// RNG derived from `(base_seed, index)`.
///
/// Produces exactly the same paths as [`route_all_parallel`] with any
/// thread count.
pub fn route_all_seeded<R: ObliviousRouter + ?Sized>(
    router: &R,
    pairs: &[(Coord, Coord)],
    base_seed: u64,
) -> Vec<Path> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, (s, t))| {
            let mut rng = packet_rng(base_seed, i);
            router.select_path(s, t, &mut rng).path
        })
        .collect()
}

/// Routes every pair across `threads` OS threads (crossbeam scoped), with
/// per-packet deterministic seeding.
///
/// ```
/// use oblivion_core::{route_all_parallel, route_all_seeded, Busch2D};
/// use oblivion_mesh::{Coord, Mesh};
///
/// let mesh = Mesh::new_mesh(&[16, 16]);
/// let router = Busch2D::new(mesh.clone());
/// let pairs = vec![(Coord::new(&[0, 0]), Coord::new(&[15, 15]))];
/// // Identical output for any thread count:
/// assert_eq!(
///     route_all_parallel(&router, &pairs, 7, 4),
///     route_all_seeded(&router, &pairs, 7),
/// );
/// ```
///
/// # Panics
/// Panics if `threads == 0`.
pub fn route_all_parallel<R: ObliviousRouter + Sync + ?Sized>(
    router: &R,
    pairs: &[(Coord, Coord)],
    base_seed: u64,
    threads: usize,
) -> Vec<Path> {
    assert!(threads >= 1);
    if threads == 1 || pairs.len() < 2 {
        return route_all_seeded(router, pairs, base_seed);
    }
    let mut out: Vec<Option<Path>> = vec![None; pairs.len()];
    // Static block partition: chunk c handles indices [c*chunk, (c+1)*chunk).
    let chunk = pairs.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let offset = c * chunk;
            scope.spawn(move |_| {
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    let i = offset + j;
                    let (s, t) = &pairs[i];
                    let mut rng = packet_rng(base_seed, i);
                    *slot = Some(router.select_path(s, t, &mut rng).path);
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Busch2D, BuschD, Valiant};
    use oblivion_mesh::Mesh;
    use rand::Rng;

    fn pairs(mesh: &Mesh, n: usize, seed: u64) -> Vec<(Coord, Coord)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a = mesh.coord(oblivion_mesh::NodeId(rng.gen_range(0..mesh.node_count())));
                let b = mesh.coord(oblivion_mesh::NodeId(rng.gen_range(0..mesh.node_count())));
                (a, b)
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential_for_any_thread_count() {
        let mesh = Mesh::new_mesh(&[32, 32]);
        let router = Busch2D::new(mesh.clone());
        let ps = pairs(&mesh, 300, 1);
        let reference = route_all_seeded(&router, &ps, 99);
        for threads in [1usize, 2, 3, 7, 16] {
            let par = route_all_parallel(&router, &ps, 99, threads);
            assert_eq!(par, reference, "threads = {threads}");
        }
    }

    #[test]
    fn different_seeds_give_different_routings() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        let router = Busch2D::new(mesh.clone());
        let ps = pairs(&mesh, 100, 2);
        let a = route_all_seeded(&router, &ps, 1);
        let b = route_all_seeded(&router, &ps, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn packets_are_independent_of_position() {
        // Moving a pair to a different index must not change OTHER packets'
        // paths relative to their own index — per-packet seeding isolates
        // them completely.
        let mesh = Mesh::new_mesh(&[16, 16]);
        let router = BuschD::new(mesh.clone());
        let ps = pairs(&mesh, 50, 3);
        let full = route_all_seeded(&router, &ps, 7);
        // Route only a prefix: identical prefix paths.
        let prefix = route_all_seeded(&router, &ps[..20], 7);
        assert_eq!(&full[..20], &prefix[..]);
    }

    #[test]
    fn all_paths_valid_under_parallelism() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        let router = Valiant::new(mesh.clone());
        let ps = pairs(&mesh, 200, 4);
        for p in route_all_parallel(&router, &ps, 5, 4) {
            assert!(p.is_valid(&mesh));
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let router = Busch2D::new(mesh.clone());
        assert!(route_all_parallel(&router, &[], 1, 8).is_empty());
        let one = pairs(&mesh, 1, 5);
        assert_eq!(route_all_parallel(&router, &one, 1, 8).len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let router = Busch2D::new(mesh.clone());
        let _ = route_all_parallel(&router, &[], 1, 0);
    }
}
