//! The paper's `d`-dimensional algorithm **H** (Section 4).
//!
//! The packet climbs the type-1 hierarchy from `s` one level at a time up
//! to `M₁` (height `ĥ = ⌈log₂ dist⌉`), hops to a random way-point in the
//! **bridge** `M₂` (a diagonal-shift block of side `O(d·dist)` fully
//! containing `M₁ ∪ M₃`, Lemma 4.1), hops down into `M₃`, and descends the
//! type-1 hierarchy to `t`. Guarantees on the `(2^k)^d` mesh:
//!
//! * stretch `O(d²)` (Theorem 4.2);
//! * congestion `O(d² C* log n)` w.h.p. (Theorem 4.3);
//! * `O(d log(D'd))` random bits per packet in recycled mode (Lemma 5.4).

use crate::chain::{path_through_chain, RandomnessMode};
use crate::randbits::BitMeter;
use crate::router::{ObliviousRouter, PathQuery, RoutedPath};
use oblivion_decomp::DecompD;
use oblivion_mesh::{Coord, Mesh, Path, Submesh};
use rand::{RngCore, SeedableRng};

/// The `d`-dimensional bridge router (algorithm H).
///
/// ```
/// use oblivion_core::{BuschD, ObliviousRouter, stretch_bound};
/// use oblivion_mesh::{Coord, Mesh};
/// use rand::SeedableRng;
///
/// let mesh = Mesh::new_mesh(&[16, 16, 16]);
/// let router = BuschD::new(mesh.clone());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = Coord::new(&[1, 2, 3]);
/// let t = Coord::new(&[14, 0, 9]);
/// let routed = router.select_path(&s, &t, &mut rng);
/// assert!(routed.path.is_valid(&mesh));
/// // Theorem 4.2: stretch O(d^2), with the explicit analysis constant.
/// assert!(routed.path.stretch(&mesh) <= stretch_bound(3));
/// ```
#[derive(Debug, Clone)]
pub struct BuschD {
    mesh: Mesh,
    decomp: DecompD,
    mode: RandomnessMode,
    remove_cycles: bool,
}

impl BuschD {
    /// Creates the router for the equal-side `(2^k)^d` mesh.
    ///
    /// # Panics
    /// Panics if sides differ or are not powers of two.
    pub fn new(mesh: Mesh) -> Self {
        let _span = oblivion_obs::span("decomposition");
        let decomp = DecompD::for_mesh(&mesh);
        Self {
            mesh,
            decomp,
            mode: RandomnessMode::default(),
            remove_cycles: true,
        }
    }

    /// Selects the randomness discipline (default: bit-recycled).
    pub fn with_mode(mut self, mode: RandomnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// Keeps or removes cycles in emitted paths (default: removed).
    pub fn with_cycle_removal(mut self, on: bool) -> Self {
        self.remove_cycles = on;
        self
    }

    /// The decomposition in use.
    pub fn decomp(&self) -> &DecompD {
        &self.decomp
    }

    /// The submesh chain for `(s, t)`: `{s}`, type-1 blocks of heights
    /// `1..=ĥ`, the bridge, mirrored type-1 blocks down to `{t}`.
    pub fn chain(&self, s: &Coord, t: &Coord) -> Vec<Submesh> {
        let mut chain = Vec::new();
        self.chain_into(s, t, &mut chain);
        chain
    }

    /// [`Self::chain`] into a caller-owned buffer (cleared first) so a
    /// batch of selections reuses one allocation — the scratch half of
    /// [`ObliviousRouter::route_batch`].
    pub fn chain_into(&self, s: &Coord, t: &Coord, chain: &mut Vec<Submesh>) {
        chain.clear();
        if s == t {
            chain.push(Submesh::point(*s));
            return;
        }
        let k = self.decomp.k();
        let plan = self.decomp.find_bridge(&self.mesh, s, t);
        oblivion_obs::record("access_height_climbed", plan.h_hat as u64);
        oblivion_obs::counter_add(
            if plan.bridge_type == 1 {
                "bridge_tree_hits"
            } else {
                "bridge_shifted_hits"
            },
            1,
        );
        chain.reserve(2 * plan.h_hat as usize + 3);
        chain.push(Submesh::point(*s));
        for height in 1..=plan.h_hat {
            chain.push(self.decomp.type1_block(k - height, s));
        }
        chain.push(plan.bridge);
        for height in (1..=plan.h_hat).rev() {
            chain.push(self.decomp.type1_block(k - height, t));
        }
        chain.push(Submesh::point(*t));
        chain.dedup();
    }
}

impl ObliviousRouter for BuschD {
    fn name(&self) -> String {
        // "busch-d3/recycled" — note the d *prefix* on the dimension so
        // the name never collides with the 2-D specialization "busch-2d".
        format!("busch-d{}/{:?}", self.decomp.d(), self.mode).to_lowercase()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        let chain = self.chain(s, t);
        let mut meter = BitMeter::new(rng);
        let mut path: Path = path_through_chain(&self.mesh, &chain, self.mode, &mut meter);
        if self.remove_cycles {
            path.remove_cycles();
        }
        RoutedPath {
            path,
            random_bits: meter.bits_used(),
        }
    }

    fn route_batch(&self, queries: &[PathQuery], out: &mut Vec<RoutedPath>) {
        out.clear();
        out.reserve(queries.len());
        let mut chain: Vec<Submesh> = Vec::new();
        for q in queries {
            // Fresh per-query seeding keeps every answer byte-identical
            // to a single-shot select_path; only the scratch is shared.
            let mut rng = rand::rngs::StdRng::seed_from_u64(q.seed);
            self.chain_into(&q.src, &q.dst, &mut chain);
            let mut meter = BitMeter::new(&mut rng);
            let mut path: Path = path_through_chain(&self.mesh, &chain, self.mode, &mut meter);
            if self.remove_cycles {
                path.remove_cycles();
            }
            out.push(RoutedPath {
                path,
                random_bits: meter.bits_used(),
            });
        }
    }
}

/// An explicit worst-case stretch constant implied by Theorem 4.2's
/// analysis, used by tests: `|p| ≤ 8d·dist + 16d(d+1)·dist + 4d·dist`.
///
/// (`r₁ = r₃ ≤ 2·d·2^{ĥ+1} ≤ 8d·dist`; `r₂ ≤ 2d·(bridge side) ≤
/// 16d(d+1)·dist`; slack folded in.)
pub fn stretch_bound(d: usize) -> f64 {
    let d = d as f64;
    8.0 * d + 16.0 * d * (d + 1.0) + 4.0 * d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn router(d: usize, k: u32) -> BuschD {
        BuschD::new(Mesh::new_mesh(&vec![1u32 << k; d]))
    }

    fn rand_coord(rng: &mut StdRng, d: usize, side: u32) -> Coord {
        Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>())
    }

    #[test]
    fn paths_are_valid_across_dimensions() {
        let mut rng = StdRng::seed_from_u64(21);
        for (d, k) in [(1usize, 6u32), (2, 5), (3, 3), (4, 2)] {
            let r = router(d, k);
            for _ in 0..100 {
                let s = rand_coord(&mut rng, d, 1 << k);
                let t = rand_coord(&mut rng, d, 1 << k);
                let rp = r.select_path(&s, &t, &mut rng);
                assert!(rp.path.is_valid(r.mesh()), "d={d} {s:?}->{t:?}");
                assert_eq!(rp.path.source(), &s);
                assert_eq!(rp.path.target(), &t);
            }
        }
    }

    /// Theorem 4.2: stretch O(d²) with the explicit constant of
    /// [`stretch_bound`].
    #[test]
    fn stretch_bound_holds() {
        let mut rng = StdRng::seed_from_u64(22);
        for (d, k) in [(1usize, 7u32), (2, 5), (3, 3)] {
            let r = router(d, k);
            let mesh = r.mesh().clone();
            let bound = stretch_bound(d);
            for _ in 0..300 {
                let s = rand_coord(&mut rng, d, 1 << k);
                let t = rand_coord(&mut rng, d, 1 << k);
                if s == t {
                    continue;
                }
                let rp = r.select_path(&s, &t, &mut rng);
                let st = rp.path.stretch(&mesh);
                assert!(st <= bound, "d={d} stretch {st} > {bound} for {s:?}->{t:?}");
            }
        }
    }

    /// In 2-D, algorithm H's stretch should stay comfortably constant
    /// (the d-D analysis gives ≤ stretch_bound(2) = 120, but actual
    /// values are far lower; we sanity-check a loose 64 here too).
    #[test]
    fn stretch_2d_small_in_practice() {
        let mut rng = StdRng::seed_from_u64(23);
        let r = router(2, 5);
        let mesh = r.mesh().clone();
        let mut worst: f64 = 0.0;
        for _ in 0..500 {
            let s = rand_coord(&mut rng, 2, 32);
            let t = rand_coord(&mut rng, 2, 32);
            if s == t {
                continue;
            }
            let rp = r.select_path(&s, &t, &mut rng);
            worst = worst.max(rp.path.stretch(&mesh));
        }
        assert!(worst <= 64.0, "worst stretch {worst}");
    }

    #[test]
    fn adjacent_central_nodes_stay_local() {
        // The access-tree pathology: neighbors straddling the central cut.
        let r = router(3, 4);
        let s = Coord::new(&[7, 7, 7]);
        let t = Coord::new(&[8, 7, 7]);
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..50 {
            let rp = r.select_path(&s, &t, &mut rng);
            assert!(
                (rp.path.len() as f64) <= stretch_bound(3),
                "len {}",
                rp.path.len()
            );
        }
    }

    #[test]
    fn recycled_bits_beat_fresh() {
        let fresh = router(3, 4).with_mode(RandomnessMode::Fresh);
        let recycled = router(3, 4).with_mode(RandomnessMode::Recycled);
        let mut rng = StdRng::seed_from_u64(25);
        let (mut bf, mut br) = (0u64, 0u64);
        for _ in 0..200 {
            let s = rand_coord(&mut rng, 3, 16);
            let t = rand_coord(&mut rng, 3, 16);
            if s == t {
                continue;
            }
            bf += fresh.select_path(&s, &t, &mut rng).random_bits;
            br += recycled.select_path(&s, &t, &mut rng).random_bits;
        }
        assert!(br < bf, "recycled {br} !< fresh {bf}");
    }

    /// Lemma 5.4: recycled bits are O(d log(D'd)). Check the explicit form
    /// `bits ≤ C·d·(log₂(D'·d) + 1)` with a generous constant C = 8.
    #[test]
    fn recycled_bit_budget() {
        let mut rng = StdRng::seed_from_u64(26);
        for (d, k) in [(1usize, 7u32), (2, 5), (3, 3)] {
            let r = router(d, k);
            let mesh = r.mesh().clone();
            for _ in 0..200 {
                let s = rand_coord(&mut rng, d, 1 << k);
                let t = rand_coord(&mut rng, d, 1 << k);
                if s == t {
                    continue;
                }
                let dist = mesh.dist(&s, &t);
                let rp = r.select_path(&s, &t, &mut rng);
                let budget = 8.0 * d as f64 * (((dist * d as u64) as f64).log2() + 1.0).max(1.0);
                assert!(
                    (rp.random_bits as f64) <= budget,
                    "d={d} dist={dist} bits={} budget={budget}",
                    rp.random_bits
                );
            }
        }
    }

    #[test]
    fn chain_shape() {
        let r = router(2, 5);
        let s = Coord::new(&[3, 3]);
        let t = Coord::new(&[28, 28]);
        let chain = r.chain(&s, &t);
        // dist = 50 → ĥ = min(6, k)=5 → M1 covers whole mesh? side 32 = 2^5.
        // Chain climbs to the root and back.
        assert_eq!(chain.first().unwrap().node_count(), 1);
        assert_eq!(chain.last().unwrap().node_count(), 1);
        for w in chain.windows(2) {
            assert!(
                w[0].contains_submesh(&w[1]) || w[1].contains_submesh(&w[0]),
                "non-nested consecutive blocks {:?} {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// route_batch ≡ per-query select_path, including the s == t and
    /// repeated-query cases a pipelined burst can contain.
    #[test]
    fn route_batch_matches_single_shot() {
        let mut rng = StdRng::seed_from_u64(28);
        let r = router(3, 3);
        let mut queries: Vec<PathQuery> = (0..30)
            .map(|i| PathQuery {
                seed: 0xD00 + i,
                src: rand_coord(&mut rng, 3, 8),
                dst: rand_coord(&mut rng, 3, 8),
            })
            .collect();
        let same = Coord::new(&[2, 2, 2]);
        queries.push(PathQuery {
            seed: 5,
            src: same,
            dst: same,
        });
        queries.push(queries[0].clone());
        let mut batch = Vec::new();
        r.route_batch(&queries, &mut batch);
        assert_eq!(batch.len(), queries.len());
        for (q, rp) in queries.iter().zip(&batch) {
            let mut rng = StdRng::seed_from_u64(q.seed);
            let single = r.select_path(&q.src, &q.dst, &mut rng);
            assert_eq!(single.path.nodes(), rp.path.nodes(), "seed {}", q.seed);
            assert_eq!(single.random_bits, rp.random_bits);
        }
    }

    #[test]
    fn one_dimension_works() {
        let r = router(1, 6);
        let mut rng = StdRng::seed_from_u64(27);
        let s = Coord::new(&[31]);
        let t = Coord::new(&[32]);
        for _ in 0..20 {
            let rp = r.select_path(&s, &t, &mut rng);
            assert!(rp.path.is_valid(r.mesh()));
            assert!(rp.path.len() <= 28, "1-D stretch blowup: {}", rp.path.len());
        }
    }
}
