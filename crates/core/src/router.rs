//! The oblivious-router interface.

use oblivion_mesh::{Coord, Mesh, Path};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A path together with the number of random bits spent selecting it.
#[derive(Debug, Clone)]
pub struct RoutedPath {
    /// The selected packet path.
    pub path: Path,
    /// Random bits consumed (Section 5 accounting; 0 for deterministic
    /// algorithms).
    pub random_bits: u64,
}

/// One path request of a batch: the seed fixes the private randomness,
/// so the answer is a pure function of `(router, seed, src, dst)` —
/// exactly the serving layer's determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    /// Seed for the request's private randomness.
    pub seed: u64,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
}

/// An oblivious path-selection algorithm.
///
/// *Oblivious* means [`Self::select_path`] depends only on the single
/// source/destination pair (plus private randomness) — never on other
/// packets. All implementations in this crate uphold that by construction:
/// they receive nothing but `(s, t, rng)`.
///
/// Routers are `Send + Sync`: path selection is stateless per call, so
/// one router instance can serve packets from many threads at once (see
/// `route_all_parallel` and the sharded online simulator).
pub trait ObliviousRouter: Send + Sync {
    /// Human-readable algorithm name for reports.
    fn name(&self) -> String;

    /// The mesh this router routes on.
    fn mesh(&self) -> &Mesh;

    /// Approximate bytes of routing state this router holds alive —
    /// the mesh's own tables plus any per-router precomputation. The
    /// serving layer's registry exposes this per tenant
    /// (`mesh_state_bytes`) so the memory cost of keeping a mesh
    /// registered is a measured quantity, in the spirit of the
    /// compact-routing literature (Räcke–Schmid; Czerner–Räcke), not an
    /// accident. The default charges just the mesh; routers carrying
    /// extra precomputed state should add it on top.
    fn state_bytes(&self) -> u64 {
        self.mesh().state_bytes()
    }

    /// Selects a path from `s` to `t` using `rng` as the only source of
    /// randomness. Must return a valid walk from `s` to `t`.
    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath;

    /// Redraws the path of an in-flight packet from its `current` node to
    /// `t` with fresh random bits — the fault-recovery entry point used by
    /// the online simulators' `resample` policy.
    ///
    /// Because the router is oblivious, the redraw is just another
    /// independent `(current, t)` selection: the new path is independent
    /// of the failed one, which is exactly why a handful of resamples
    /// route around any non-disconnecting fault set. Routers whose
    /// selection is position-dependent can override this.
    fn resample_path(&self, current: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        self.select_path(current, t, rng)
    }

    /// Answers a burst of queries in one pass, appending one
    /// [`RoutedPath`] per query into `out` (cleared first, same order).
    ///
    /// Each query is routed with its own `StdRng::seed_from_u64(seed)`,
    /// so every answer is byte-identical to a single-shot
    /// [`Self::select_path`] with that seed — batching is purely a
    /// throughput optimization and callers may mix the two freely.
    /// Implementations override this to reuse scratch buffers across the
    /// burst (chain storage, RNG state) instead of allocating per query.
    fn route_batch(&self, queries: &[PathQuery], out: &mut Vec<RoutedPath>) {
        out.clear();
        out.reserve(queries.len());
        for q in queries {
            let mut rng = StdRng::seed_from_u64(q.seed);
            out.push(self.select_path(&q.src, &q.dst, &mut rng));
        }
    }
}

/// Routes every pair of a routing problem, returning the selected paths.
///
/// This is the "time zero" moment of the synchronous model: all packets
/// select paths simultaneously and independently.
pub fn route_all<R: ObliviousRouter + ?Sized>(
    router: &R,
    pairs: &[(Coord, Coord)],
    rng: &mut dyn RngCore,
) -> Vec<Path> {
    pairs
        .iter()
        .map(|(s, t)| router.select_path(s, t, rng).path)
        .collect()
}

/// Like [`route_all`] but also returns total and maximum per-packet
/// random-bit usage: `(paths, total_bits, max_bits)`.
pub fn route_all_metered<R: ObliviousRouter + ?Sized>(
    router: &R,
    pairs: &[(Coord, Coord)],
    rng: &mut dyn RngCore,
) -> (Vec<Path>, u64, u64) {
    let _span = oblivion_obs::span("path_selection");
    let mut total = 0u64;
    let mut max = 0u64;
    let paths: Vec<Path> = pairs
        .iter()
        .map(|(s, t)| {
            let rp = router.select_path(s, t, rng);
            total += rp.random_bits;
            max = max.max(rp.random_bits);
            oblivion_obs::counter_add("packets_routed", 1);
            oblivion_obs::record("random_bits_per_packet", rp.random_bits);
            oblivion_obs::record("path_hops", rp.path.len() as u64);
            rp.path
        })
        .collect();
    oblivion_obs::counter_add("random_bits_total", total);
    (paths, total, max)
}
