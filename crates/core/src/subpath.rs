//! Dimension-by-dimension shortest subpaths.
//!
//! Every subpath `r_i` of the paper's algorithm walks from one random node
//! to the next by correcting coordinates one dimension at a time, in a
//! (possibly random) dimension order — in 2-D this is the classic
//! "at most one-bend" path of Lemma 3.5. Such a walk is always a shortest
//! path between its endpoints.

use oblivion_mesh::{Coord, Mesh};

/// Appends to `out` the nodes of the dimension-by-dimension shortest walk
/// from `*cur` to `to`, visiting dimensions in `order`; `*cur` itself is
/// **not** appended (callers seed it). Afterwards `*cur == to`.
pub fn extend_dim_by_dim(
    mesh: &Mesh,
    cur: &mut Coord,
    to: &Coord,
    order: &[usize],
    out: &mut Vec<Coord>,
) {
    debug_assert_eq!(cur.dim(), to.dim());
    debug_assert_eq!(order.len(), cur.dim());
    for &axis in order {
        while let Some(next) = mesh.step_towards(cur, to[axis], axis) {
            out.push(next);
            *cur = next;
        }
    }
    debug_assert_eq!(cur, to);
}

/// The full dimension-by-dimension walk from `from` to `to` as a node list
/// (including both endpoints).
pub fn dim_by_dim(mesh: &Mesh, from: &Coord, to: &Coord, order: &[usize]) -> Vec<Coord> {
    let mut out = vec![*from];
    let mut cur = *from;
    extend_dim_by_dim(mesh, &mut cur, to, order, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_mesh::Path;

    fn c(xs: &[u32]) -> Coord {
        Coord::new(xs)
    }

    #[test]
    fn xy_path_is_one_bend() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let nodes = dim_by_dim(&mesh, &c(&[1, 1]), &c(&[4, 6]), &[0, 1]);
        let p = Path::new(&mesh, nodes);
        assert_eq!(p.len() as u64, mesh.dist(&c(&[1, 1]), &c(&[4, 6])));
        // First leg moves only in x, second only in y.
        let corner = c(&[4, 1]);
        assert!(p.nodes().contains(&corner));
    }

    #[test]
    fn yx_path_bends_the_other_way() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let nodes = dim_by_dim(&mesh, &c(&[1, 1]), &c(&[4, 6]), &[1, 0]);
        let p = Path::new(&mesh, nodes);
        assert!(p.nodes().contains(&c(&[1, 6])));
        assert_eq!(p.len() as u64, 8);
    }

    #[test]
    fn walk_is_always_shortest() {
        let mesh = Mesh::new_mesh(&[4, 4, 4]);
        let from = c(&[0, 3, 1]);
        let to = c(&[3, 0, 2]);
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let nodes = dim_by_dim(&mesh, &from, &to, &order);
            let p = Path::new(&mesh, nodes);
            assert_eq!(p.len() as u64, mesh.dist(&from, &to));
        }
    }

    #[test]
    fn trivial_walk() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let nodes = dim_by_dim(&mesh, &c(&[2, 2]), &c(&[2, 2]), &[0, 1]);
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn torus_walk_takes_wrap_shortcut() {
        let mesh = Mesh::new_torus(&[8, 8]);
        let nodes = dim_by_dim(&mesh, &c(&[0, 0]), &c(&[7, 0]), &[0, 1]);
        let p = Path::new(&mesh, nodes);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn extend_does_not_duplicate_seed() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let mut cur = c(&[0, 0]);
        let mut out = vec![cur];
        extend_dim_by_dim(&mesh, &mut cur, &c(&[1, 1]), &[0, 1], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], c(&[0, 0]));
    }
}
