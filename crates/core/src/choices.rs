//! Empirical κ-choice analysis (Section 5).
//!
//! The paper frames randomized oblivious algorithms as **κ-choice**: for
//! each `(s, t)` the algorithm picks one of κ candidate paths under some
//! distribution, paying `log κ` random bits. Lemma 5.3 shows any
//! algorithm with congestion comparable to H needs
//! `κ = Ω(ℓ/(d^{1+1/d}))`-many choices on distance-ℓ problems. This module
//! estimates, by sampling, the *effective* choice count of a router on a
//! pair: the support size and the Shannon entropy of its empirical path
//! distribution — the operational side of the paper's counting argument.

use crate::router::ObliviousRouter;
use oblivion_mesh::Coord;
use rand::RngCore;
use std::collections::HashMap;

/// Empirical path-choice profile of a router on one `(s, t)` pair.
#[derive(Debug, Clone)]
pub struct ChoiceProfile {
    /// Number of sampled paths.
    pub samples: usize,
    /// Number of distinct paths observed (a lower bound on κ).
    pub support: usize,
    /// Shannon entropy of the empirical distribution, in bits
    /// (a lower bound estimate of the *useful* random bits spent).
    pub entropy_bits: f64,
    /// Empirical probability of the most likely path.
    pub max_probability: f64,
}

impl ChoiceProfile {
    /// Samples `samples` paths for `(s, t)` and summarizes the empirical
    /// path distribution.
    ///
    /// # Panics
    /// Panics if `samples == 0`.
    pub fn sample<R: ObliviousRouter + ?Sized>(
        router: &R,
        s: &Coord,
        t: &Coord,
        samples: usize,
        rng: &mut dyn RngCore,
    ) -> Self {
        assert!(samples > 0);
        let mut counts: HashMap<Vec<Coord>, usize> = HashMap::new();
        for _ in 0..samples {
            let p = router.select_path(s, t, rng).path;
            *counts.entry(p.nodes().to_vec()).or_insert(0) += 1;
        }
        let n = samples as f64;
        let mut entropy = 0.0;
        let mut max_p = 0.0f64;
        for &c in counts.values() {
            let p = c as f64 / n;
            entropy -= p * p.log2();
            max_p = max_p.max(p);
        }
        Self {
            samples,
            support: counts.len(),
            entropy_bits: entropy,
            max_probability: max_p,
        }
    }

    /// `log₂(support)`: the bits needed to index the observed choices.
    pub fn log_support(&self) -> f64 {
        (self.support as f64).log2()
    }
}

/// Lemma 5.3's lower bound on the random bits per packet needed by *any*
/// algorithm whose congestion matches H, for distance-`ℓ` problems on the
/// `d`-dimensional mesh: `Ω((ℓ / d^{1+1/d}) → log of that many choices)`.
/// Returned with unit constants (the paper's Ω hides them).
pub fn bits_lower_bound(l: u64, d: usize) -> f64 {
    let d_f = d as f64;
    let choices = l as f64 / d_f.powf(1.0 + 1.0 / d_f);
    choices.max(1.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Busch2D, DimOrder};
    use oblivion_mesh::Mesh;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    #[test]
    fn deterministic_router_has_one_choice() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        let r = DimOrder::new(mesh);
        let mut rng = StdRng::seed_from_u64(1);
        let p = ChoiceProfile::sample(&r, &c(0, 0), &c(9, 9), 100, &mut rng);
        assert_eq!(p.support, 1);
        assert_eq!(p.entropy_bits, 0.0);
        assert_eq!(p.max_probability, 1.0);
    }

    #[test]
    fn randomized_router_spreads_choices() {
        let mesh = Mesh::new_mesh(&[32, 32]);
        let r = Busch2D::new(mesh);
        let mut rng = StdRng::seed_from_u64(2);
        let p = ChoiceProfile::sample(&r, &c(0, 0), &c(31, 31), 400, &mut rng);
        assert!(p.support > 50, "support {}", p.support);
        assert!(p.entropy_bits > 4.0, "entropy {}", p.entropy_bits);
        assert!(p.max_probability < 0.2);
    }

    #[test]
    fn entropy_grows_with_distance() {
        let mesh = Mesh::new_mesh(&[64, 64]);
        let r = Busch2D::new(mesh);
        let mut rng = StdRng::seed_from_u64(3);
        let near = ChoiceProfile::sample(&r, &c(10, 10), &c(11, 10), 300, &mut rng);
        let far = ChoiceProfile::sample(&r, &c(0, 0), &c(63, 63), 300, &mut rng);
        assert!(
            far.entropy_bits > near.entropy_bits + 1.0,
            "near {} far {}",
            near.entropy_bits,
            far.entropy_bits
        );
    }

    #[test]
    fn entropy_never_exceeds_log_support_or_sample_budget() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        let r = Busch2D::new(mesh);
        let mut rng = StdRng::seed_from_u64(4);
        let p = ChoiceProfile::sample(&r, &c(1, 1), &c(14, 2), 200, &mut rng);
        assert!(p.entropy_bits <= p.log_support() + 1e-9);
        assert!(p.entropy_bits <= (p.samples as f64).log2() + 1e-9);
    }

    #[test]
    fn lemma_5_3_bound_shape() {
        // Grows with l, shrinks with d; floor at 0 bits.
        assert!(bits_lower_bound(64, 2) > bits_lower_bound(8, 2));
        assert!(bits_lower_bound(64, 2) > bits_lower_bound(64, 4));
        assert_eq!(bits_lower_bound(1, 3), 0.0);
    }
}
