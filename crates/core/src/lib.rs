//! # oblivion-core
//!
//! Oblivious path-selection algorithms for the `d`-dimensional mesh,
//! reproducing Busch, Magdon-Ismail & Xi, *"Optimal Oblivious Path
//! Selection on the Mesh"* (IPDPS 2005).
//!
//! The headline algorithm is [`BuschD`] (the paper's **H**): congestion
//! `O(d² C* log n)` w.h.p. *and* stretch `O(d²)`, simultaneously — the
//! first oblivious scheme to control both. [`Busch2D`] is the specialized
//! 2-D variant of Section 3 with its explicit stretch-64 guarantee.
//!
//! Baselines for every comparison in the evaluation: [`DimOrder`],
//! [`RandomDimOrder`], [`Valiant`], and the bridge-free [`AccessTree`] of
//! Maggs et al., which is also the natural ablation of the paper's key
//! idea.
//!
//! Randomness is drawn through the bit-metering [`BitMeter`], so the
//! per-packet random-bit counts of Section 5 are measured exactly;
//! [`RandomnessMode`] switches between naive and bit-recycled sampling
//! (Section 5.3).
//!
//! ```
//! use oblivion_core::{Busch2D, ObliviousRouter};
//! use oblivion_mesh::{Coord, Mesh};
//! use rand::SeedableRng;
//!
//! let mesh = Mesh::new_mesh(&[32, 32]);
//! let router = Busch2D::new(mesh);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let s = Coord::new(&[3, 4]);
//! let t = Coord::new(&[28, 9]);
//! let routed = router.select_path(&s, &t, &mut rng);
//! assert!(routed.path.is_valid(router.mesh()));
//! assert!(routed.path.stretch(router.mesh()) <= 64.0); // Theorem 3.4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod busch2d;
mod busch_torus;
mod buschd;
mod chain;
mod choices;
mod factory;
mod offline;
mod padded;
mod parallel;
mod randbits;
mod romm;
mod router;
mod subpath;

pub use baselines::{AccessTree, DimOrder, RandomDimOrder, Valiant};
pub use busch2d::Busch2D;
pub use busch_torus::BuschTorus;
pub use buschd::{stretch_bound, BuschD};
pub use chain::{path_through_chain, path_through_chain_clipped, RandomnessMode};
pub use choices::{bits_lower_bound, ChoiceProfile};
pub use factory::{build_router, parse_mesh_spec, ROUTER_NAMES};
pub use offline::{route_min_congestion, OfflineConfig};
pub use padded::BuschPadded;
pub use parallel::{route_all_parallel, route_all_seeded};
pub use randbits::{BitMeter, DonorNode};
pub use romm::Romm;
pub use router::{route_all, route_all_metered, ObliviousRouter, PathQuery, RoutedPath};
pub use subpath::{dim_by_dim, extend_dim_by_dim};
