//! Turning a bitonic submesh chain into a concrete packet path.
//!
//! Both the 2-D and the d-D algorithms reduce to the same skeleton
//! (Section 3.3): given the chain of submeshes `u_0, …, u_ℓ` along the
//! bitonic access-graph path (`u_0 = {s}`, `u_ℓ = {t}`), pick a random node
//! `v_i` in each `g(u_i)` and connect consecutive `v_{i-1} → v_i` with a
//! dimension-by-dimension shortest subpath under a random dimension order.
//!
//! Two randomness disciplines are supported (Section 5.3):
//!
//! * [`RandomnessMode::Fresh`] — a new dimension order and a fully fresh
//!   uniform node per chain step: `O(d log²(D'd))` bits, the naive budget.
//! * [`RandomnessMode::Recycled`] — one dimension order for the whole
//!   path; two *donor* nodes drawn once at the widest block, whose
//!   coordinate bits are sliced (alternating donors along the chain) to
//!   produce the intermediate nodes: `O(d log(D'd))` bits, Lemma 5.4.

use crate::randbits::{BitMeter, DonorNode};
use crate::subpath::extend_dim_by_dim;
use oblivion_mesh::{Coord, Mesh, Path, Submesh};

/// Randomness discipline for the hierarchical routers (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RandomnessMode {
    /// Independent draws per chain step (simple, more bits).
    Fresh,
    /// Bit-recycling via two donor nodes (the paper's optimized scheme).
    #[default]
    Recycled,
}

/// Samples a uniform node of `sub` from a donor, when the block is
/// power-of-two sized and grid-aligned on every axis; otherwise falls back
/// to fresh metered bits (this can only happen at a clipped bridge block,
/// once per path).
fn donor_or_fresh_node(sub: &Submesh, donor: &DonorNode, meter: &mut BitMeter<'_>) -> Coord {
    let mut c = *sub.lo();
    for i in 0..sub.dim() {
        let side = sub.side(i);
        if side.is_power_of_two()
            && sub.lo()[i].is_multiple_of(side)
            && side.trailing_zeros() <= donor.width()
        {
            c[i] = sub.lo()[i] + donor.low_bits(i, side.trailing_zeros());
        } else {
            c[i] = meter.range_inclusive(sub.lo()[i], sub.hi()[i]);
        }
    }
    c
}

/// Builds the packet path through a bitonic chain of submeshes.
///
/// `chain[0]` must be the singleton `{s}` and `chain.last()` the singleton
/// `{t}`; consecutive duplicates are allowed and skipped. Returns the
/// concatenated path (cycles *not* yet removed — callers decide).
pub fn path_through_chain(
    mesh: &Mesh,
    chain: &[Submesh],
    mode: RandomnessMode,
    meter: &mut BitMeter<'_>,
) -> Path {
    path_through_chain_clipped(mesh, chain, mode, meter, None)
}

/// Like [`path_through_chain`], but every way-point is sampled from the
/// intersection of the chain block with `clip` (used by the padded router
/// to keep way-points inside a non-power-of-two mesh embedded in a larger
/// virtual one).
///
/// # Panics
/// Panics if some chain block does not intersect `clip` — impossible for
/// chains produced by the routers, whose blocks all contain `s` or `t`.
pub fn path_through_chain_clipped(
    mesh: &Mesh,
    chain: &[Submesh],
    mode: RandomnessMode,
    meter: &mut BitMeter<'_>,
    clip: Option<&Submesh>,
) -> Path {
    assert!(!chain.is_empty());
    debug_assert_eq!(chain[0].node_count(), 1, "chain must start at a leaf");
    debug_assert_eq!(
        chain.last().unwrap().node_count(),
        1,
        "chain must end at a leaf"
    );
    let d = mesh.dim();
    let s = *chain[0].lo();
    let t = *chain.last().unwrap().lo();
    if s == t {
        return Path::trivial(s);
    }

    let clipped = |sub: &Submesh| -> Submesh {
        match clip {
            None => *sub,
            Some(c) => sub
                .intersection(c)
                .expect("chain block does not intersect the clip region"),
        }
    };

    let mut nodes = vec![s];
    let mut cur = s;
    match mode {
        RandomnessMode::Fresh => {
            for (i, sub) in chain.iter().enumerate().skip(1) {
                if sub == &chain[i - 1] {
                    continue;
                }
                let v = if i + 1 == chain.len() {
                    t
                } else {
                    meter.uniform_node(&clipped(sub))
                };
                let order = meter.dim_order(d);
                extend_dim_by_dim(mesh, &mut cur, &v, &order, &mut nodes);
            }
        }
        RandomnessMode::Recycled => {
            let order = meter.dim_order(d);
            // Donor width: enough bits for the widest power-aligned block.
            let width = chain
                .iter()
                .map(|b| {
                    (0..d)
                        .map(|i| {
                            let side = b.side(i);
                            if side.is_power_of_two() && b.lo()[i] % side == 0 {
                                side.trailing_zeros()
                            } else {
                                0
                            }
                        })
                        .max()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            let donors = [
                DonorNode::draw(meter, d, width),
                DonorNode::draw(meter, d, width),
            ];
            for (i, sub) in chain.iter().enumerate().skip(1) {
                if sub == &chain[i - 1] {
                    continue;
                }
                let v = if i + 1 == chain.len() {
                    t
                } else {
                    donor_or_fresh_node(&clipped(sub), &donors[i % 2], meter)
                };
                extend_dim_by_dim(mesh, &mut cur, &v, &order, &mut nodes);
            }
        }
    }
    Path::new_unchecked(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(xs: &[u32]) -> Coord {
        Coord::new(xs)
    }

    fn sm(lo: &[u32], hi: &[u32]) -> Submesh {
        Submesh::new(c(lo), c(hi))
    }

    #[test]
    fn chain_path_endpoints_and_validity() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let chain = vec![
            Submesh::point(c(&[1, 1])),
            sm(&[0, 0], &[3, 3]),
            sm(&[0, 0], &[7, 7]),
            sm(&[4, 4], &[7, 7]),
            Submesh::point(c(&[6, 6])),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for mode in [RandomnessMode::Fresh, RandomnessMode::Recycled] {
            let mut meter = BitMeter::new(&mut rng);
            let p = path_through_chain(&mesh, &chain, mode, &mut meter);
            assert!(p.is_valid(&mesh), "{mode:?}");
            assert_eq!(p.source(), &c(&[1, 1]));
            assert_eq!(p.target(), &c(&[6, 6]));
            assert!(meter.bits_used() > 0);
        }
    }

    #[test]
    fn trivial_chain() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let chain = vec![Submesh::point(c(&[2, 2])), Submesh::point(c(&[2, 2]))];
        let mut rng = StdRng::seed_from_u64(2);
        let mut meter = BitMeter::new(&mut rng);
        let p = path_through_chain(&mesh, &chain, RandomnessMode::Fresh, &mut meter);
        assert!(p.is_empty());
        assert_eq!(meter.bits_used(), 0);
    }

    #[test]
    fn duplicate_blocks_are_skipped() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let b = sm(&[0, 0], &[3, 3]);
        let chain = vec![Submesh::point(c(&[0, 0])), b, b, Submesh::point(c(&[3, 2]))];
        let mut rng = StdRng::seed_from_u64(3);
        let mut meter = BitMeter::new(&mut rng);
        let p = path_through_chain(&mesh, &chain, RandomnessMode::Fresh, &mut meter);
        assert!(p.is_valid(&mesh));
        assert_eq!(p.target(), &c(&[3, 2]));
    }

    #[test]
    fn recycled_uses_fewer_bits_than_fresh_on_long_chains() {
        let mesh = Mesh::new_mesh(&[64, 64]);
        // A full-height chain: 1 → 2 → 4 → ... → 64 → ... → 2 → 1 sides.
        let mut chain = vec![Submesh::point(c(&[13, 27]))];
        for h in 1..=6u32 {
            let side = 1 << h;
            let lo = [13 / side * side, 27 / side * side];
            chain.push(sm(&lo, &[lo[0] + side - 1, lo[1] + side - 1]));
        }
        for h in (1..=6u32).rev() {
            let side = 1 << h;
            let lo = [40 / side * side, 50 / side * side];
            chain.push(sm(&lo, &[lo[0] + side - 1, lo[1] + side - 1]));
        }
        chain.push(Submesh::point(c(&[40, 50])));

        let avg_bits = |mode| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut total = 0u64;
            for _ in 0..50 {
                let mut meter = BitMeter::new(&mut rng);
                let _ = path_through_chain(&mesh, &chain, mode, &mut meter);
                total += meter.bits_used();
            }
            total as f64 / 50.0
        };
        let fresh = avg_bits(RandomnessMode::Fresh);
        let recycled = avg_bits(RandomnessMode::Recycled);
        assert!(
            recycled < fresh / 2.0,
            "recycled {recycled} should be well below fresh {fresh}"
        );
    }

    #[test]
    fn donor_fallback_handles_clipped_blocks() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        // A clipped (non-power-aligned) bridge in the middle.
        let chain = vec![
            Submesh::point(c(&[3, 3])),
            sm(&[2, 2], &[5, 6]), // sides 4 and 5, unaligned
            Submesh::point(c(&[5, 5])),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let mut meter = BitMeter::new(&mut rng);
        let p = path_through_chain(&mesh, &chain, RandomnessMode::Recycled, &mut meter);
        assert!(p.is_valid(&mesh));
    }
}
