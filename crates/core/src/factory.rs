//! Router construction by name, with mesh-shape validation.
//!
//! Shared by the CLI (`--router`) and the serving layer's mesh registry
//! (`ADMIN ADD <id> <mesh> <router>`), so a router that can be named on
//! the command line can also be hot-added to a running daemon — and
//! both paths reject an incompatible mesh with the same message instead
//! of panicking inside a constructor.

use crate::baselines::{AccessTree, DimOrder, RandomDimOrder, Valiant};
use crate::busch2d::Busch2D;
use crate::busch_torus::BuschTorus;
use crate::buschd::BuschD;
use crate::padded::BuschPadded;
use crate::romm::Romm;
use crate::router::ObliviousRouter;
use oblivion_mesh::{Mesh, Topology};

/// Every router name [`build_router`] accepts.
pub const ROUTER_NAMES: &[&str] = &[
    "busch2d",
    "buschd",
    "busch-torus",
    "busch-padded",
    "access-tree",
    "valiant",
    "romm",
    "dim-order",
    "random-dim-order",
];

/// Parses a mesh spec like `64x64`, `16x16x16`, or `32` (1-D), capped
/// at `1 << 24` nodes so a typo cannot allocate the machine away.
pub fn parse_mesh_spec(spec: &str, torus: bool) -> Result<Mesh, String> {
    let dims: Result<Vec<u32>, _> = spec.split('x').map(str::parse::<u32>).collect();
    let dims = dims.map_err(|e| format!("bad mesh spec `{spec}`: {e}"))?;
    if dims.is_empty() || dims.len() > oblivion_mesh::MAX_DIM {
        return Err(format!(
            "mesh must have 1..={} dimensions",
            oblivion_mesh::MAX_DIM
        ));
    }
    if dims.contains(&0) {
        return Err("mesh sides must be positive".into());
    }
    let n: u64 = dims.iter().map(|&m| u64::from(m)).product();
    if n > 1 << 24 {
        return Err(format!("mesh with {n} nodes is too large for the CLI"));
    }
    Ok(Mesh::new(
        &dims,
        if torus {
            Topology::Torus
        } else {
            Topology::Mesh
        },
    ))
}

/// Builds a router by name, validating the mesh shape the algorithm
/// requires (so callers report an error instead of panicking).
pub fn build_router(name: &str, mesh: &Mesh) -> Result<Box<dyn ObliviousRouter>, String> {
    let equal_pow2 = mesh
        .dims()
        .iter()
        .all(|&m| m == mesh.side(0) && m.is_power_of_two());
    let require = |ok: bool, what: &str| -> Result<(), String> {
        if ok {
            Ok(())
        } else {
            Err(format!("router `{name}` requires {what}"))
        }
    };
    match name {
        "busch2d" => require(
            mesh.dim() == 2 && equal_pow2 && mesh.topology() == Topology::Mesh,
            "a square power-of-two 2-D mesh",
        )?,
        "buschd" | "access-tree" => require(
            equal_pow2 && mesh.topology() == Topology::Mesh,
            "an equal-side power-of-two mesh",
        )?,
        "busch-torus" => require(
            equal_pow2 && mesh.topology() == Topology::Torus,
            "an equal-side power-of-two torus (--torus true)",
        )?,
        "busch-padded" => require(mesh.topology() == Topology::Mesh, "a (non-torus) mesh")?,
        _ => {}
    }
    Ok(match name {
        "busch2d" => Box::new(Busch2D::new(mesh.clone())),
        "buschd" => Box::new(BuschD::new(mesh.clone())),
        "busch-torus" => Box::new(BuschTorus::new(mesh.clone())),
        "busch-padded" => Box::new(BuschPadded::new(mesh.clone())),
        "access-tree" => Box::new(AccessTree::new(mesh.clone())),
        "valiant" => Box::new(Valiant::new(mesh.clone())),
        "romm" => Box::new(Romm::new(mesh.clone())),
        "dim-order" => Box::new(DimOrder::new(mesh.clone())),
        "random-dim-order" => Box::new(RandomDimOrder::new(mesh.clone())),
        other => {
            return Err(format!(
                "unknown router `{other}`; choose one of {ROUTER_NAMES:?}"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_router_constructs_and_reports_state() {
        let mesh = parse_mesh_spec("8x8", false).unwrap();
        let torus = parse_mesh_spec("8x8", true).unwrap();
        for name in ROUTER_NAMES {
            let m = if *name == "busch-torus" {
                &torus
            } else {
                &mesh
            };
            let r = build_router(name, m).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(r.state_bytes() > 0, "{name} reports zero routing state");
        }
        assert!(build_router("nope", &mesh).is_err());
    }

    #[test]
    fn shape_validation_rejects_incompatible_meshes() {
        let rect = parse_mesh_spec("8x4", false).unwrap();
        assert!(build_router("busch2d", &rect).is_err());
        assert!(build_router("buschd", &rect).is_err());
        let mesh = parse_mesh_spec("8x8", false).unwrap();
        assert!(build_router("busch-torus", &mesh).is_err());
        let torus = parse_mesh_spec("8x8", true).unwrap();
        assert!(build_router("busch-padded", &torus).is_err());
    }

    #[test]
    fn mesh_specs_parse_and_reject() {
        assert_eq!(parse_mesh_spec("8x8", false).unwrap().dim(), 2);
        assert_eq!(
            parse_mesh_spec("4x4x4", true).unwrap().topology(),
            Topology::Torus
        );
        assert!(parse_mesh_spec("0x4", false).is_err());
        assert!(parse_mesh_spec("4xx4", false).is_err());
        assert!(parse_mesh_spec("9999999x9999999", false).is_err());
    }
}
