//! Algorithm H on the torus — the paper's proof model, implemented exactly.
//!
//! On the `(2^k)^d` torus the shifted families tile perfectly: every
//! bridge is a full cube (no clipping), Lemma 4.1's side bound is exact,
//! and the bit-recycled sampler never needs a fallback (every block side
//! is a power of two). Wrap-around links also remove the mesh's border
//! pathologies — the pair `(0, …)` / `(2^k−1, …)` is adjacent and gets an
//! `O(d)`-side bridge like any other neighbor pair.

use crate::randbits::{BitMeter, DonorNode};
use crate::router::{ObliviousRouter, RoutedPath};
use crate::subpath::extend_dim_by_dim;
use crate::RandomnessMode;
use oblivion_decomp::{TorusBlock, TorusDecomp};
use oblivion_mesh::{Coord, Mesh, Path};
use rand::RngCore;

/// Algorithm H on the equal-side power-of-two torus.
#[derive(Debug, Clone)]
pub struct BuschTorus {
    mesh: Mesh,
    decomp: TorusDecomp,
    mode: RandomnessMode,
    remove_cycles: bool,
}

impl BuschTorus {
    /// Creates the router for the `(2^k)^d` torus.
    ///
    /// # Panics
    /// Panics unless the mesh is a torus with equal power-of-two sides.
    pub fn new(mesh: Mesh) -> Self {
        let decomp = TorusDecomp::for_mesh(&mesh);
        Self {
            mesh,
            decomp,
            mode: RandomnessMode::default(),
            remove_cycles: true,
        }
    }

    /// Selects the randomness discipline (default: bit-recycled).
    pub fn with_mode(mut self, mode: RandomnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// The decomposition in use.
    pub fn decomp(&self) -> &TorusDecomp {
        &self.decomp
    }

    /// The block chain for `(s, t)`: `{s}`, type-1 blocks up to height
    /// `ĥ`, the bridge, mirrored blocks down to `{t}`.
    pub fn chain(&self, s: &Coord, t: &Coord) -> Vec<TorusBlock> {
        let side = self.decomp.side();
        if s == t {
            return vec![TorusBlock::new(*s, 1, side)];
        }
        let k = self.decomp.k();
        let plan = self.decomp.find_bridge(&self.mesh, s, t);
        let mut chain = Vec::with_capacity(2 * plan.h_hat as usize + 3);
        chain.push(TorusBlock::new(*s, 1, side));
        for height in 1..=plan.h_hat {
            chain.push(self.decomp.type1_block(k - height, s));
        }
        chain.push(plan.bridge);
        for height in (1..=plan.h_hat).rev() {
            chain.push(self.decomp.type1_block(k - height, t));
        }
        chain.push(TorusBlock::new(*t, 1, side));
        chain.dedup();
        chain
    }

    /// Samples a uniform node of a block using donor bits (every torus
    /// block has a power-of-two side, so this is always exact).
    fn donor_node(&self, block: &TorusBlock, donor: &DonorNode) -> Coord {
        let bits = block.side().trailing_zeros();
        let offsets: Vec<u32> = (0..self.mesh.dim())
            .map(|i| donor.low_bits(i, bits))
            .collect();
        block.node_at_offset(&offsets)
    }

    fn fresh_node(&self, block: &TorusBlock, meter: &mut BitMeter<'_>) -> Coord {
        let offsets: Vec<u32> = (0..self.mesh.dim())
            .map(|_| meter.below(u64::from(block.side())) as u32)
            .collect();
        block.node_at_offset(&offsets)
    }
}

impl ObliviousRouter for BuschTorus {
    fn name(&self) -> String {
        format!("busch-torus-d{}/{:?}", self.decomp.d(), self.mode).to_lowercase()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        if s == t {
            return RoutedPath {
                path: Path::trivial(*s),
                random_bits: 0,
            };
        }
        let chain = self.chain(s, t);
        let d = self.mesh.dim();
        let mut meter = BitMeter::new(rng);
        let mut nodes = vec![*s];
        let mut cur = *s;
        match self.mode {
            RandomnessMode::Fresh => {
                for (i, block) in chain.iter().enumerate().skip(1) {
                    let v = if i + 1 == chain.len() {
                        *t
                    } else {
                        self.fresh_node(block, &mut meter)
                    };
                    let order = meter.dim_order(d);
                    extend_dim_by_dim(&self.mesh, &mut cur, &v, &order, &mut nodes);
                }
            }
            RandomnessMode::Recycled => {
                let order = meter.dim_order(d);
                let width = chain
                    .iter()
                    .map(|b| b.side().trailing_zeros())
                    .max()
                    .unwrap_or(0);
                let donors = [
                    DonorNode::draw(&mut meter, d, width),
                    DonorNode::draw(&mut meter, d, width),
                ];
                for (i, block) in chain.iter().enumerate().skip(1) {
                    let v = if i + 1 == chain.len() {
                        *t
                    } else {
                        self.donor_node(block, &donors[i % 2])
                    };
                    extend_dim_by_dim(&self.mesh, &mut cur, &v, &order, &mut nodes);
                }
            }
        }
        let mut path = Path::new_unchecked(nodes);
        if self.remove_cycles {
            path.remove_cycles();
        }
        RoutedPath {
            path,
            random_bits: meter.bits_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_coord(rng: &mut StdRng, d: usize, side: u32) -> Coord {
        Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>())
    }

    #[test]
    fn paths_valid_on_tori() {
        let mut rng = StdRng::seed_from_u64(81);
        for (d, k) in [(1usize, 6u32), (2, 5), (3, 3)] {
            let mesh = Mesh::new_torus(&vec![1u32 << k; d]);
            let r = BuschTorus::new(mesh.clone());
            for _ in 0..150 {
                let s = rand_coord(&mut rng, d, 1 << k);
                let t = rand_coord(&mut rng, d, 1 << k);
                let rp = r.select_path(&s, &t, &mut rng);
                assert!(rp.path.is_valid(&mesh), "d={d} {s:?}->{t:?}");
                assert_eq!(rp.path.source(), &s);
                assert_eq!(rp.path.target(), &t);
            }
        }
    }

    #[test]
    fn stretch_bounded_incl_wrap_pairs() {
        let mut rng = StdRng::seed_from_u64(82);
        let mesh = Mesh::new_torus(&[64, 64]);
        let r = BuschTorus::new(mesh.clone());
        let bound = crate::stretch_bound(2);
        let mut pairs = vec![
            // Wrap-adjacent pairs: the mesh's border nightmare, trivial here.
            (Coord::new(&[0, 5]), Coord::new(&[63, 5])),
            (Coord::new(&[10, 0]), Coord::new(&[10, 63])),
            (Coord::new(&[0, 0]), Coord::new(&[63, 63])),
        ];
        for _ in 0..400 {
            let s = rand_coord(&mut rng, 2, 64);
            let t = rand_coord(&mut rng, 2, 64);
            if s != t {
                pairs.push((s, t));
            }
        }
        for (s, t) in pairs {
            for _ in 0..3 {
                let st = r.select_path(&s, &t, &mut rng).path.stretch(&mesh);
                assert!(st <= bound, "{s:?}->{t:?}: stretch {st}");
            }
        }
    }

    #[test]
    fn recycled_cheaper_than_fresh() {
        let mesh = Mesh::new_torus(&[64, 64]);
        let fresh = BuschTorus::new(mesh.clone()).with_mode(RandomnessMode::Fresh);
        let recycled = BuschTorus::new(mesh.clone()).with_mode(RandomnessMode::Recycled);
        let mut rng = StdRng::seed_from_u64(83);
        let (mut bf, mut br) = (0u64, 0u64);
        for _ in 0..300 {
            let s = rand_coord(&mut rng, 2, 64);
            let t = rand_coord(&mut rng, 2, 64);
            if s == t {
                continue;
            }
            bf += fresh.select_path(&s, &t, &mut rng).random_bits;
            br += recycled.select_path(&s, &t, &mut rng).random_bits;
        }
        assert!(br < bf);
    }

    #[test]
    fn chain_blocks_nest() {
        let mesh = Mesh::new_torus(&[32, 32]);
        let r = BuschTorus::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(84);
        for _ in 0..200 {
            let s = rand_coord(&mut rng, 2, 32);
            let t = rand_coord(&mut rng, 2, 32);
            if s == t {
                continue;
            }
            let chain = r.chain(&s, &t);
            // Sizes are bitonic and consecutive blocks nest.
            let sizes: Vec<u64> = chain.iter().map(|b| b.node_count()).collect();
            let peak = sizes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
            assert!(sizes[..=peak].windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
            assert!(sizes[peak..].windows(2).all(|w| w[0] > w[1]), "{sizes:?}");
            for w in chain.windows(2) {
                let (small, big) = if w[0].side() <= w[1].side() {
                    (&w[0], &w[1])
                } else {
                    (&w[1], &w[0])
                };
                assert!(big.contains_block(small), "{:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn name_and_rejections() {
        let r = BuschTorus::new(Mesh::new_torus(&[8, 8]));
        assert_eq!(r.name(), "busch-torus-d2/recycled");
    }

    #[test]
    #[should_panic]
    fn rejects_plain_mesh() {
        let _ = BuschTorus::new(Mesh::new_mesh(&[8, 8]));
    }
}
