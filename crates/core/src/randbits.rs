//! Metered randomness: every random bit a router consumes is counted.
//!
//! Section 5 of the paper is about *how much* randomness oblivious routing
//! needs: a κ-choice algorithm needs `log κ` bits per packet, deterministic
//! algorithms (κ = 1) provably congest, and algorithm H needs only
//! `O(d·log(D'·d))` bits (Lemma 5.4), within `O(d)` of the lower bound.
//! To measure this, routers never touch an `Rng` directly; they draw from a
//! [`BitMeter`], which pulls single bits from the underlying RNG on demand
//! and counts exactly how many were consumed (including rejection-sampling
//! retries, which the `log κ` accounting must pay for too).

use oblivion_mesh::{Coord, Submesh};
use rand::RngCore;

/// A bit-granular, bit-counting source of randomness.
///
/// Wraps any [`RngCore`]; bits are taken from buffered 64-bit words so the
/// count reflects bits *consumed by the algorithm*, not RNG call overhead.
pub struct BitMeter<'a> {
    rng: &'a mut dyn RngCore,
    buf: u64,
    buf_left: u32,
    used: u64,
}

impl<'a> BitMeter<'a> {
    /// Creates a meter drawing from `rng`, with the counter at zero.
    pub fn new(rng: &'a mut dyn RngCore) -> Self {
        Self {
            rng,
            buf: 0,
            buf_left: 0,
            used: 0,
        }
    }

    /// Number of random bits consumed so far.
    #[inline]
    pub fn bits_used(&self) -> u64 {
        self.used
    }

    /// Draws one uniform bit.
    #[inline]
    pub fn bit(&mut self) -> bool {
        if self.buf_left == 0 {
            self.buf = self.rng.next_u64();
            self.buf_left = 64;
        }
        let b = self.buf & 1 == 1;
        self.buf >>= 1;
        self.buf_left -= 1;
        self.used += 1;
        b
    }

    /// Draws `n ≤ 63` uniform bits as an integer in `[0, 2^n)`.
    pub fn bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 63);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.bit());
        }
        v
    }

    /// Uniform integer in `[0, n)` by rejection sampling on
    /// `⌈log₂ n⌉`-bit draws. Counts all bits, including rejected draws.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        let width = 64 - (n - 1).leading_zeros(); // ceil(log2 n)
        loop {
            let v = self.bits(width);
            if v < n {
                return v;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        lo + self.below(u64::from(hi - lo) + 1) as u32
    }

    /// A node sampled uniformly from a submesh.
    pub fn uniform_node(&mut self, sub: &Submesh) -> Coord {
        let mut c = *sub.lo();
        for i in 0..sub.dim() {
            c[i] = self.range_inclusive(sub.lo()[i], sub.hi()[i]);
        }
        c
    }

    /// A uniformly random ordering of `0..d` (Fisher–Yates), costing
    /// `Θ(log d!)` bits.
    pub fn dim_order(&mut self, d: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..d).collect();
        for i in (1..d).rev() {
            let j = self.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        order
    }
}

/// A fixed pool of pre-drawn random bits that can be *re-read* at different
/// widths — the bit-recycling donors of Section 5.3.
///
/// The paper cuts the bit budget by a `log(D'd)` factor by drawing two
/// random nodes `v̂₁, v̂₂` of the largest submesh on the bitonic path once,
/// then deriving every intermediate random node from slices of their
/// coordinate bits. [`DonorNode`] stores one such node as per-axis bit
/// strings; [`DonorNode::low_bits`] re-reads the low `s` bits of an axis,
/// which are exactly uniform because the chain submeshes are power-of-two
/// sized and grid-aligned.
#[derive(Debug, Clone)]
pub struct DonorNode {
    /// Per-axis uniform values of `width` bits each.
    axis_bits: Vec<u64>,
    width: u32,
}

impl DonorNode {
    /// Draws a donor with `width` uniform bits per axis (counted on `meter`).
    pub fn draw(meter: &mut BitMeter<'_>, d: usize, width: u32) -> Self {
        let axis_bits = (0..d).map(|_| meter.bits(width)).collect();
        Self { axis_bits, width }
    }

    /// The low `s ≤ width` bits of axis `i`: a uniform value in `[0, 2^s)`.
    #[inline]
    pub fn low_bits(&self, i: usize, s: u32) -> u32 {
        debug_assert!(
            s <= self.width,
            "asked for {s} bits, donor has {}",
            self.width
        );
        if s == 0 {
            return 0;
        }
        (self.axis_bits[i] & ((1u64 << s) - 1)) as u32
    }

    /// Width in bits per axis.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bits_are_counted() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = BitMeter::new(&mut rng);
        let _ = m.bits(10);
        assert_eq!(m.bits_used(), 10);
        let _ = m.bit();
        assert_eq!(m.bits_used(), 11);
    }

    #[test]
    fn below_power_of_two_uses_exact_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = BitMeter::new(&mut rng);
        let _ = m.below(8);
        assert_eq!(m.bits_used(), 3);
        let _ = m.below(1);
        assert_eq!(m.bits_used(), 3); // no bits for a singleton
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = BitMeter::new(&mut rng);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = m.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn below_rejection_costs_extra_bits() {
        // n = 5 needs 3-bit draws; on average 8/5 draws per sample, so the
        // average cost must exceed 3 bits.
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = BitMeter::new(&mut rng);
        let samples = 2000;
        for _ in 0..samples {
            let _ = m.below(5);
        }
        let avg = m.bits_used() as f64 / samples as f64;
        assert!(avg > 3.0 && avg < 6.0, "avg = {avg}");
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = BitMeter::new(&mut rng);
        for _ in 0..100 {
            let v = m.range_inclusive(7, 9);
            assert!((7..=9).contains(&v));
        }
        assert_eq!(m.range_inclusive(4, 4), 4);
    }

    #[test]
    fn uniform_node_in_submesh() {
        let sub = Submesh::new(Coord::new(&[2, 0]), Coord::new(&[3, 7]));
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = BitMeter::new(&mut rng);
        for _ in 0..100 {
            assert!(sub.contains(&m.uniform_node(&sub)));
        }
    }

    #[test]
    fn dim_order_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = BitMeter::new(&mut rng);
        for d in 1..=6 {
            let mut o = m.dim_order(d);
            o.sort_unstable();
            assert_eq!(o, (0..d).collect::<Vec<_>>());
        }
    }

    #[test]
    fn dim_order_costs_log_factorial_bits() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = BitMeter::new(&mut rng);
        let trials = 500;
        for _ in 0..trials {
            let _ = m.dim_order(4);
        }
        // log2(4!) ≈ 4.58; rejection overhead allows up to ~7.
        let avg = m.bits_used() as f64 / trials as f64;
        assert!((4.0..=8.0).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn donor_slices_are_consistent_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = BitMeter::new(&mut rng);
        let donor = DonorNode::draw(&mut m, 2, 10);
        assert_eq!(m.bits_used(), 20);
        // Low-slices nest: low 3 bits are the low 3 of the low 5.
        let l5 = donor.low_bits(0, 5);
        let l3 = donor.low_bits(0, 3);
        assert_eq!(l3, l5 & 0b111);
        assert_eq!(donor.low_bits(1, 0), 0);
    }

    #[test]
    fn determinism_given_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = BitMeter::new(&mut rng);
            (m.bits(17), m.below(1000), m.dim_order(5))
        };
        assert_eq!(draw(42), draw(42));
    }
}
