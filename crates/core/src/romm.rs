//! ROMM — Randomized, Oblivious, Minimal routing.
//!
//! The classic middle ground between deterministic dimension-order routing
//! and Valiant's scheme: route `s → w → t` where the way-point `w` is
//! drawn uniformly from the **bounding box** of `s` and `t` (so the path
//! is *minimal*: stretch exactly 1), each leg dimension-ordered under a
//! random axis order. Compared here because it shows that staying minimal
//! is not enough for congestion: on the `Π_A` instances and transpose-like
//! permutations its choices collapse onto the same central edges, and its
//! worst-case congestion is polynomially worse than algorithm H's
//! (`Θ(√n)` vs `O(C* log n)` on 2-D transpose).

use crate::randbits::BitMeter;
use crate::router::{ObliviousRouter, RoutedPath};
use crate::subpath::extend_dim_by_dim;
use oblivion_mesh::{Coord, Mesh, Path, Submesh};
use rand::RngCore;

/// Two-phase minimal oblivious routing through a random way-point of the
/// source–destination bounding box.
///
/// ```
/// use oblivion_core::{ObliviousRouter, Romm};
/// use oblivion_mesh::{Coord, Mesh};
/// use rand::SeedableRng;
///
/// let mesh = Mesh::new_mesh(&[10, 7]); // any rectangle
/// let router = Romm::new(mesh.clone());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let s = Coord::new(&[1, 1]);
/// let t = Coord::new(&[8, 5]);
/// let p = router.select_path(&s, &t, &mut rng).path;
/// assert_eq!(p.len() as u64, mesh.dist(&s, &t)); // always minimal
/// ```
#[derive(Debug, Clone)]
pub struct Romm {
    mesh: Mesh,
}

impl Romm {
    /// Creates the router for any mesh (no power-of-two restriction).
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh }
    }
}

impl ObliviousRouter for Romm {
    fn name(&self) -> String {
        "romm".into()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        if s == t {
            return RoutedPath {
                path: Path::trivial(*s),
                random_bits: 0,
            };
        }
        let mut meter = BitMeter::new(rng);
        let bbox = Submesh::bounding_box(s, t);
        let w = meter.uniform_node(&bbox);
        let mut nodes = vec![*s];
        let mut cur = *s;
        let order1 = meter.dim_order(self.mesh.dim());
        extend_dim_by_dim(&self.mesh, &mut cur, &w, &order1, &mut nodes);
        let order2 = meter.dim_order(self.mesh.dim());
        extend_dim_by_dim(&self.mesh, &mut cur, t, &order2, &mut nodes);
        RoutedPath {
            path: Path::new_unchecked(nodes),
            random_bits: meter.bits_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn c(xs: &[u32]) -> Coord {
        Coord::new(xs)
    }

    /// ROMM is minimal: every path is a shortest path (stretch 1).
    ///
    /// Note: on a *torus* a bounding-box way-point can force a non-minimal
    /// route (the box is a mesh-centric notion), so ROMM is constructed
    /// for meshes; this test pins the mesh behaviour.
    #[test]
    fn paths_are_minimal() {
        let mesh = Mesh::new_mesh(&[16, 16, 16]);
        let r = Romm::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = c(&[
                rng.gen_range(0..16),
                rng.gen_range(0..16),
                rng.gen_range(0..16),
            ]);
            let t = c(&[
                rng.gen_range(0..16),
                rng.gen_range(0..16),
                rng.gen_range(0..16),
            ]);
            let rp = r.select_path(&s, &t, &mut rng);
            assert!(rp.path.is_valid(&mesh));
            assert_eq!(rp.path.len() as u64, mesh.dist(&s, &t));
        }
    }

    #[test]
    fn way_point_stays_in_bounding_box() {
        // All nodes of the path lie inside the bounding box: minimality
        // in every prefix.
        let mesh = Mesh::new_mesh(&[32, 32]);
        let r = Romm::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let s = c(&[5, 20]);
        let t = c(&[15, 8]);
        let bbox = Submesh::bounding_box(&s, &t);
        for _ in 0..100 {
            let rp = r.select_path(&s, &t, &mut rng);
            assert!(rp.path.nodes().iter().all(|v| bbox.contains(v)));
        }
    }

    #[test]
    fn spreads_over_multiple_paths() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        let r = Romm::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let s = c(&[0, 0]);
        let t = c(&[8, 8]);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..300 {
            distinct.insert(r.select_path(&s, &t, &mut rng).path.nodes().to_vec());
        }
        assert!(
            distinct.len() > 20,
            "only {} distinct paths",
            distinct.len()
        );
    }

    #[test]
    fn trivial_and_colinear_pairs() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let r = Romm::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(4);
        assert!(r
            .select_path(&c(&[3, 3]), &c(&[3, 3]), &mut rng)
            .path
            .is_empty());
        // Colinear: bounding box is a line; path is the unique segment.
        let rp = r.select_path(&c(&[2, 5]), &c(&[6, 5]), &mut rng);
        assert_eq!(rp.path.len(), 4);
    }

    #[test]
    fn bits_scale_with_box_not_mesh() {
        let mesh = Mesh::new_mesh(&[256, 256]);
        let r = Romm::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(5);
        // Tiny box: few bits even on a huge mesh.
        let mut near = 0u64;
        let mut far = 0u64;
        for _ in 0..100 {
            near += r
                .select_path(&c(&[7, 7]), &c(&[8, 8]), &mut rng)
                .random_bits;
            far += r
                .select_path(&c(&[0, 0]), &c(&[255, 255]), &mut rng)
                .random_bits;
        }
        assert!(near < far / 2, "near {near} far {far}");
    }
}
