//! Baseline oblivious routers the paper compares against (Section 1).
//!
//! * [`DimOrder`] — deterministic dimension-order ("e-cube" / XY) routing:
//!   stretch exactly 1, but being a 1-choice algorithm it suffers
//!   `Ω(√n / d)`-type congestion on adversarial permutations (Lemma 5.1).
//! * [`RandomDimOrder`] — dimension-order with a per-packet random order:
//!   still stretch 1; `log d!` bits; congestion barely better in the worst
//!   case (only `d!` choices).
//! * [`Valiant`] — Valiant–Brebner routing through a uniform random
//!   intermediate node: near-optimal congestion for permutations but
//!   stretch `Θ(diameter/dist)` — unbounded for nearby pairs.
//! * [`AccessTree`] — the hierarchical scheme of Maggs et al. [9]: type-1
//!   decomposition only (an access *tree*). Congestion `O(C* d log n)`,
//!   but no bridges, so nearby pairs straddling a high cut climb to the
//!   root: stretch `Θ(n^{1/d}/dist)` — the pathology the paper fixes.

use crate::randbits::BitMeter;
use crate::router::{ObliviousRouter, RoutedPath};
use crate::subpath::{dim_by_dim, extend_dim_by_dim};
use oblivion_mesh::{Coord, Mesh, Path, Submesh};
use rand::RngCore;

/// Deterministic dimension-order routing with a fixed axis order.
#[derive(Debug, Clone)]
pub struct DimOrder {
    mesh: Mesh,
    order: Vec<usize>,
}

impl DimOrder {
    /// Creates the router with the natural axis order `0, 1, …, d-1`
    /// ("XY routing" in 2-D).
    pub fn new(mesh: Mesh) -> Self {
        let order = (0..mesh.dim()).collect();
        Self { mesh, order }
    }

    /// Creates the router with a custom fixed axis order.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..d`.
    pub fn with_order(mesh: Mesh, order: Vec<usize>) -> Self {
        let mut check = order.clone();
        check.sort_unstable();
        assert_eq!(check, (0..mesh.dim()).collect::<Vec<_>>());
        Self { mesh, order }
    }
}

impl ObliviousRouter for DimOrder {
    fn name(&self) -> String {
        "dim-order".into()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, _rng: &mut dyn RngCore) -> RoutedPath {
        RoutedPath {
            path: Path::new_unchecked(dim_by_dim(&self.mesh, s, t, &self.order)),
            random_bits: 0,
        }
    }
}

/// Dimension-order routing with a fresh random axis order per packet.
#[derive(Debug, Clone)]
pub struct RandomDimOrder {
    mesh: Mesh,
}

impl RandomDimOrder {
    /// Creates the router.
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh }
    }
}

impl ObliviousRouter for RandomDimOrder {
    fn name(&self) -> String {
        "random-dim-order".into()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        let mut meter = BitMeter::new(rng);
        let order = meter.dim_order(self.mesh.dim());
        RoutedPath {
            path: Path::new_unchecked(dim_by_dim(&self.mesh, s, t, &order)),
            random_bits: meter.bits_used(),
        }
    }
}

/// Valiant–Brebner two-phase randomized routing: `s → w → t` for a uniform
/// random `w`, each leg dimension-ordered under its own random axis order.
#[derive(Debug, Clone)]
pub struct Valiant {
    mesh: Mesh,
    remove_cycles: bool,
}

impl Valiant {
    /// Creates the router.
    pub fn new(mesh: Mesh) -> Self {
        Self {
            mesh,
            remove_cycles: true,
        }
    }

    /// Keeps or removes cycles (the two legs can backtrack).
    pub fn with_cycle_removal(mut self, on: bool) -> Self {
        self.remove_cycles = on;
        self
    }
}

impl ObliviousRouter for Valiant {
    fn name(&self) -> String {
        "valiant".into()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        if s == t {
            return RoutedPath {
                path: Path::trivial(*s),
                random_bits: 0,
            };
        }
        let mut meter = BitMeter::new(rng);
        let w = meter.uniform_node(&Submesh::whole(&self.mesh));
        let mut nodes = vec![*s];
        let mut cur = *s;
        let order1 = meter.dim_order(self.mesh.dim());
        extend_dim_by_dim(&self.mesh, &mut cur, &w, &order1, &mut nodes);
        let order2 = meter.dim_order(self.mesh.dim());
        extend_dim_by_dim(&self.mesh, &mut cur, t, &order2, &mut nodes);
        let mut path = Path::new_unchecked(nodes);
        if self.remove_cycles {
            path.remove_cycles();
        }
        RoutedPath {
            path,
            random_bits: meter.bits_used(),
        }
    }
}

/// The access-**tree** router of Maggs et al. \[9\]: identical skeleton to
/// algorithm H but with the type-1 hierarchy only — no bridge submeshes.
///
/// This is the paper's primary point of comparison and the natural
/// ablation: disabling bridges is exactly what turns `O(d²)` stretch into
/// unbounded stretch.
#[derive(Debug, Clone)]
pub struct AccessTree {
    mesh: Mesh,
    decomp: oblivion_decomp::DecompD,
    mode: crate::chain::RandomnessMode,
    remove_cycles: bool,
}

impl AccessTree {
    /// Creates the router for the equal-side `(2^k)^d` mesh.
    pub fn new(mesh: Mesh) -> Self {
        let decomp = oblivion_decomp::DecompD::for_mesh(&mesh);
        Self {
            mesh,
            decomp,
            mode: crate::chain::RandomnessMode::default(),
            remove_cycles: true,
        }
    }

    /// Selects the randomness discipline.
    pub fn with_mode(mut self, mode: crate::chain::RandomnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// The type-1-only bitonic chain: up to the least common *tree*
    /// ancestor, then down.
    pub fn chain(&self, s: &Coord, t: &Coord) -> Vec<Submesh> {
        if s == t {
            return vec![Submesh::point(*s)];
        }
        let k = self.decomp.k();
        // Tree LCA: lowest height whose type-1 block contains both.
        let mut lca_height = k;
        for height in 1..=k {
            let b = self.decomp.type1_block(k - height, s);
            if b.contains(t) {
                lca_height = height;
                break;
            }
        }
        let mut chain = Vec::with_capacity(2 * lca_height as usize + 1);
        chain.push(Submesh::point(*s));
        for height in 1..=lca_height {
            chain.push(self.decomp.type1_block(k - height, s));
        }
        for height in (1..lca_height).rev() {
            chain.push(self.decomp.type1_block(k - height, t));
        }
        chain.push(Submesh::point(*t));
        chain.dedup();
        chain
    }
}

impl ObliviousRouter for AccessTree {
    fn name(&self) -> String {
        "access-tree".into()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        let chain = self.chain(s, t);
        let mut meter = BitMeter::new(rng);
        let mut path = crate::chain::path_through_chain(&self.mesh, &chain, self.mode, &mut meter);
        if self.remove_cycles {
            path.remove_cycles();
        }
        RoutedPath {
            path,
            random_bits: meter.bits_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn c(xs: &[u32]) -> Coord {
        Coord::new(xs)
    }

    #[test]
    fn dim_order_is_shortest_and_deterministic() {
        let r = DimOrder::new(Mesh::new_mesh(&[16, 16]));
        let mut rng = StdRng::seed_from_u64(31);
        let s = c(&[2, 3]);
        let t = c(&[9, 12]);
        let p1 = r.select_path(&s, &t, &mut rng);
        let p2 = r.select_path(&s, &t, &mut rng);
        assert_eq!(p1.path, p2.path);
        assert_eq!(p1.random_bits, 0);
        assert_eq!(p1.path.len() as u64, r.mesh().dist(&s, &t));
    }

    #[test]
    fn random_dim_order_is_shortest() {
        let r = RandomDimOrder::new(Mesh::new_mesh(&[8, 8, 8]));
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..50 {
            let s = c(&[1, 2, 3]);
            let t = c(&[7, 0, 5]);
            let rp = r.select_path(&s, &t, &mut rng);
            assert_eq!(rp.path.len() as u64, r.mesh().dist(&s, &t));
            assert!(rp.path.is_valid(r.mesh()));
            assert!(rp.random_bits >= 2); // log2(3!) ≈ 2.6
        }
    }

    #[test]
    fn valiant_paths_valid_and_long_for_neighbors() {
        let r = Valiant::new(Mesh::new_mesh(&[32, 32]));
        let mut rng = StdRng::seed_from_u64(33);
        let s = c(&[16, 16]);
        let t = c(&[16, 17]);
        let mut total_len = 0usize;
        let runs = 100;
        for _ in 0..runs {
            let rp = r.select_path(&s, &t, &mut rng);
            assert!(rp.path.is_valid(r.mesh()));
            assert_eq!(rp.path.source(), &s);
            assert_eq!(rp.path.target(), &t);
            total_len += rp.path.len();
        }
        // Mean detour through a uniform random point of a 32×32 mesh is
        // Θ(side); distance is 1, so mean stretch must be large.
        let mean = total_len as f64 / runs as f64;
        assert!(
            mean > 8.0,
            "Valiant mean neighbor path {mean} suspiciously short"
        );
    }

    #[test]
    fn valiant_trivial_pair() {
        let r = Valiant::new(Mesh::new_mesh(&[8, 8]));
        let mut rng = StdRng::seed_from_u64(34);
        let rp = r.select_path(&c(&[3, 3]), &c(&[3, 3]), &mut rng);
        assert!(rp.path.is_empty());
    }

    #[test]
    fn access_tree_paths_valid() {
        let r = AccessTree::new(Mesh::new_mesh(&[16, 16]));
        let mut rng = StdRng::seed_from_u64(35);
        for _ in 0..100 {
            let s = c(&[rng.gen_range(0..16), rng.gen_range(0..16)]);
            let t = c(&[rng.gen_range(0..16), rng.gen_range(0..16)]);
            let rp = r.select_path(&s, &t, &mut rng);
            assert!(rp.path.is_valid(r.mesh()));
            assert_eq!(rp.path.source(), &s);
            assert_eq!(rp.path.target(), &t);
        }
    }

    /// The tree pathology: central neighbors climb to the root, so their
    /// expected path length is Θ(side) — while the bridge router stays O(1).
    #[test]
    fn access_tree_unbounded_stretch_at_central_cut() {
        let side = 32;
        let tree = AccessTree::new(Mesh::new_mesh(&[side, side]));
        let bridge = crate::busch2d::Busch2D::new(Mesh::new_mesh(&[side, side]));
        let s = c(&[side / 2 - 1, 5]);
        let t = c(&[side / 2, 5]);
        let mut rng = StdRng::seed_from_u64(36);
        let runs = 200;
        let mut tree_len = 0usize;
        let mut bridge_len = 0usize;
        for _ in 0..runs {
            tree_len += tree.select_path(&s, &t, &mut rng).path.len();
            bridge_len += bridge.select_path(&s, &t, &mut rng).path.len();
        }
        let tree_mean = tree_len as f64 / runs as f64;
        let bridge_mean = bridge_len as f64 / runs as f64;
        assert!(
            tree_mean > 4.0 * bridge_mean,
            "tree {tree_mean} vs bridge {bridge_mean}: bridges should win decisively"
        );
    }

    #[test]
    fn access_tree_chain_is_type1_nested() {
        let r = AccessTree::new(Mesh::new_mesh(&[16, 16]));
        let chain = r.chain(&c(&[7, 7]), &c(&[8, 8]));
        for w in chain.windows(2) {
            assert!(w[0].contains_submesh(&w[1]) || w[1].contains_submesh(&w[0]));
        }
        // Central pair → LCA is the root.
        assert!(chain.iter().any(|b| b.node_count() == 256));
    }

    #[test]
    #[should_panic]
    fn dim_order_rejects_bad_order() {
        let _ = DimOrder::with_order(Mesh::new_mesh(&[4, 4]), vec![0, 0]);
    }
}
