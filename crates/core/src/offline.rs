//! Offline (non-oblivious) congestion-aware routing — the comparator the
//! paper positions itself against.
//!
//! The paper's closing argument (Sections 1 and 6): offline algorithms
//! [1, 2, 12, 13] can optimize `C + D` with full knowledge of the traffic,
//! but "for the mesh, distributed and oblivious algorithms are within a
//! logarithmic factor from the optimal offline performance, hence there is
//! no significant benefit from using the offline algorithm." To make that
//! claim measurable we need an actual offline competitor: this module
//! implements the classic exponential-penalty heuristic (the practical
//! face of the Raghavan–Thompson randomized-rounding / multiplicative-
//! weights family): route packets sequentially by Dijkstra under edge
//! weights that grow exponentially with current load, then locally improve
//! by re-routing packets through their penalized shortest paths until no
//! packet moves.
//!
//! The result is an *achievable* congestion, so it (upper-)brackets `C*`
//! from the side the lower bounds cannot: `lb ≤ C* ≤ C(offline)`, and the
//! oblivious ratio `C(H)/C(offline)` over-estimates the true competitive
//! ratio by at most `C(offline)/C*`.

use oblivion_mesh::{Coord, Mesh, NodeId, Path};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning for the offline heuristic.
#[derive(Debug, Clone, Copy)]
pub struct OfflineConfig {
    /// Improvement sweeps after the initial sequential pass.
    pub improvement_rounds: usize,
    /// Exponent cap for the load penalty (prevents overflow; loads above
    /// the cap all look equally terrible).
    pub max_exponent: u32,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            improvement_rounds: 3,
            max_exponent: 40,
        }
    }
}

/// Fixed-point edge cost: an edge at load `l` costs `2^min(l, cap)`,
/// so a path through one hotter edge always costs more than any path
/// through cooler edges — Dijkstra then greedily levels the load —
/// plus 1 per hop to prefer short paths among equally-loaded routes.
#[inline]
fn edge_cost(load: u32, cap: u32) -> u64 {
    1 + (1u64 << load.min(cap))
}

/// Dijkstra under penalized loads from `s` to `t`; returns the node path.
fn penalized_shortest_path(
    mesh: &Mesh,
    loads: &[u32],
    s: &Coord,
    t: &Coord,
    cap: u32,
) -> Vec<Coord> {
    let n = mesh.node_count();
    let src = mesh.node_id(s).0;
    let dst = mesh.node_id(t).0;
    let mut dist = vec![u64::MAX; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst {
            break;
        }
        let cu = mesh.coord(NodeId(u));
        for nb in mesh.neighbors(&cu) {
            let v = mesh.node_id(&nb).0;
            let e = mesh.edge_id(&cu, &nb).0;
            let nd = d.saturating_add(edge_cost(loads[e], cap));
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    // Reconstruct.
    let mut nodes = vec![*t];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        debug_assert_ne!(cur, usize::MAX, "mesh is connected");
        nodes.push(mesh.coord(NodeId(cur)));
    }
    nodes.reverse();
    nodes
}

/// Routes a whole problem offline, minimizing congestion greedily.
///
/// Returns one path per pair (same order). Not oblivious: every path may
/// depend on every other packet — this is exactly the knowledge advantage
/// the paper's oblivious algorithm competes against.
pub fn route_min_congestion(
    mesh: &Mesh,
    pairs: &[(Coord, Coord)],
    config: OfflineConfig,
    rng: &mut dyn RngCore,
) -> Vec<Path> {
    let mut loads = vec![0u32; mesh.edge_count()];
    let mut paths: Vec<Option<Path>> = vec![None; pairs.len()];
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.shuffle(rng);

    let add = |p: &Path, loads: &mut [u32], mesh: &Mesh, delta: i64| {
        for e in p.edge_ids(mesh) {
            let l = &mut loads[e.0];
            *l = (i64::from(*l) + delta) as u32;
        }
    };

    // Initial sequential pass.
    for &i in &order {
        let (s, t) = &pairs[i];
        if s == t {
            paths[i] = Some(Path::trivial(*s));
            continue;
        }
        let nodes = penalized_shortest_path(mesh, &loads, s, t, config.max_exponent);
        let p = Path::new_unchecked(nodes);
        add(&p, &mut loads, mesh, 1);
        paths[i] = Some(p);
    }

    // Local improvement: re-route each packet against the others.
    for _ in 0..config.improvement_rounds {
        let mut moved = false;
        for &i in &order {
            let (s, t) = &pairs[i];
            if s == t {
                continue;
            }
            let old = paths[i].take().unwrap();
            add(&old, &mut loads, mesh, -1);
            let nodes = penalized_shortest_path(mesh, &loads, s, t, config.max_exponent);
            let new = Path::new_unchecked(nodes);
            if new != old {
                moved = true;
            }
            add(&new, &mut loads, mesh, 1);
            paths[i] = Some(new);
        }
        if !moved {
            break;
        }
    }
    paths.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    fn congestion(mesh: &Mesh, paths: &[Path]) -> u32 {
        let mut loads = vec![0u32; mesh.edge_count()];
        for p in paths {
            for e in p.edge_ids(mesh) {
                loads[e.0] += 1;
            }
        }
        loads.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn paths_are_valid_and_end_to_end() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pairs: Vec<_> = mesh.coords().map(|p| (p, c(p[1], p[0]))).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let paths = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        assert_eq!(paths.len(), pairs.len());
        for (p, (s, t)) in paths.iter().zip(&pairs) {
            assert!(p.is_valid(&mesh));
            assert_eq!((p.source(), p.target()), (s, t));
        }
    }

    #[test]
    fn beats_deterministic_on_transpose() {
        let mesh = Mesh::new_mesh(&[16, 16]);
        let pairs: Vec<_> = mesh
            .coords()
            .map(|p| (p, c(p[1], p[0])))
            .filter(|(s, t)| s != t)
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let offline = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        let off_c = congestion(&mesh, &offline);

        let det = crate::DimOrder::new(mesh.clone());
        let det_paths = crate::route_all(&det, &pairs, &mut rng);
        let det_c = congestion(&mesh, &det_paths);
        assert!(
            off_c < det_c,
            "offline {off_c} should beat deterministic {det_c} on transpose"
        );
    }

    #[test]
    fn single_packet_takes_shortest_path() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pairs = vec![(c(0, 0), c(5, 3))];
        let mut rng = StdRng::seed_from_u64(3);
        let paths = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        assert_eq!(paths[0].len() as u64, mesh.dist(&c(0, 0), &c(5, 3)));
    }

    #[test]
    fn parallel_disjoint_pairs_get_congestion_one() {
        // 8 disjoint horizontal hops: the heuristic must not stack them.
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pairs: Vec<_> = (0..8).map(|y| (c(0, y), c(7, y))).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let paths = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        assert_eq!(congestion(&mesh, &paths), 1);
    }

    #[test]
    fn hotspot_spreads_over_all_incoming_links() {
        // 4 packets into the center of a 5x5: a distinct last edge each.
        let mesh = Mesh::new_mesh(&[5, 5]);
        let tgt = c(2, 2);
        let pairs = vec![
            (c(0, 2), tgt),
            (c(4, 2), tgt),
            (c(2, 0), tgt),
            (c(2, 4), tgt),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let paths = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        assert_eq!(congestion(&mesh, &paths), 1);
    }

    #[test]
    fn trivial_pairs_are_trivial() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let pairs = vec![(c(1, 1), c(1, 1))];
        let mut rng = StdRng::seed_from_u64(6);
        let paths = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        assert!(paths[0].is_empty());
    }

    #[test]
    fn works_on_torus() {
        let mesh = Mesh::new_torus(&[8, 8]);
        let pairs: Vec<_> = (0..8).map(|y| (c(0, y), c(7, y))).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let paths = route_min_congestion(&mesh, &pairs, OfflineConfig::default(), &mut rng);
        // Wrap links make these distance-1 pairs.
        assert_eq!(congestion(&mesh, &paths), 1);
        assert!(paths.iter().all(|p| p.len() == 1));
    }
}
