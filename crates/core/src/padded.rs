//! Algorithm H on arbitrary rectangular meshes, via virtual padding.
//!
//! The paper states algorithm H for equal power-of-two side lengths. A
//! downstream user's mesh is rarely that shape, so this adapter embeds the
//! real `m_1 × … × m_d` mesh into the smallest `(2^k)^d` *virtual* mesh
//! (`2^k ≥ max m_i`), runs the hierarchical machinery there, and clips
//! every sampled way-point to the real mesh.
//!
//! Why this preserves the guarantees (within constants):
//!
//! * every chain block contains `s` or `t` (or both), so its intersection
//!   with the real mesh is nonempty and the clip is well-defined;
//! * clipping only shrinks blocks, so subpaths only get shorter — the
//!   stretch analysis carries over verbatim;
//! * the congestion analysis charges each subpath to a containing virtual
//!   block; clipping concentrates way-points by at most a constant factor
//!   per axis (the real side is at least half the virtual block side at
//!   the scales the chain visits near the endpoints).
//!
//! Clipped blocks may be non-power-aligned, so the bit-recycled mode falls
//! back to fresh sampling for those positions; bits stay `O(d log(D'd))`.

use crate::chain::{path_through_chain_clipped, RandomnessMode};
use crate::randbits::BitMeter;
use crate::router::{ObliviousRouter, RoutedPath};
use oblivion_decomp::DecompD;
use oblivion_mesh::{Coord, Mesh, Path, Submesh, Topology};
use rand::RngCore;

/// Algorithm H adapted to any rectangular mesh by power-of-two padding.
#[derive(Debug, Clone)]
pub struct BuschPadded {
    mesh: Mesh,
    virtual_mesh: Mesh,
    decomp: DecompD,
    mode: RandomnessMode,
    remove_cycles: bool,
}

impl BuschPadded {
    /// Creates the router for an arbitrary rectangular mesh.
    ///
    /// # Panics
    /// Panics for torus topologies (use the mesh variants) and degenerate
    /// meshes.
    pub fn new(mesh: Mesh) -> Self {
        assert_eq!(
            mesh.topology(),
            Topology::Mesh,
            "BuschPadded routes on meshes; tori wrap and need no padding"
        );
        let max_side = mesh.dims().iter().copied().max().unwrap();
        let k = max_side.next_power_of_two().trailing_zeros();
        let decomp = DecompD::new(mesh.dim(), k);
        let virtual_mesh = decomp.mesh();
        Self {
            mesh,
            virtual_mesh,
            decomp,
            mode: RandomnessMode::default(),
            remove_cycles: true,
        }
    }

    /// Selects the randomness discipline (default: bit-recycled).
    pub fn with_mode(mut self, mode: RandomnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// The virtual (padded) mesh side length.
    pub fn virtual_side(&self) -> u32 {
        self.decomp.side()
    }

    /// The chain of *virtual* submeshes for `(s, t)` (clipping happens at
    /// sampling time).
    pub fn chain(&self, s: &Coord, t: &Coord) -> Vec<Submesh> {
        if s == t {
            return vec![Submesh::point(*s)];
        }
        let k = self.decomp.k();
        let plan = self.decomp.find_bridge(&self.virtual_mesh, s, t);
        let mut chain = Vec::with_capacity(2 * plan.h_hat as usize + 3);
        chain.push(Submesh::point(*s));
        for height in 1..=plan.h_hat {
            chain.push(self.decomp.type1_block(k - height, s));
        }
        chain.push(plan.bridge);
        for height in (1..=plan.h_hat).rev() {
            chain.push(self.decomp.type1_block(k - height, t));
        }
        chain.push(Submesh::point(*t));
        chain.dedup();
        chain
    }
}

impl ObliviousRouter for BuschPadded {
    fn name(&self) -> String {
        format!("busch-padded/{:?}", self.mode).to_lowercase()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        debug_assert!(self.mesh.contains(s) && self.mesh.contains(t));
        let chain = self.chain(s, t);
        let clip = Submesh::whole(&self.mesh);
        let mut meter = BitMeter::new(rng);
        let mut path: Path =
            path_through_chain_clipped(&self.mesh, &chain, self.mode, &mut meter, Some(&clip));
        if self.remove_cycles {
            path.remove_cycles();
        }
        RoutedPath {
            path,
            random_bits: meter.bits_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_coord(rng: &mut StdRng, mesh: &Mesh) -> Coord {
        let mut c = Coord::origin(mesh.dim());
        for i in 0..mesh.dim() {
            c[i] = rng.gen_range(0..mesh.side(i));
        }
        c
    }

    #[test]
    fn routes_on_rectangular_meshes() {
        let mut rng = StdRng::seed_from_u64(61);
        for dims in [vec![48u32, 20], vec![7, 7], vec![10, 6, 3], vec![100]] {
            let mesh = Mesh::new_mesh(&dims);
            let r = BuschPadded::new(mesh.clone());
            for _ in 0..200 {
                let s = rand_coord(&mut rng, &mesh);
                let t = rand_coord(&mut rng, &mesh);
                let rp = r.select_path(&s, &t, &mut rng);
                assert!(rp.path.is_valid(&mesh), "{dims:?} {s:?}->{t:?}");
                assert_eq!(rp.path.source(), &s);
                assert_eq!(rp.path.target(), &t);
                // Every node stays inside the REAL mesh.
                assert!(rp.path.nodes().iter().all(|v| mesh.contains(v)));
            }
        }
    }

    #[test]
    fn stretch_stays_bounded_on_rectangles() {
        let mut rng = StdRng::seed_from_u64(62);
        let mesh = Mesh::new_mesh(&[48, 20]);
        let r = BuschPadded::new(mesh.clone());
        let bound = crate::buschd::stretch_bound(2);
        for _ in 0..500 {
            let s = rand_coord(&mut rng, &mesh);
            let t = rand_coord(&mut rng, &mesh);
            if s == t {
                continue;
            }
            let st = r.select_path(&s, &t, &mut rng).path.stretch(&mesh);
            assert!(st <= bound, "stretch {st}");
        }
    }

    #[test]
    fn on_power_of_two_square_it_matches_buschd_shape() {
        // Same decomposition: identical chain structure (not identical
        // paths — independent RNG draws).
        let mesh = Mesh::new_mesh(&[32, 32]);
        let padded = BuschPadded::new(mesh.clone());
        let direct = crate::buschd::BuschD::new(mesh.clone());
        assert_eq!(padded.virtual_side(), 32);
        let s = Coord::new(&[3, 4]);
        let t = Coord::new(&[20, 9]);
        assert_eq!(padded.chain(&s, &t), direct.chain(&s, &t));
    }

    #[test]
    fn virtual_side_is_next_power_of_two() {
        let r = BuschPadded::new(Mesh::new_mesh(&[12, 33]));
        assert_eq!(r.virtual_side(), 64);
        let r = BuschPadded::new(Mesh::new_mesh(&[16, 16]));
        assert_eq!(r.virtual_side(), 16);
    }

    #[test]
    #[should_panic]
    fn rejects_torus() {
        let _ = BuschPadded::new(Mesh::new_torus(&[8, 8]));
    }

    #[test]
    fn congestion_reasonable_on_rectangle_permutation() {
        // A transpose-like exchange on a 24x24 (non-power-of-two) mesh.
        let mesh = Mesh::new_mesh(&[24, 24]);
        let r = BuschPadded::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(63);
        let pairs: Vec<(Coord, Coord)> = mesh
            .coords()
            .map(|c| (c, Coord::new(&[c[1], c[0]])))
            .filter(|(s, t)| s != t)
            .collect();
        let paths = crate::router::route_all(&r, &pairs, &mut rng);
        let mut loads = vec![0u32; mesh.edge_count()];
        for p in &paths {
            for e in p.edge_ids(&mesh) {
                loads[e.0] += 1;
            }
        }
        let c = *loads.iter().max().unwrap();
        // Trivial cut bound for transpose on side m is ~m/2 = 12; allow a
        // log-factor band.
        assert!(c <= 12 * 12, "congestion {c} unreasonable");
        assert!(c >= 12, "congestion {c} impossibly low");
    }
}
