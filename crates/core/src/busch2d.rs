//! The paper's 2-dimensional algorithm (Section 3.3).
//!
//! A packet from `s` to `t` takes the bitonic access-graph path: up the
//! type-1 hierarchy from `s`, across the deepest common ancestor (a type-1
//! or type-2 *bridge*), and down the type-1 hierarchy to `t`, with a
//! uniformly random way-point in every submesh along the way and
//! random-one-bend subpaths in between. Guarantees (for the `2^k × 2^k`
//! mesh):
//!
//! * stretch ≤ 64 for every packet (Theorem 3.4);
//! * congestion `O(C* log n)` w.h.p. for every routing problem
//!   (Theorem 3.9).

use crate::chain::{path_through_chain, RandomnessMode};
use crate::randbits::BitMeter;
use crate::router::{ObliviousRouter, PathQuery, RoutedPath};
use oblivion_decomp::Decomp2;
use oblivion_mesh::{Coord, Mesh, Path, Submesh};
use rand::{RngCore, SeedableRng};

/// The 2-D bridge router of Busch, Magdon-Ismail & Xi.
#[derive(Debug, Clone)]
pub struct Busch2D {
    mesh: Mesh,
    decomp: Decomp2,
    mode: RandomnessMode,
    remove_cycles: bool,
}

impl Busch2D {
    /// Creates the router for the `2^k × 2^k` mesh.
    ///
    /// # Panics
    /// Panics if the mesh is not square 2-D with power-of-two side.
    pub fn new(mesh: Mesh) -> Self {
        let _span = oblivion_obs::span("decomposition");
        let decomp = Decomp2::for_mesh(&mesh);
        Self {
            mesh,
            decomp,
            mode: RandomnessMode::default(),
            remove_cycles: true,
        }
    }

    /// Selects the randomness discipline (default: bit-recycled).
    pub fn with_mode(mut self, mode: RandomnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// Keeps or removes cycles in emitted paths (default: removed, as the
    /// paper notes this never increases expected congestion).
    pub fn with_cycle_removal(mut self, on: bool) -> Self {
        self.remove_cycles = on;
        self
    }

    /// The decomposition in use.
    pub fn decomp(&self) -> &Decomp2 {
        &self.decomp
    }

    /// The submesh chain of the bitonic access-graph path for `(s, t)`:
    /// `{s}`, type-1 blocks of increasing size, the bridge, type-1 blocks
    /// of decreasing size, `{t}`.
    pub fn chain(&self, s: &Coord, t: &Coord) -> Vec<Submesh> {
        let mut chain = Vec::new();
        self.chain_into(s, t, &mut chain);
        chain
    }

    /// [`Self::chain`] into a caller-owned buffer (cleared first) so a
    /// batch of selections reuses one allocation — the scratch half of
    /// [`ObliviousRouter::route_batch`].
    pub fn chain_into(&self, s: &Coord, t: &Coord, chain: &mut Vec<Submesh>) {
        chain.clear();
        if s == t {
            chain.push(Submesh::point(*s));
            return;
        }
        let k = self.decomp.k();
        let (anc, h) = self.decomp.deepest_common_ancestor(s, t);
        oblivion_obs::record("access_height_climbed", h as u64);
        oblivion_obs::counter_add(
            match anc.kind {
                oblivion_decomp::BlockType2D::Type1 => "bridge_tree_hits",
                oblivion_decomp::BlockType2D::Type2 => "bridge_shifted_hits",
            },
            1,
        );
        chain.reserve(2 * (k - anc.level) as usize + 1);
        chain.push(Submesh::point(*s));
        for level in (anc.level + 1..k).rev() {
            chain.push(self.decomp.type1_block(level, s));
        }
        chain.push(anc.submesh);
        for level in anc.level + 1..k {
            chain.push(self.decomp.type1_block(level, t));
        }
        chain.push(Submesh::point(*t));
        chain.dedup();
    }
}

impl ObliviousRouter for Busch2D {
    fn name(&self) -> String {
        format!("busch-2d/{:?}", self.mode).to_lowercase()
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn select_path(&self, s: &Coord, t: &Coord, rng: &mut dyn RngCore) -> RoutedPath {
        let chain = self.chain(s, t);
        let mut meter = BitMeter::new(rng);
        let mut path: Path = path_through_chain(&self.mesh, &chain, self.mode, &mut meter);
        if self.remove_cycles {
            path.remove_cycles();
        }
        RoutedPath {
            path,
            random_bits: meter.bits_used(),
        }
    }

    fn route_batch(&self, queries: &[PathQuery], out: &mut Vec<RoutedPath>) {
        out.clear();
        out.reserve(queries.len());
        let mut chain: Vec<Submesh> = Vec::new();
        for q in queries {
            // Fresh per-query seeding keeps every answer byte-identical
            // to a single-shot select_path; only the scratch is shared.
            let mut rng = rand::rngs::StdRng::seed_from_u64(q.seed);
            self.chain_into(&q.src, &q.dst, &mut chain);
            let mut meter = BitMeter::new(&mut rng);
            let mut path: Path = path_through_chain(&self.mesh, &chain, self.mode, &mut meter);
            if self.remove_cycles {
                path.remove_cycles();
            }
            out.push(RoutedPath {
                path,
                random_bits: meter.bits_used(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    fn router(k: u32) -> Busch2D {
        Busch2D::new(Mesh::new_mesh(&[1 << k, 1 << k]))
    }

    #[test]
    fn paths_are_valid_and_end_to_end() {
        let r = router(4);
        let mut rng = StdRng::seed_from_u64(11);
        for (s, t) in [
            (c(0, 0), c(15, 15)),
            (c(7, 7), c(8, 8)),
            (c(3, 12), c(3, 13)),
            (c(0, 15), c(15, 0)),
        ] {
            for _ in 0..20 {
                let rp = r.select_path(&s, &t, &mut rng);
                assert!(rp.path.is_valid(r.mesh()));
                assert_eq!(rp.path.source(), &s);
                assert_eq!(rp.path.target(), &t);
                assert!(rp.random_bits > 0);
            }
        }
    }

    #[test]
    fn trivial_pair_costs_nothing() {
        let r = router(3);
        let mut rng = StdRng::seed_from_u64(12);
        let rp = r.select_path(&c(2, 2), &c(2, 2), &mut rng);
        assert!(rp.path.is_empty());
        assert_eq!(rp.random_bits, 0);
    }

    /// Theorem 3.4: stretch ≤ 64 — checked on adversarial (boundary
    /// straddling) and random pairs, both randomness modes.
    #[test]
    fn stretch_bound_64() {
        for mode in [RandomnessMode::Fresh, RandomnessMode::Recycled] {
            let r = router(5).with_mode(mode);
            let mesh = r.mesh().clone();
            let mut rng = StdRng::seed_from_u64(13);
            let mut worst: f64 = 0.0;
            let mut pairs = vec![
                (c(15, 15), c(16, 16)),
                (c(15, 0), c(16, 0)),
                (c(0, 15), c(0, 16)),
                (c(15, 15), c(16, 15)),
            ];
            use rand::Rng;
            for _ in 0..200 {
                let s = c(rng.gen_range(0..32), rng.gen_range(0..32));
                let t = c(rng.gen_range(0..32), rng.gen_range(0..32));
                if s != t {
                    pairs.push((s, t));
                }
            }
            for (s, t) in pairs {
                for _ in 0..5 {
                    let rp = r.select_path(&s, &t, &mut rng);
                    worst = worst.max(rp.path.stretch(&mesh));
                }
            }
            assert!(worst <= 64.0, "stretch {worst} exceeds Theorem 3.4 bound");
        }
    }

    #[test]
    fn chain_is_bitonic_and_bridge_bounded() {
        let r = router(5);
        let s = c(15, 15);
        let t = c(16, 16);
        let chain = r.chain(&s, &t);
        let sizes: Vec<u64> = chain.iter().map(|b| b.node_count()).collect();
        let peak_idx = sizes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        assert!(sizes[..=peak_idx].windows(2).all(|w| w[0] < w[1]));
        assert!(sizes[peak_idx..].windows(2).all(|w| w[0] > w[1]));
        // dist = 2, Lemma 3.3: bridge height ≤ ⌈log 2⌉ + 2 = 3 → ≤ 8x8.
        assert!(sizes[peak_idx] <= 64);
    }

    #[test]
    fn cycle_removal_toggle() {
        let with = router(4);
        let without = router(4).with_cycle_removal(false);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..50 {
            let rp = with.select_path(&c(1, 2), &c(14, 13), &mut rng);
            assert!(rp.path.is_simple());
            let _ = without.select_path(&c(1, 2), &c(14, 13), &mut rng);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let r = router(4);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            r.select_path(&c(0, 0), &c(9, 9), &mut rng).path
        };
        assert_eq!(run(99), run(99));
    }

    /// route_batch is an optimization, never a behavior change: every
    /// answer must be byte-identical to a single-shot select_path with
    /// the same seed (the serve differential test leans on this).
    #[test]
    fn route_batch_matches_single_shot() {
        let r = router(4);
        let queries: Vec<PathQuery> = (0..40)
            .map(|i| PathQuery {
                seed: 0xB00 + i,
                src: c((i % 16) as u32, (i * 7 % 16) as u32),
                dst: c((i * 3 % 16) as u32, (15 - i % 16) as u32),
            })
            .collect();
        let mut batch = Vec::new();
        r.route_batch(&queries, &mut batch);
        assert_eq!(batch.len(), queries.len());
        for (q, rp) in queries.iter().zip(&batch) {
            let mut rng = StdRng::seed_from_u64(q.seed);
            let single = r.select_path(&q.src, &q.dst, &mut rng);
            assert_eq!(single.path.nodes(), rp.path.nodes(), "seed {}", q.seed);
            assert_eq!(single.random_bits, rp.random_bits);
        }
        // And via the trait-object default path used by the server.
        let dynr: &dyn ObliviousRouter = &r;
        let mut again = Vec::new();
        dynr.route_batch(&queries, &mut again);
        for (a, b) in batch.iter().zip(&again) {
            assert_eq!(a.path.nodes(), b.path.nodes());
        }
    }

    #[test]
    fn name_reports_mode() {
        assert_eq!(router(2).name(), "busch-2d/recycled");
        assert_eq!(
            router(2).with_mode(RandomnessMode::Fresh).name(),
            "busch-2d/fresh"
        );
    }
}
