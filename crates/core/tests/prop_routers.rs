//! Property tests for every router: validity, endpoints, obliviousness
//! invariants, stretch guarantees, bit accounting.

use oblivion_core::{
    stretch_bound, AccessTree, Busch2D, BuschD, BuschPadded, BuschTorus, DimOrder, ObliviousRouter,
    RandomDimOrder, RandomnessMode, Romm, Valiant,
};
use oblivion_mesh::{Coord, Mesh};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: (d, k, s, t, seed) with n <= 4096.
fn scenario() -> impl Strategy<Value = (usize, u32, Coord, Coord, u64)> {
    (1usize..=4, 1u32..=6)
        .prop_filter("size cap", |(d, k)| d * (*k as usize) <= 12)
        .prop_flat_map(|(d, k)| {
            let side = 1u32 << k;
            (
                Just(d),
                Just(k),
                prop::collection::vec(0..side, d),
                prop::collection::vec(0..side, d),
                any::<u64>(),
            )
                .prop_map(|(d, k, a, b, seed)| (d, k, Coord::new(&a), Coord::new(&b), seed))
        })
}

fn routers(mesh: &Mesh) -> Vec<Box<dyn ObliviousRouter>> {
    let mut v: Vec<Box<dyn ObliviousRouter>> = vec![
        Box::new(BuschD::new(mesh.clone())),
        Box::new(BuschD::new(mesh.clone()).with_mode(RandomnessMode::Fresh)),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(Romm::new(mesh.clone())),
        Box::new(BuschPadded::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
        Box::new(RandomDimOrder::new(mesh.clone())),
    ];
    if mesh.dim() == 2 {
        v.push(Box::new(Busch2D::new(mesh.clone())));
        v.push(Box::new(
            Busch2D::new(mesh.clone()).with_mode(RandomnessMode::Fresh),
        ));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every router returns a valid walk s -> t; trivial pairs cost zero
    /// bits; deterministic routers report zero bits.
    #[test]
    fn all_routers_produce_valid_paths((d, k, s, t, seed) in scenario()) {
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        let mut rng = StdRng::seed_from_u64(seed);
        for r in routers(&mesh) {
            let rp = r.select_path(&s, &t, &mut rng);
            prop_assert!(rp.path.is_valid(&mesh), "{}", r.name());
            prop_assert_eq!(rp.path.source(), &s);
            prop_assert_eq!(rp.path.target(), &t);
            if s == t {
                prop_assert!(rp.path.is_empty(), "{}", r.name());
            }
            if r.name() == "dim-order" {
                prop_assert_eq!(rp.random_bits, 0);
            }
        }
    }

    /// The hierarchical routers respect their stretch guarantees; the
    /// dimension-order routers are exactly shortest.
    #[test]
    fn stretch_guarantees((d, k, s, t, seed) in scenario()) {
        prop_assume!(s != t);
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = mesh.dist(&s, &t);

        let h = BuschD::new(mesh.clone());
        let p = h.select_path(&s, &t, &mut rng).path;
        prop_assert!((p.len() as f64) <= stretch_bound(d) * dist as f64,
            "busch-d: len {} dist {dist}", p.len());

        if d == 2 {
            let b2 = Busch2D::new(mesh.clone());
            let p2 = b2.select_path(&s, &t, &mut rng).path;
            prop_assert!((p2.len() as f64) <= 64.0 * dist as f64,
                "Theorem 3.4: len {} dist {dist}", p2.len());
        }

        let shortest = DimOrder::new(mesh.clone());
        prop_assert_eq!(shortest.select_path(&s, &t, &mut rng).path.len() as u64, dist);
        let rdo = RandomDimOrder::new(mesh.clone());
        prop_assert_eq!(rdo.select_path(&s, &t, &mut rng).path.len() as u64, dist);
    }

    /// Obliviousness + determinism-per-seed: the selected path depends only
    /// on (s, t) and the RNG stream — never on any other state.
    #[test]
    fn path_depends_only_on_pair_and_seed((d, k, s, t, seed) in scenario()) {
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        for r in routers(&mesh) {
            let mut rng1 = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed);
            let p1 = r.select_path(&s, &t, &mut rng1);
            // Interleave unrelated routing on rng2's *copy* first to show
            // no hidden shared state: use a fresh rng for the second call.
            let p2 = r.select_path(&s, &t, &mut rng2);
            prop_assert_eq!(p1.path, p2.path, "{}", r.name());
            prop_assert_eq!(p1.random_bits, p2.random_bits);
        }
    }

    /// Cycle-removed hierarchical paths are simple.
    #[test]
    fn paths_are_simple((d, k, s, t, seed) in scenario()) {
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = BuschD::new(mesh.clone());
        prop_assert!(h.select_path(&s, &t, &mut rng).path.is_simple());
        let v = Valiant::new(mesh.clone());
        prop_assert!(v.select_path(&s, &t, &mut rng).path.is_simple());
    }

    /// Recycled-mode bits obey the Lemma 5.4 budget on every pair, and
    /// beat fresh mode once the chain is long (the advantage is
    /// asymptotic in D'; on distance-1 chains the two fixed donors can
    /// cost a few bits more than one fresh way-point).
    #[test]
    fn recycled_bit_budget_and_asymptotics((d, k, s, t, seed) in scenario()) {
        prop_assume!(s != t);
        let mesh = Mesh::new_mesh(&vec![1u32 << k; d]);
        let fresh = BuschD::new(mesh.clone()).with_mode(RandomnessMode::Fresh);
        let recycled = BuschD::new(mesh.clone()).with_mode(RandomnessMode::Recycled);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = mesh.dist(&s, &t);
        let budget = 8.0 * d as f64 * ((2.0 * dist as f64 * d as f64).log2()).max(1.0);
        let (mut bf, mut br) = (0u64, 0u64);
        for _ in 0..8 {
            let f = fresh.select_path(&s, &t, &mut rng).random_bits;
            let r = recycled.select_path(&s, &t, &mut rng).random_bits;
            prop_assert!((r as f64) <= budget, "bits {r} > budget {budget} (dist {dist})");
            bf += f;
            br += r;
        }
        if dist >= 16 {
            prop_assert!(br < bf, "recycled {br} !< fresh {bf} at dist {dist}");
        }
    }
}

/// Strategy: arbitrary rectangular mesh dims (non-power-of-two allowed).
fn rect_scenario() -> impl Strategy<Value = (Vec<u32>, Coord, Coord, u64)> {
    prop::collection::vec(2u32..=20, 1..=3)
        .prop_filter("size cap", |dims| {
            dims.iter().map(|&m| u64::from(m)).product::<u64>() <= 4096
        })
        .prop_flat_map(|dims| {
            let d = dims.len();
            let dims2 = dims.clone();
            (
                Just(dims),
                prop::collection::vec(0u32..20, d),
                prop::collection::vec(0u32..20, d),
                any::<u64>(),
            )
                .prop_map(move |(dims, a, b, seed)| {
                    let clamp = |v: &[u32]| {
                        Coord::new(
                            &v.iter()
                                .zip(&dims2)
                                .map(|(&x, &m)| x.min(m - 1))
                                .collect::<Vec<_>>(),
                        )
                    };
                    (dims, clamp(&a), clamp(&b), seed)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The padded router handles every rectangular mesh: valid in-bounds
    /// paths with the d-D stretch guarantee.
    #[test]
    fn padded_router_on_rectangles((dims, s, t, seed) in rect_scenario()) {
        let mesh = Mesh::new_mesh(&dims);
        let router = BuschPadded::new(mesh.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let rp = router.select_path(&s, &t, &mut rng);
        prop_assert!(rp.path.is_valid(&mesh));
        prop_assert_eq!(rp.path.source(), &s);
        prop_assert_eq!(rp.path.target(), &t);
        prop_assert!(rp.path.nodes().iter().all(|v| mesh.contains(v)));
        if s != t {
            let bound = stretch_bound(mesh.dim());
            prop_assert!(rp.path.stretch(&mesh) <= bound);
        }
    }

    /// The torus router: valid paths, torus-distance stretch bound, and
    /// wrap pairs are treated as the neighbors they are.
    #[test]
    fn torus_router_properties((d, k, s, t, seed) in scenario()) {
        let torus = Mesh::new_torus(&vec![1u32 << k; d]);
        let router = BuschTorus::new(torus.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let rp = router.select_path(&s, &t, &mut rng);
        prop_assert!(rp.path.is_valid(&torus));
        prop_assert_eq!(rp.path.source(), &s);
        prop_assert_eq!(rp.path.target(), &t);
        if s != t {
            prop_assert!(rp.path.stretch(&torus) <= stretch_bound(d));
        }
    }
}
