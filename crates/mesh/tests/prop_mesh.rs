//! Property tests for the mesh substrate.

use oblivion_mesh::{Coord, Mesh, Path, Submesh, Topology};
use proptest::prelude::*;

/// Strategy: a mesh with 1–4 dimensions, sides 1–12, ≤ 4096 nodes.
fn arb_mesh() -> impl Strategy<Value = Mesh> {
    (prop::collection::vec(1u32..=12, 1..=4), prop::bool::ANY).prop_filter_map(
        "node count cap",
        |(dims, torus)| {
            let n: u64 = dims.iter().map(|&m| u64::from(m)).product();
            if n > 4096 {
                return None;
            }
            Some(Mesh::new(
                &dims,
                if torus {
                    Topology::Torus
                } else {
                    Topology::Mesh
                },
            ))
        },
    )
}

/// Strategy: a mesh plus one of its coordinates.
fn mesh_and_coord() -> impl Strategy<Value = (Mesh, Coord)> {
    arb_mesh().prop_flat_map(|mesh| {
        let n = mesh.node_count();
        (Just(mesh), 0..n).prop_map(|(mesh, i)| {
            let c = mesh.coord(oblivion_mesh::NodeId(i));
            (mesh, c)
        })
    })
}

/// Strategy: a mesh plus two coordinates.
fn mesh_and_two() -> impl Strategy<Value = (Mesh, Coord, Coord)> {
    arb_mesh().prop_flat_map(|mesh| {
        let n = mesh.node_count();
        (Just(mesh), 0..n, 0..n).prop_map(|(mesh, i, j)| {
            let a = mesh.coord(oblivion_mesh::NodeId(i));
            let b = mesh.coord(oblivion_mesh::NodeId(j));
            (mesh, a, b)
        })
    })
}

proptest! {
    /// Node-id <-> coordinate is a bijection.
    #[test]
    fn node_id_roundtrip((mesh, c) in mesh_and_coord()) {
        prop_assert_eq!(mesh.coord(mesh.node_id(&c)), c);
    }

    /// Distance is a metric: symmetric, zero iff equal, triangle inequality.
    #[test]
    fn dist_is_a_metric((mesh, a, b) in mesh_and_two(), k in 0usize..4096) {
        prop_assert_eq!(mesh.dist(&a, &b), mesh.dist(&b, &a));
        prop_assert_eq!(mesh.dist(&a, &b) == 0, a == b);
        let n = mesh.node_count();
        let c = mesh.coord(oblivion_mesh::NodeId(k % n));
        prop_assert!(mesh.dist(&a, &b) <= mesh.dist(&a, &c) + mesh.dist(&c, &b));
    }

    /// Distance never exceeds the diameter.
    #[test]
    fn dist_le_diameter((mesh, a, b) in mesh_and_two()) {
        prop_assert!(mesh.dist(&a, &b) <= mesh.diameter());
    }

    /// Adjacent nodes have distance 1 and a valid symmetric edge id.
    #[test]
    fn neighbors_are_at_distance_one((mesh, c) in mesh_and_coord()) {
        for nb in mesh.neighbors(&c) {
            prop_assert_eq!(mesh.dist(&c, &nb), 1);
            prop_assert!(mesh.adjacent(&c, &nb));
            let e = mesh.edge_id(&c, &nb);
            prop_assert_eq!(e, mesh.edge_id(&nb, &c));
            prop_assert!(e.0 < mesh.edge_count());
            let (x, y) = mesh.edge_endpoints(e);
            prop_assert!((x == c && y == nb) || (x == nb && y == c));
        }
    }

    /// step_towards decreases the axis distance by exactly one.
    #[test]
    fn step_towards_progress((mesh, c) in mesh_and_coord(), target_idx in 0usize..4096, axis_pick in 0usize..8) {
        let axis = axis_pick % mesh.dim();
        let target = mesh.coord(oblivion_mesh::NodeId(target_idx % mesh.node_count()));
        let before = mesh.axis_dist(axis, c[axis], target[axis]);
        match mesh.step_towards(&c, target[axis], axis) {
            None => prop_assert_eq!(before, 0),
            Some(next) => {
                prop_assert!(mesh.adjacent(&c, &next));
                prop_assert_eq!(mesh.axis_dist(axis, next[axis], target[axis]), before - 1);
            }
        }
    }

    /// Lemma A.4: any submesh with n' nodes has out(M') >= n'^((d-1)/d),
    /// unless it spans the whole mesh along every axis it could leave by.
    #[test]
    fn out_edges_lower_bound_lemma_a4((mesh, a, b) in mesh_and_two()) {
        let sub = Submesh::bounding_box(&a, &b);
        let full = (0..mesh.dim()).all(|i| u64::from(sub.side(i)) == u64::from(mesh.side(i)));
        if !full && mesh.topology() == Topology::Mesh {
            // Lemma A.4 assumes a proper submesh of the mesh (at most d-1
            // surfaces flush with the border). Our bounding boxes can touch
            // more borders, so check the bound only when the box is
            // strictly interior on at least one side per axis.
            let d = mesh.dim() as f64;
            let n_prime = sub.node_count() as f64;
            let interior = (0..mesh.dim()).all(|i| {
                sub.lo()[i] > 0 || sub.hi()[i] + 1 < mesh.side(i)
            });
            if interior {
                let bound = n_prime.powf((d - 1.0) / d);
                prop_assert!(
                    (sub.out_edges(&mesh) as f64) + 1e-9 >= bound.floor(),
                    "out = {}, bound = {}", sub.out_edges(&mesh), bound
                );
            }
        }
    }

    /// Submesh iteration visits exactly node_count() distinct coordinates,
    /// all contained.
    #[test]
    fn submesh_iteration_consistent((mesh, a, b) in mesh_and_two()) {
        let sub = Submesh::bounding_box(&a, &b);
        let nodes: Vec<Coord> = sub.nodes().collect();
        prop_assert_eq!(nodes.len() as u64, sub.node_count());
        let set: std::collections::HashSet<_> = nodes.iter().collect();
        prop_assert_eq!(set.len(), nodes.len());
        prop_assert!(nodes.iter().all(|c| sub.contains(c) && mesh.contains(c)));
    }

    /// Cycle removal yields a simple, valid walk with the same endpoints,
    /// never longer, and idempotent.
    #[test]
    fn cycle_removal_properties((mesh, start) in mesh_and_coord(), steps in prop::collection::vec(0usize..6, 0..40)) {
        // Random walk.
        let mut nodes = vec![start];
        let mut cur = start;
        for s in steps {
            let nbs = mesh.neighbors(&cur);
            if nbs.is_empty() { break; }
            cur = nbs[s % nbs.len()];
            nodes.push(cur);
        }
        let p = Path::new(&mesh, nodes);
        let q = p.without_cycles();
        prop_assert!(q.is_simple());
        prop_assert!(q.is_valid(&mesh));
        prop_assert_eq!(q.source(), p.source());
        prop_assert_eq!(q.target(), p.target());
        prop_assert!(q.len() <= p.len());
        prop_assert_eq!(q.without_cycles(), q.clone());
        // A simple walk is at least as long as the distance.
        prop_assert!(q.len() as u64 >= mesh.dist(p.source(), p.target()));
    }
}
