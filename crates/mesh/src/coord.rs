//! Fixed-capacity mesh coordinates.
//!
//! Mesh dimensions in this library are small (the paper's results concern
//! `d ≤ O(log n)`, and in practice `d ≤ 8`), so coordinates are stored inline
//! in a fixed array rather than on the heap. This keeps per-packet path
//! selection allocation-free on its hot path.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Maximum number of mesh dimensions supported by [`Coord`].
///
/// Eight dimensions cover every configuration the paper's analysis targets
/// (the interesting regime is constant `d`; at `d = 8` even side length 2
/// already gives 256 nodes).
pub const MAX_DIM: usize = 8;

/// A point of the `d`-dimensional grid, `0 ≤ coord[i] < m_i`.
///
/// Stored inline (`Copy`) with capacity [`MAX_DIM`]; the active dimension
/// count is carried alongside. Two coordinates compare equal only if they
/// have the same dimensionality and identical components.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    xs: [u32; MAX_DIM],
    dim: u8,
}

impl Coord {
    /// Creates a coordinate from a slice of components.
    ///
    /// # Panics
    /// Panics if `xs.len() > MAX_DIM` or `xs` is empty.
    #[inline]
    pub fn new(xs: &[u32]) -> Self {
        assert!(
            !xs.is_empty() && xs.len() <= MAX_DIM,
            "coordinate dimension must be in 1..={MAX_DIM}, got {}",
            xs.len()
        );
        let mut arr = [0u32; MAX_DIM];
        arr[..xs.len()].copy_from_slice(xs);
        Self {
            xs: arr,
            dim: xs.len() as u8,
        }
    }

    /// The origin (all-zero) coordinate of dimension `dim`.
    #[inline]
    pub fn origin(dim: usize) -> Self {
        assert!((1..=MAX_DIM).contains(&dim));
        Self {
            xs: [0; MAX_DIM],
            dim: dim as u8,
        }
    }

    /// Number of dimensions of this coordinate.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The components as a slice of length [`Self::dim`].
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.xs[..self.dim as usize]
    }

    /// Mutable view of the components.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        &mut self.xs[..self.dim as usize]
    }

    /// Returns a copy with component `axis` replaced by `value`.
    #[inline]
    pub fn with(&self, axis: usize, value: u32) -> Self {
        debug_assert!(axis < self.dim());
        let mut c = *self;
        c.xs[axis] = value;
        c
    }

    /// L1 (Manhattan) distance to `other`, the mesh shortest-path distance.
    ///
    /// # Panics
    /// Panics in debug builds if dimensions differ.
    #[inline]
    pub fn l1(&self, other: &Coord) -> u64 {
        debug_assert_eq!(self.dim, other.dim);
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum()
    }

    /// L∞ (Chebyshev) distance to `other`.
    #[inline]
    pub fn linf(&self, other: &Coord) -> u32 {
        debug_assert_eq!(self.dim, other.dim);
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a.abs_diff(b))
            .max()
            .unwrap_or(0)
    }
}

impl Index<usize> for Coord {
    type Output = u32;
    #[inline]
    fn index(&self, i: usize) -> &u32 {
        &self.as_slice()[i]
    }
}

impl IndexMut<usize> for Coord {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut u32 {
        &mut self.as_mut_slice()[i]
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<(u32, u32)> for Coord {
    fn from((x, y): (u32, u32)) -> Self {
        Coord::new(&[x, y])
    }
}

impl From<(u32, u32, u32)> for Coord {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Coord::new(&[x, y, z])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let c = Coord::new(&[3, 5, 7]);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.as_slice(), &[3, 5, 7]);
        assert_eq!(c[1], 5);
    }

    #[test]
    fn origin_is_zero() {
        let c = Coord::origin(4);
        assert_eq!(c.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    fn with_replaces_single_axis() {
        let c = Coord::new(&[1, 2]).with(0, 9);
        assert_eq!(c.as_slice(), &[9, 2]);
    }

    #[test]
    fn l1_distance() {
        let a = Coord::new(&[0, 10]);
        let b = Coord::new(&[4, 3]);
        assert_eq!(a.l1(&b), 11);
        assert_eq!(b.l1(&a), 11);
        assert_eq!(a.l1(&a), 0);
    }

    #[test]
    fn linf_distance() {
        let a = Coord::new(&[0, 10, 2]);
        let b = Coord::new(&[4, 3, 2]);
        assert_eq!(a.linf(&b), 7);
    }

    #[test]
    fn equality_respects_dim() {
        assert_ne!(Coord::new(&[0]), Coord::origin(2));
        assert_eq!(Coord::new(&[0, 0]), Coord::origin(2));
    }

    #[test]
    #[should_panic]
    fn too_many_dims_panics() {
        let _ = Coord::new(&[0; MAX_DIM + 1]);
    }

    #[test]
    fn index_mut_updates() {
        let mut c = Coord::new(&[1, 2]);
        c[0] = 8;
        assert_eq!(c.as_slice(), &[8, 2]);
    }

    #[test]
    fn tuple_conversions() {
        assert_eq!(Coord::from((1, 2)).as_slice(), &[1, 2]);
        assert_eq!(Coord::from((1, 2, 3)).as_slice(), &[1, 2, 3]);
    }
}
