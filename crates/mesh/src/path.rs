//! Packet paths: walks through the mesh.

use crate::coord::Coord;
use crate::mesh::{EdgeId, Mesh};
use std::collections::HashMap;

/// A walk through the mesh: a sequence of pairwise-adjacent coordinates.
///
/// The length of a path `|p|` is the number of links it uses
/// (`nodes.len() - 1`); a single-node path has length 0 (Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<Coord>,
}

impl Path {
    /// Creates a path from a node sequence, validating adjacency.
    ///
    /// # Panics
    /// Panics if the sequence is empty or two consecutive nodes are not
    /// adjacent in `mesh`.
    pub fn new(mesh: &Mesh, nodes: Vec<Coord>) -> Self {
        assert!(!nodes.is_empty(), "a path must contain at least one node");
        for w in nodes.windows(2) {
            assert!(
                mesh.adjacent(&w[0], &w[1]),
                "non-adjacent consecutive path nodes {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        Self { nodes }
    }

    /// Creates a path without validating adjacency.
    ///
    /// Intended for construction sites that guarantee adjacency by
    /// construction (the routers); validity is still enforced in tests.
    pub fn new_unchecked(nodes: Vec<Coord>) -> Self {
        debug_assert!(!nodes.is_empty());
        Self { nodes }
    }

    /// The trivial path sitting at one node.
    pub fn trivial(c: Coord) -> Self {
        Self { nodes: vec![c] }
    }

    /// First node (the packet source).
    #[inline]
    pub fn source(&self) -> &Coord {
        self.nodes.first().unwrap()
    }

    /// Last node (the packet destination).
    #[inline]
    pub fn target(&self) -> &Coord {
        self.nodes.last().unwrap()
    }

    /// Number of links used, `|p|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True if the path uses no links (source equals destination).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node sequence.
    #[inline]
    pub fn nodes(&self) -> &[Coord] {
        &self.nodes
    }

    /// Iterator over the links used, as `(from, to)` coordinate pairs.
    pub fn hops(&self) -> impl Iterator<Item = (&Coord, &Coord)> {
        self.nodes.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Iterator over the undirected edge ids used.
    pub fn edge_ids<'a>(&'a self, mesh: &'a Mesh) -> impl Iterator<Item = EdgeId> + 'a {
        self.hops().map(move |(a, b)| mesh.edge_id(a, b))
    }

    /// True if every consecutive pair is adjacent in `mesh`.
    pub fn is_valid(&self, mesh: &Mesh) -> bool {
        self.nodes.windows(2).all(|w| mesh.adjacent(&w[0], &w[1]))
    }

    /// The stretch of the path: `|p| / dist(s, t)` (Section 2).
    ///
    /// Returns 1.0 for a trivial (`s == t`) path, matching the convention
    /// that the smallest stretch factor is 1.
    pub fn stretch(&self, mesh: &Mesh) -> f64 {
        let d = mesh.dist(self.source(), self.target());
        if d == 0 {
            return 1.0;
        }
        self.len() as f64 / d as f64
    }

    /// Removes all cycles, producing a simple (acyclic) walk with the same
    /// endpoints that uses a subsequence of the original links.
    ///
    /// The paper observes (after Lemma 3.8) that cycles can always be
    /// removed without increasing expected congestion. Implementation: scan
    /// left to right; on revisiting a node, cut the loop back to its first
    /// occurrence. The result visits each node at most once.
    pub fn remove_cycles(&mut self) {
        if self.nodes.len() <= 2 {
            return;
        }
        let mut first_seen: HashMap<Coord, usize> = HashMap::with_capacity(self.nodes.len());
        let mut out: Vec<Coord> = Vec::with_capacity(self.nodes.len());
        for &c in &self.nodes {
            if let Some(&pos) = first_seen.get(&c) {
                // Unwind the loop: drop everything after the first visit.
                for dropped in out.drain(pos + 1..) {
                    first_seen.remove(&dropped);
                }
            } else {
                first_seen.insert(c, out.len());
                out.push(c);
            }
        }
        self.nodes = out;
    }

    /// Returns a cycle-free copy (see [`Self::remove_cycles`]).
    pub fn without_cycles(&self) -> Path {
        let mut p = self.clone();
        p.remove_cycles();
        p
    }

    /// Appends another path starting where this one ends.
    ///
    /// # Panics
    /// Panics if `other` does not start at `self.target()`.
    pub fn extend_with(&mut self, other: &Path) {
        assert_eq!(
            self.target(),
            other.source(),
            "path concatenation endpoints mismatch"
        );
        self.nodes.extend_from_slice(&other.nodes[1..]);
    }

    /// True if no node repeats.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|c| seen.insert(*c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;

    fn c(xs: &[u32]) -> Coord {
        Coord::new(xs)
    }

    #[test]
    fn construction_and_len() {
        let m = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&m, vec![c(&[0, 0]), c(&[0, 1]), c(&[1, 1])]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), &c(&[0, 0]));
        assert_eq!(p.target(), &c(&[1, 1]));
        assert!(p.is_valid(&m));
    }

    #[test]
    #[should_panic]
    fn invalid_hop_panics() {
        let m = Mesh::new_mesh(&[4, 4]);
        let _ = Path::new(&m, vec![c(&[0, 0]), c(&[2, 0])]);
    }

    #[test]
    fn trivial_path() {
        let m = Mesh::new_mesh(&[4, 4]);
        let p = Path::trivial(c(&[2, 2]));
        assert!(p.is_empty());
        assert_eq!(p.stretch(&m), 1.0);
    }

    #[test]
    fn stretch_of_shortest_path_is_one() {
        let m = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&m, vec![c(&[0, 0]), c(&[0, 1]), c(&[0, 2])]);
        assert_eq!(p.stretch(&m), 1.0);
    }

    #[test]
    fn stretch_detour() {
        let m = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&m, vec![c(&[0, 0]), c(&[1, 0]), c(&[1, 1]), c(&[0, 1])]);
        assert_eq!(p.stretch(&m), 3.0);
    }

    #[test]
    fn remove_cycles_simple_loop() {
        let m = Mesh::new_mesh(&[4, 4]);
        // 00 -> 01 -> 11 -> 10 -> 00 -> 01... back to start then onward
        let mut p = Path::new(
            &m,
            vec![
                c(&[0, 0]),
                c(&[0, 1]),
                c(&[1, 1]),
                c(&[1, 0]),
                c(&[0, 0]),
                c(&[0, 1]),
                c(&[0, 2]),
            ],
        );
        p.remove_cycles();
        assert_eq!(p.nodes(), &[c(&[0, 0]), c(&[0, 1]), c(&[0, 2])]);
        assert!(p.is_simple());
        assert!(p.is_valid(&m));
    }

    #[test]
    fn remove_cycles_immediate_backtrack() {
        let m = Mesh::new_mesh(&[4, 4]);
        let mut p = Path::new(&m, vec![c(&[0, 0]), c(&[0, 1]), c(&[0, 0]), c(&[1, 0])]);
        p.remove_cycles();
        assert_eq!(p.nodes(), &[c(&[0, 0]), c(&[1, 0])]);
    }

    #[test]
    fn remove_cycles_idempotent() {
        let m = Mesh::new_mesh(&[4, 4]);
        let mut p = Path::new(
            &m,
            vec![
                c(&[0, 0]),
                c(&[0, 1]),
                c(&[1, 1]),
                c(&[1, 0]),
                c(&[0, 0]),
                c(&[0, 1]),
            ],
        );
        p.remove_cycles();
        let once = p.clone();
        p.remove_cycles();
        assert_eq!(p, once);
        assert_eq!(p.nodes(), &[c(&[0, 0]), c(&[0, 1])]);
    }

    #[test]
    fn remove_cycles_preserves_endpoints() {
        let m = Mesh::new_mesh(&[4, 4]);
        let mut p = Path::new(
            &m,
            vec![
                c(&[2, 2]),
                c(&[2, 3]),
                c(&[3, 3]),
                c(&[3, 2]),
                c(&[2, 2]),
                c(&[1, 2]),
            ],
        );
        let (s, t) = (*p.source(), *p.target());
        p.remove_cycles();
        assert_eq!((*p.source(), *p.target()), (s, t));
    }

    #[test]
    fn extend_with_concatenates() {
        let m = Mesh::new_mesh(&[4, 4]);
        let mut p = Path::new(&m, vec![c(&[0, 0]), c(&[0, 1])]);
        let q = Path::new(&m, vec![c(&[0, 1]), c(&[1, 1])]);
        p.extend_with(&q);
        assert_eq!(p.len(), 2);
        assert_eq!(p.target(), &c(&[1, 1]));
    }

    #[test]
    #[should_panic]
    fn extend_with_mismatch_panics() {
        let m = Mesh::new_mesh(&[4, 4]);
        let mut p = Path::new(&m, vec![c(&[0, 0]), c(&[0, 1])]);
        let q = Path::new(&m, vec![c(&[1, 1]), c(&[1, 0])]);
        p.extend_with(&q);
    }

    #[test]
    fn edge_ids_count() {
        let m = Mesh::new_mesh(&[4, 4]);
        let p = Path::new(&m, vec![c(&[0, 0]), c(&[0, 1]), c(&[1, 1])]);
        assert_eq!(p.edge_ids(&m).count(), 2);
    }
}
