//! Axis-aligned submeshes `M' ⊆ M`.
//!
//! The paper refers to submeshes by their end points in every dimension,
//! e.g. `[0,3][2,5]` is the 4×4 submesh with x ∈ [0,3] and y ∈ [2,5]
//! (Section 2). Bounds here are inclusive, matching that notation.

use crate::coord::Coord;
use crate::mesh::{Mesh, Topology};
use rand::Rng;

/// An axis-aligned box of mesh nodes, with inclusive bounds.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Submesh {
    lo: Coord,
    hi: Coord,
}

impl std::fmt::Debug for Submesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.lo.dim() {
            write!(f, "[{},{}]", self.lo[i], self.hi[i])?;
        }
        Ok(())
    }
}

impl Submesh {
    /// Creates a submesh from inclusive corner coordinates.
    ///
    /// # Panics
    /// Panics if dimensions differ or `lo[i] > hi[i]` for some axis.
    pub fn new(lo: Coord, hi: Coord) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "corner dimensions differ");
        for i in 0..lo.dim() {
            assert!(
                lo[i] <= hi[i],
                "empty extent on axis {i}: [{},{}]",
                lo[i],
                hi[i]
            );
        }
        Self { lo, hi }
    }

    /// The single-node submesh `{c}`.
    pub fn point(c: Coord) -> Self {
        Self { lo: c, hi: c }
    }

    /// The whole mesh as a submesh.
    pub fn whole(mesh: &Mesh) -> Self {
        let mut hi = Coord::origin(mesh.dim());
        for i in 0..mesh.dim() {
            hi[i] = mesh.side(i) - 1;
        }
        Self {
            lo: Coord::origin(mesh.dim()),
            hi,
        }
    }

    /// Lower (inclusive) corner.
    #[inline]
    pub fn lo(&self) -> &Coord {
        &self.lo
    }

    /// Upper (inclusive) corner.
    #[inline]
    pub fn hi(&self) -> &Coord {
        &self.hi
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// Side length along `axis` (inclusive extent).
    #[inline]
    pub fn side(&self, axis: usize) -> u32 {
        self.hi[axis] - self.lo[axis] + 1
    }

    /// Smallest side length over all axes.
    #[inline]
    pub fn min_side(&self) -> u32 {
        (0..self.dim()).map(|i| self.side(i)).min().unwrap()
    }

    /// Largest side length over all axes.
    #[inline]
    pub fn max_side(&self) -> u32 {
        (0..self.dim()).map(|i| self.side(i)).max().unwrap()
    }

    /// Number of nodes contained.
    pub fn node_count(&self) -> u64 {
        (0..self.dim()).map(|i| u64::from(self.side(i))).product()
    }

    /// True if the coordinate lies inside.
    #[inline]
    pub fn contains(&self, c: &Coord) -> bool {
        debug_assert_eq!(c.dim(), self.dim());
        (0..self.dim()).all(|i| self.lo[i] <= c[i] && c[i] <= self.hi[i])
    }

    /// True if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_submesh(&self, other: &Submesh) -> bool {
        self.contains(&other.lo) && self.contains(&other.hi)
    }

    /// Intersection with another submesh, if non-empty.
    pub fn intersection(&self, other: &Submesh) -> Option<Submesh> {
        debug_assert_eq!(self.dim(), other.dim());
        let mut lo = Coord::origin(self.dim());
        let mut hi = Coord::origin(self.dim());
        for i in 0..self.dim() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if l > h {
                return None;
            }
            lo[i] = l;
            hi[i] = h;
        }
        Some(Submesh::new(lo, hi))
    }

    /// A node sampled uniformly at random from the submesh.
    ///
    /// This is the raw-`Rng` convenience; the routing algorithms use
    /// bit-metered sampling from `oblivion-core` instead so that the random
    /// bit counts of Section 5 can be reported exactly.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Coord {
        let mut c = self.lo;
        for i in 0..self.dim() {
            c[i] = rng.gen_range(self.lo[i]..=self.hi[i]);
        }
        c
    }

    /// Iterator over all contained coordinates, row-major.
    pub fn nodes(&self) -> SubmeshNodes {
        SubmeshNodes {
            sub: *self,
            next: Some(self.lo),
        }
    }

    /// The bounding box of two coordinates: the region `R` of Lemma 4.1.
    pub fn bounding_box(a: &Coord, b: &Coord) -> Submesh {
        assert_eq!(a.dim(), b.dim());
        let mut lo = Coord::origin(a.dim());
        let mut hi = Coord::origin(a.dim());
        for i in 0..a.dim() {
            lo[i] = a[i].min(b[i]);
            hi[i] = a[i].max(b[i]);
        }
        Submesh::new(lo, hi)
    }

    /// `out(M')`: the number of links connecting a node inside the submesh
    /// with a node outside it (Section 2).
    ///
    /// Computed in closed form per axis: each face that is not flush with a
    /// mesh boundary (or that has a wrap link, on the torus) contributes
    /// `∏_{j≠i} side(j)` outgoing links.
    pub fn out_edges(&self, mesh: &Mesh) -> u64 {
        debug_assert_eq!(self.dim(), mesh.dim());
        let mut total = 0u64;
        for axis in 0..self.dim() {
            let m = mesh.side(axis);
            if self.side(axis) == m {
                // Spans the whole dimension: no crossing links along it.
                continue;
            }
            let face: u64 = (0..self.dim())
                .filter(|&j| j != axis)
                .map(|j| u64::from(self.side(j)))
                .product();
            let mut faces = 0u64;
            match mesh.topology() {
                Topology::Mesh => {
                    if self.lo[axis] > 0 {
                        faces += 1;
                    }
                    if self.hi[axis] + 1 < m {
                        faces += 1;
                    }
                }
                Topology::Torus => {
                    // Not spanning the full dimension, so both directed
                    // faces leave the submesh. For m == 2 the two faces
                    // reach the *same* single link, counted once.
                    faces = if m == 2 { 1 } else { 2 };
                }
            }
            total += faces * face;
        }
        total
    }
}

/// Row-major iterator over the coordinates of a [`Submesh`].
pub struct SubmeshNodes {
    sub: Submesh,
    next: Option<Coord>,
}

impl Iterator for SubmeshNodes {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        let cur = self.next?;
        // Advance like an odometer, last axis fastest (row-major).
        let mut nxt = cur;
        let d = self.sub.dim();
        let mut axis = d;
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            if nxt[axis] < self.sub.hi[axis] {
                nxt[axis] += 1;
                for a in axis + 1..d {
                    nxt[a] = self.sub.lo[a];
                }
                self.next = Some(nxt);
                break;
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sm(lo: &[u32], hi: &[u32]) -> Submesh {
        Submesh::new(Coord::new(lo), Coord::new(hi))
    }

    #[test]
    fn sides_and_counts() {
        let s = sm(&[0, 2], &[3, 5]);
        assert_eq!(s.side(0), 4);
        assert_eq!(s.side(1), 4);
        assert_eq!(s.node_count(), 16);
        assert_eq!(s.min_side(), 4);
    }

    #[test]
    fn containment() {
        let s = sm(&[1, 1], &[2, 2]);
        assert!(s.contains(&Coord::new(&[1, 2])));
        assert!(!s.contains(&Coord::new(&[0, 2])));
        assert!(s.contains_submesh(&sm(&[1, 1], &[2, 1])));
        assert!(!s.contains_submesh(&sm(&[1, 1], &[3, 2])));
    }

    #[test]
    fn intersection() {
        let a = sm(&[0, 0], &[3, 3]);
        let b = sm(&[2, 2], &[5, 5]);
        assert_eq!(a.intersection(&b), Some(sm(&[2, 2], &[3, 3])));
        let c = sm(&[4, 4], &[5, 5]);
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn node_iteration_is_exhaustive_row_major() {
        let s = sm(&[1, 0], &[2, 1]);
        let v: Vec<_> = s.nodes().collect();
        assert_eq!(
            v,
            vec![
                Coord::new(&[1, 0]),
                Coord::new(&[1, 1]),
                Coord::new(&[2, 0]),
                Coord::new(&[2, 1]),
            ]
        );
    }

    #[test]
    fn point_iteration() {
        let s = Submesh::point(Coord::new(&[2, 2]));
        assert_eq!(s.nodes().count(), 1);
    }

    #[test]
    fn random_node_is_inside() {
        let s = sm(&[2, 3, 1], &[5, 9, 1]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(s.contains(&s.random_node(&mut rng)));
        }
    }

    /// Brute-force count of outgoing links for cross-checking the formula.
    fn brute_out(sub: &Submesh, mesh: &Mesh) -> u64 {
        let mut seen = std::collections::HashSet::new();
        for c in sub.nodes() {
            for nb in mesh.neighbors(&c) {
                if !sub.contains(&nb) {
                    seen.insert(mesh.edge_id(&c, &nb));
                }
            }
        }
        seen.len() as u64
    }

    #[test]
    fn out_edges_matches_brute_force_mesh() {
        let mesh = Mesh::new_mesh(&[6, 6]);
        for sub in [
            sm(&[0, 0], &[2, 2]),
            sm(&[1, 1], &[4, 4]),
            sm(&[0, 0], &[5, 5]),
            sm(&[0, 2], &[5, 3]),
            sm(&[3, 3], &[3, 3]),
        ] {
            assert_eq!(sub.out_edges(&mesh), brute_out(&sub, &mesh), "{sub:?}");
        }
    }

    #[test]
    fn out_edges_matches_brute_force_torus() {
        let mesh = Mesh::new_torus(&[6, 6]);
        for sub in [
            sm(&[0, 0], &[2, 2]),
            sm(&[1, 1], &[4, 4]),
            sm(&[0, 0], &[5, 5]),
            sm(&[0, 2], &[5, 3]),
        ] {
            assert_eq!(sub.out_edges(&mesh), brute_out(&sub, &mesh), "{sub:?}");
        }
    }

    #[test]
    fn out_edges_torus_side_two() {
        let mesh = Mesh::new_torus(&[2, 4]);
        let sub = sm(&[0, 0], &[0, 3]); // one ring
        assert_eq!(sub.out_edges(&mesh), brute_out(&sub, &mesh));
    }

    #[test]
    fn out_edges_3d() {
        let mesh = Mesh::new_mesh(&[4, 4, 4]);
        let sub = sm(&[1, 1, 1], &[2, 2, 2]);
        assert_eq!(sub.out_edges(&mesh), brute_out(&sub, &mesh));
        assert_eq!(sub.out_edges(&mesh), 6 * 4); // cube surface
    }

    #[test]
    fn bounding_box() {
        let r = Submesh::bounding_box(&Coord::new(&[5, 1]), &Coord::new(&[2, 4]));
        assert_eq!(r, sm(&[2, 1], &[5, 4]));
    }

    #[test]
    fn whole_mesh() {
        let mesh = Mesh::new_mesh(&[3, 5]);
        let w = Submesh::whole(&mesh);
        assert_eq!(w.node_count() as usize, mesh.node_count());
        assert_eq!(w.out_edges(&mesh), 0);
    }
}
