//! The `d`-dimensional mesh (and torus) network.
//!
//! The network model of the paper (Section 2): a `d`-dimensional grid of
//! nodes with side length `m_i` in dimension `i`, a bidirectional link
//! between each pair of adjacent nodes, `n = ∏ m_i` nodes in total.

use crate::coord::Coord;

/// Whether wrap-around links exist along each dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Plain mesh: no links at the boundaries.
    Mesh,
    /// Torus: additional wrap-around link in every dimension of side `> 2`
    /// (for side 2 the wrap link would duplicate the direct link, so it is
    /// omitted, the standard convention).
    Torus,
}

/// Identifier of a mesh node: the row-major linear index of its coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of an undirected mesh edge (an index into `0..mesh.edge_count()`).
///
/// Edges are grouped by axis: all edges along dimension 0 first, then
/// dimension 1, and so on. Within an axis the edge from `u` to `u + e_i`
/// is owned by its lower endpoint `u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A `d`-dimensional mesh network.
///
/// ```
/// use oblivion_mesh::{Mesh, Coord};
/// let m = Mesh::new_mesh(&[4, 4]);
/// assert_eq!(m.node_count(), 16);
/// assert_eq!(m.edge_count(), 24); // 2 * 4 * 3
/// let a = m.node_id(&Coord::new(&[0, 0]));
/// let b = m.node_id(&Coord::new(&[3, 3]));
/// assert_eq!(m.dist_ids(a, b), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    dims: Vec<u32>,
    /// Row-major strides: `strides[i] = ∏_{j>i} dims[j]`.
    strides: Vec<usize>,
    /// Per-axis starting offset into the global edge index space.
    edge_offsets: Vec<usize>,
    /// Per-axis stride tables of the "reduced" grid used for mesh-edge slots.
    edge_strides: Vec<Vec<usize>>,
    edge_count: usize,
    node_count: usize,
    topology: Topology,
}

impl Mesh {
    /// Creates a mesh with the given side lengths (no wrap-around links).
    ///
    /// # Panics
    /// Panics if `dims` is empty, longer than [`crate::MAX_DIM`], contains a
    /// zero, or if the node count overflows `usize`.
    pub fn new_mesh(dims: &[u32]) -> Self {
        Self::new(dims, Topology::Mesh)
    }

    /// Creates a torus with the given side lengths.
    pub fn new_torus(dims: &[u32]) -> Self {
        Self::new(dims, Topology::Torus)
    }

    /// Creates a network with the given side lengths and topology.
    pub fn new(dims: &[u32], topology: Topology) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= crate::MAX_DIM,
            "mesh dimension must be in 1..={}, got {}",
            crate::MAX_DIM,
            dims.len()
        );
        assert!(dims.iter().all(|&m| m >= 1), "side lengths must be >= 1");
        let d = dims.len();
        let mut node_count = 1usize;
        for &m in dims {
            node_count = node_count
                .checked_mul(m as usize)
                .expect("node count overflow");
        }
        let mut strides = vec![1usize; d];
        for i in (0..d.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1] as usize;
        }
        // Edge bookkeeping.
        let mut edge_offsets = Vec::with_capacity(d);
        let mut edge_strides = Vec::with_capacity(d);
        let mut edge_count = 0usize;
        for axis in 0..d {
            edge_offsets.push(edge_count);
            let owners_on_axis = Self::edge_owners_on_axis(dims[axis], topology);
            // Strides of the grid in which dimension `axis` is shrunk to the
            // number of owner positions.
            let mut st = vec![1usize; d];
            for i in (0..d.saturating_sub(1)).rev() {
                let size = if i + 1 == axis {
                    owners_on_axis as usize
                } else {
                    dims[i + 1] as usize
                };
                st[i] = st[i + 1] * size;
            }
            let axis_edges = if owners_on_axis == 0 {
                0
            } else {
                dims.iter()
                    .enumerate()
                    .map(|(i, &m)| {
                        if i == axis {
                            owners_on_axis as usize
                        } else {
                            m as usize
                        }
                    })
                    .product()
            };
            edge_strides.push(st);
            edge_count += axis_edges;
        }
        Self {
            dims: dims.to_vec(),
            strides,
            edge_offsets,
            edge_strides,
            edge_count,
            node_count,
            topology,
        }
    }

    /// How many nodes along `axis` own an edge towards `+e_axis`.
    fn edge_owners_on_axis(m: u32, topology: Topology) -> u32 {
        match topology {
            Topology::Mesh => m.saturating_sub(1),
            Topology::Torus => {
                if m <= 2 {
                    m.saturating_sub(1)
                } else {
                    m
                }
            }
        }
    }

    /// The topology (mesh or torus).
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Side lengths `m_1, …, m_d`.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Side length along `axis`.
    #[inline]
    pub fn side(&self, axis: usize) -> u32 {
        self.dims[axis]
    }

    /// Total number of nodes `n = ∏ m_i`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of undirected links `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Approximate bytes of heap + inline state this mesh holds alive:
    /// the struct itself plus its dimension, stride, and edge-indexing
    /// tables. The basis of the serving registry's per-tenant
    /// `mesh_state_bytes` gauge — routing state as a measured resource.
    pub fn state_bytes(&self) -> u64 {
        let inline = std::mem::size_of::<Self>();
        let heap = std::mem::size_of_val(self.dims.as_slice())
            + std::mem::size_of_val(self.strides.as_slice())
            + std::mem::size_of_val(self.edge_offsets.as_slice())
            + self
                .edge_strides
                .iter()
                .map(|v| std::mem::size_of::<Vec<usize>>() + std::mem::size_of_val(v.as_slice()))
                .sum::<usize>();
        (inline + heap) as u64
    }

    /// Network diameter: the maximum shortest-path distance between nodes.
    pub fn diameter(&self) -> u64 {
        self.dims
            .iter()
            .map(|&m| match self.topology {
                Topology::Mesh => u64::from(m) - 1,
                Topology::Torus => u64::from(m) / 2,
            })
            .sum()
    }

    /// True if every coordinate lies within the side lengths.
    #[inline]
    pub fn contains(&self, c: &Coord) -> bool {
        c.dim() == self.dim() && c.as_slice().iter().zip(&self.dims).all(|(&x, &m)| x < m)
    }

    /// Linear (row-major) node id of a coordinate.
    ///
    /// # Panics
    /// Panics in debug builds if the coordinate lies outside the mesh.
    #[inline]
    pub fn node_id(&self, c: &Coord) -> NodeId {
        debug_assert!(
            self.contains(c),
            "coordinate {c:?} outside mesh {:?}",
            self.dims
        );
        let mut idx = 0usize;
        for (i, &x) in c.as_slice().iter().enumerate() {
            idx += x as usize * self.strides[i];
        }
        NodeId(idx)
    }

    /// Coordinate of a node id.
    #[inline]
    pub fn coord(&self, id: NodeId) -> Coord {
        debug_assert!(id.0 < self.node_count);
        let mut c = Coord::origin(self.dim());
        let mut rem = id.0;
        for i in 0..self.dim() {
            c[i] = (rem / self.strides[i]) as u32;
            rem %= self.strides[i];
        }
        c
    }

    /// Distance along one axis, respecting wrap-around on the torus.
    #[inline]
    pub fn axis_dist(&self, axis: usize, a: u32, b: u32) -> u64 {
        let direct = u64::from(a.abs_diff(b));
        match self.topology {
            Topology::Mesh => direct,
            Topology::Torus => direct.min(u64::from(self.dims[axis]) - direct),
        }
    }

    /// Shortest-path distance `dist(a, b)` between two coordinates.
    #[inline]
    pub fn dist(&self, a: &Coord, b: &Coord) -> u64 {
        (0..self.dim()).map(|i| self.axis_dist(i, a[i], b[i])).sum()
    }

    /// Shortest-path distance between two node ids.
    #[inline]
    pub fn dist_ids(&self, a: NodeId, b: NodeId) -> u64 {
        self.dist(&self.coord(a), &self.coord(b))
    }

    /// Steps coordinate `c` one hop towards `target` along `axis`,
    /// choosing the shorter wrap direction on a torus. Returns the new
    /// coordinate, or `None` if `c` and `target` already agree on `axis`.
    pub fn step_towards(&self, c: &Coord, target: u32, axis: usize) -> Option<Coord> {
        let x = c[axis];
        if x == target {
            return None;
        }
        let m = self.dims[axis];
        let next = match self.topology {
            Topology::Mesh => {
                if target > x {
                    x + 1
                } else {
                    x - 1
                }
            }
            Topology::Torus => {
                let fwd = (target + m - x) % m; // steps going +1
                let bwd = (x + m - target) % m; // steps going -1
                if fwd <= bwd {
                    (x + 1) % m
                } else {
                    (x + m - 1) % m
                }
            }
        };
        Some(c.with(axis, next))
    }

    /// All neighbors of a coordinate (2d at interior nodes, fewer at mesh
    /// boundaries).
    pub fn neighbors(&self, c: &Coord) -> Vec<Coord> {
        let mut out = Vec::with_capacity(2 * self.dim());
        for axis in 0..self.dim() {
            let m = self.dims[axis];
            if m == 1 {
                continue;
            }
            let x = c[axis];
            match self.topology {
                Topology::Mesh => {
                    if x > 0 {
                        out.push(c.with(axis, x - 1));
                    }
                    if x + 1 < m {
                        out.push(c.with(axis, x + 1));
                    }
                }
                Topology::Torus => {
                    out.push(c.with(axis, (x + m - 1) % m));
                    if m > 2 {
                        out.push(c.with(axis, (x + 1) % m));
                    }
                }
            }
        }
        out
    }

    /// True if `a` and `b` are joined by a link.
    pub fn adjacent(&self, a: &Coord, b: &Coord) -> bool {
        if a.dim() != b.dim() || a == b {
            return false;
        }
        let mut diff_axis = None;
        for i in 0..self.dim() {
            if a[i] != b[i] {
                if diff_axis.is_some() {
                    return false;
                }
                diff_axis = Some(i);
            }
        }
        let axis = diff_axis.unwrap();
        self.axis_dist(axis, a[axis], b[axis]) == 1
    }

    /// The id of the undirected edge between two adjacent coordinates.
    ///
    /// # Panics
    /// Panics if the coordinates are not adjacent.
    pub fn edge_id(&self, a: &Coord, b: &Coord) -> EdgeId {
        assert!(self.adjacent(a, b), "{a:?} and {b:?} are not adjacent");
        let axis = (0..self.dim()).find(|&i| a[i] != b[i]).unwrap();
        let m = self.dims[axis];
        let (xa, xb) = (a[axis], b[axis]);
        // The owner is the lower endpoint, except for a torus wrap link
        // (between 0 and m-1, only present for m > 2) which is owned by
        // the m-1 endpoint.
        let is_wrap =
            self.topology == Topology::Torus && m > 2 && xa.min(xb) == 0 && xa.max(xb) == m - 1;
        let owner = if (xa < xb) != is_wrap { a } else { b };
        let st = &self.edge_strides[axis];
        let mut slot = 0usize;
        for i in 0..self.dim() {
            slot += owner[i] as usize * st[i];
        }
        EdgeId(self.edge_offsets[axis] + slot)
    }

    /// The axis an edge runs along, and its owner (lower) endpoint.
    pub fn edge_endpoints(&self, e: EdgeId) -> (Coord, Coord) {
        let axis = match self.edge_offsets.binary_search(&e.0) {
            Ok(i) => {
                // Several axes may share an offset when some have zero edges;
                // take the last axis whose offset equals e.0 and has edges.
                let mut a = i;
                while a + 1 < self.dim() && self.edge_offsets[a + 1] == e.0 {
                    a += 1;
                }
                a
            }
            Err(i) => i - 1,
        };
        let slot = e.0 - self.edge_offsets[axis];
        let st = &self.edge_strides[axis];
        let mut owner = Coord::origin(self.dim());
        let mut rem = slot;
        for i in 0..self.dim() {
            owner[i] = (rem / st[i]) as u32;
            rem %= st[i];
        }
        let m = self.dims[axis];
        let other = owner.with(axis, (owner[axis] + 1) % m);
        (owner, other)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId)
    }

    /// Iterator over all coordinates, in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.node_ids().map(move |id| self.coord(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_indexing_roundtrip() {
        let m = Mesh::new_mesh(&[3, 4, 5]);
        assert_eq!(m.node_count(), 60);
        for id in m.node_ids() {
            assert_eq!(m.node_id(&m.coord(id)), id);
        }
    }

    #[test]
    fn edge_counts_2d_mesh() {
        let m = Mesh::new_mesh(&[4, 4]);
        // 4 columns * 3 + 4 rows * 3
        assert_eq!(m.edge_count(), 24);
    }

    #[test]
    fn edge_counts_2d_torus() {
        let t = Mesh::new_torus(&[4, 4]);
        assert_eq!(t.edge_count(), 32);
    }

    #[test]
    fn edge_counts_side_two_torus_has_no_double_edges() {
        let t = Mesh::new_torus(&[2, 2]);
        assert_eq!(t.edge_count(), 4); // same as the mesh: a 4-cycle
    }

    #[test]
    fn edge_ids_are_unique_and_dense() {
        for mesh in [
            Mesh::new_mesh(&[4, 4]),
            Mesh::new_mesh(&[3, 5]),
            Mesh::new_mesh(&[2, 3, 4]),
            Mesh::new_torus(&[4, 4]),
            Mesh::new_torus(&[3, 3, 3]),
            Mesh::new_mesh(&[7]),
            Mesh::new_mesh(&[1, 6]),
        ] {
            let mut seen = vec![false; mesh.edge_count()];
            for c in mesh.coords().collect::<Vec<_>>() {
                for nb in mesh.neighbors(&c) {
                    let e = mesh.edge_id(&c, &nb);
                    assert!(e.0 < mesh.edge_count());
                    // Symmetric
                    assert_eq!(e, mesh.edge_id(&nb, &c));
                    seen[e.0] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "edge ids not dense: {:?}",
                mesh.dims()
            );
        }
    }

    #[test]
    fn edge_endpoints_roundtrip() {
        for mesh in [
            Mesh::new_mesh(&[4, 4]),
            Mesh::new_torus(&[4, 3]),
            Mesh::new_mesh(&[2, 3, 4]),
        ] {
            for eid in 0..mesh.edge_count() {
                let (a, b) = mesh.edge_endpoints(EdgeId(eid));
                assert!(mesh.adjacent(&a, &b), "{a:?}-{b:?}");
                assert_eq!(mesh.edge_id(&a, &b), EdgeId(eid));
            }
        }
    }

    #[test]
    fn mesh_distance_is_l1() {
        let m = Mesh::new_mesh(&[8, 8]);
        let a = Coord::new(&[0, 0]);
        let b = Coord::new(&[7, 5]);
        assert_eq!(m.dist(&a, &b), 12);
    }

    #[test]
    fn torus_distance_wraps() {
        let t = Mesh::new_torus(&[8, 8]);
        let a = Coord::new(&[0, 0]);
        let b = Coord::new(&[7, 5]);
        assert_eq!(t.dist(&a, &b), 1 + 3);
    }

    #[test]
    fn diameter() {
        assert_eq!(Mesh::new_mesh(&[8, 8]).diameter(), 14);
        assert_eq!(Mesh::new_torus(&[8, 8]).diameter(), 8);
    }

    #[test]
    fn neighbors_at_corner_and_interior() {
        let m = Mesh::new_mesh(&[4, 4]);
        assert_eq!(m.neighbors(&Coord::new(&[0, 0])).len(), 2);
        assert_eq!(m.neighbors(&Coord::new(&[1, 2])).len(), 4);
        let t = Mesh::new_torus(&[4, 4]);
        assert_eq!(t.neighbors(&Coord::new(&[0, 0])).len(), 4);
    }

    #[test]
    fn step_towards_mesh() {
        let m = Mesh::new_mesh(&[8]);
        let c = Coord::new(&[3]);
        assert_eq!(m.step_towards(&c, 6, 0).unwrap()[0], 4);
        assert_eq!(m.step_towards(&c, 0, 0).unwrap()[0], 2);
        assert!(m.step_towards(&c, 3, 0).is_none());
    }

    #[test]
    fn step_towards_torus_takes_short_way() {
        let t = Mesh::new_torus(&[8]);
        let c = Coord::new(&[1]);
        // target 6: going backwards over the wrap (1 -> 0 -> 7 -> 6) is 3
        // steps, forward is 5 steps.
        assert_eq!(t.step_towards(&c, 6, 0).unwrap()[0], 0);
    }

    #[test]
    fn adjacency() {
        let m = Mesh::new_mesh(&[4, 4]);
        assert!(m.adjacent(&Coord::new(&[0, 0]), &Coord::new(&[0, 1])));
        assert!(!m.adjacent(&Coord::new(&[0, 0]), &Coord::new(&[1, 1])));
        assert!(!m.adjacent(&Coord::new(&[0, 0]), &Coord::new(&[0, 3])));
        let t = Mesh::new_torus(&[4, 4]);
        assert!(t.adjacent(&Coord::new(&[0, 0]), &Coord::new(&[0, 3])));
    }

    #[test]
    fn one_dimensional_line() {
        let m = Mesh::new_mesh(&[5]);
        assert_eq!(m.edge_count(), 4);
        assert_eq!(m.diameter(), 4);
    }

    #[test]
    fn degenerate_side_one() {
        let m = Mesh::new_mesh(&[1, 5]);
        assert_eq!(m.node_count(), 5);
        assert_eq!(m.edge_count(), 4);
        assert_eq!(m.neighbors(&Coord::new(&[0, 2])).len(), 2);
    }
}
