//! # oblivion-mesh
//!
//! The `d`-dimensional mesh/torus network substrate underlying the
//! *oblivion* reproduction of Busch, Magdon-Ismail & Xi, "Optimal Oblivious
//! Path Selection on the Mesh" (IPDPS 2005).
//!
//! This crate provides the network model of the paper's Section 2:
//!
//! * [`Coord`] — inline, allocation-free grid coordinates;
//! * [`Mesh`] — the network: node/edge indexing, adjacency, shortest-path
//!   distances, and (optionally) torus wrap-around links;
//! * [`Submesh`] — axis-aligned boxes `M' ⊆ M` with the boundary-link count
//!   `out(M')` used by the boundary-congestion bound;
//! * [`Path`] — validated walks with length, stretch, and cycle removal.
//!
//! Everything here is deterministic and single-threaded; randomness only
//! enters through explicitly passed RNGs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod mesh;
mod path;
mod submesh;

pub use coord::{Coord, MAX_DIM};
pub use mesh::{EdgeId, Mesh, NodeId, Topology};
pub use path::Path;
pub use submesh::{Submesh, SubmeshNodes};
