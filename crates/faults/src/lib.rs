//! # oblivion-faults
//!
//! Deterministic fault injection for mesh routing simulations.
//!
//! Oblivious routing is attractive precisely for large distributed
//! systems where central reconfiguration is impractical, so the
//! simulators must be able to answer: *what happens when links fail and
//! packets are lost?* This crate supplies the failure model as a
//! [`FaultPlan`] — which links are down when, which nodes are dead, and
//! which traversals silently drop a packet — as a **pure function of
//! `(mesh, fault seed)`**. The plan is materialized once and then only
//! *read* during simulation, so the sequential and sharded engines can
//! query it concurrently at contention time and still produce
//! bit-identical results for any thread count.
//!
//! The model:
//!
//! * **Link failures.** Each edge is independently fault-prone with
//!   probability [`FaultConfig::link_fail_prob`]. A permanent fault takes
//!   the link down at a seed-derived step and never repairs it; a
//!   transient fault alternates up/down periods with mean up time
//!   [`FaultConfig::mtbf`] and mean down time (MTTR)
//!   [`FaultConfig::mttr`], a classic renewal process.
//! * **Node failures.** Each node is dead for the whole run with
//!   probability [`FaultConfig::node_fail_prob`]; a dead node's incident
//!   links are down from step 0 and it neither injects nor receives.
//! * **Packet loss.** Every successful link traversal is dropped with
//!   probability [`FaultConfig::drop_prob`], decided by a stateless hash
//!   of `(fault seed, edge, step, packet)` so the decision is identical
//!   no matter which thread, or engine, asks.
//!
//! Recovery — what a packet does when its next hop is down — is the
//! simulator's job; [`RecoveryPolicy`] names the options and this crate
//! supplies the derived randomness ([`FaultPlan::resample_rng`]) that
//! makes `resample` recovery deterministic. Resampling exploits the
//! structure of oblivious routers: redrawing the random intermediate
//! choices from the packet's current node yields a fresh path that is
//! independent of the failed one, so a handful of redraws route around
//! any non-disconnecting fault set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oblivion_mesh::{EdgeId, Mesh, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 mix, the standard seed expander (same constants as the
/// simulator's per-packet RNG derivation).
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const LINK_SALT: u64 = 0x4C49_4E4B_5F46_4C54; // "LINK_FLT"
const NODE_SALT: u64 = 0x4E4F_4445_5F46_4C54; // "NODE_FLT"
const DROP_SALT: u64 = 0x4452_4F50_5F46_4C54; // "DROP_FLT"
const RESAMPLE_SALT: u64 = 0x5245_5341_4D50_4C45; // "RESAMPLE"

/// Whether a failed link stays down or repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// A failed link goes down at a seed-derived step and stays down.
    Permanent,
    /// A failed link alternates up/down periods (renewal process).
    Transient,
}

impl FaultMode {
    /// Parses a CLI name (`permanent` | `transient`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "permanent" => Ok(Self::Permanent),
            "transient" => Ok(Self::Transient),
            other => Err(format!(
                "unknown fault mode `{other}` (permanent|transient)"
            )),
        }
    }
}

/// What a packet does when its next hop's link is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Retry the same hop with bounded exponential backoff; dead-letter
    /// once the retry budget is exhausted.
    Wait,
    /// Redraw the oblivious path from the current node with fresh random
    /// bits (one independent redraw per consumed budget unit);
    /// dead-letter once the budget is exhausted.
    Resample,
    /// Retry every step without backoff, then dead-letter after the
    /// budget — the "drop after budget" accounting policy.
    DropAfterBudget,
}

impl RecoveryPolicy {
    /// Parses a CLI name (`wait` | `resample` | `drop`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "wait" => Ok(Self::Wait),
            "resample" => Ok(Self::Resample),
            "drop" | "drop-after-budget" => Ok(Self::DropAfterBudget),
            other => Err(format!(
                "unknown recovery policy `{other}` (wait|resample|drop)"
            )),
        }
    }

    /// The CLI name (inverse of [`Self::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Wait => "wait",
            Self::Resample => "resample",
            Self::DropAfterBudget => "drop",
        }
    }
}

/// The fault model's parameters. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a link is fault-prone at all.
    pub link_fail_prob: f64,
    /// Permanent or transient link failures.
    pub mode: FaultMode,
    /// Mean down time (steps) of a transient failure; ignored for
    /// permanent faults. Clamped to at least 1.
    pub mttr: u64,
    /// Mean up time (steps) between transient failures of a fault-prone
    /// link. Clamped to at least 1.
    pub mtbf: u64,
    /// Probability that a node is dead for the whole run.
    pub node_fail_prob: f64,
    /// Probability that any single link traversal drops the packet.
    pub drop_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            link_fail_prob: 0.0,
            mode: FaultMode::Permanent,
            mttr: 20,
            mtbf: 200,
            node_fail_prob: 0.0,
            drop_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// `true` when the configuration can never produce a fault: no link
    /// or node failures and no packet loss.
    pub fn is_trivial(&self) -> bool {
        self.link_fail_prob <= 0.0 && self.node_fail_prob <= 0.0 && self.drop_prob <= 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("link_fail_prob", self.link_fail_prob),
            ("node_fail_prob", self.node_fail_prob),
            ("drop_prob", self.drop_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
    }
}

/// A materialized fault schedule: per-edge down intervals, the dead-node
/// set, and the packet-loss hash parameters. Pure function of
/// `(mesh, config, seed)`; the `horizon` only bounds how far transient
/// schedules are materialized — the schedule for any step below a given
/// horizon is the same no matter how much larger the horizon is.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Per-edge sorted, disjoint down intervals `[start, end)`.
    down: Vec<Vec<(u64, u64)>>,
    node_down: Vec<bool>,
    /// Inclusive drop threshold: a traversal drops when the decision
    /// hash is `<= drop_threshold`. 0 with `drop_prob == 0` means never
    /// (the comparison is skipped entirely).
    drop_threshold: u64,
    drop_salt: u64,
    seed: u64,
    failed_links: usize,
    failed_nodes: usize,
}

impl FaultPlan {
    /// Materializes the plan for `mesh` from `seed`, with transient
    /// schedules generated up to `horizon` steps.
    ///
    /// # Panics
    /// Panics if a probability in `config` is outside `[0, 1]`.
    pub fn new(mesh: &Mesh, config: &FaultConfig, seed: u64, horizon: u64) -> Self {
        config.validate();
        let mttr = config.mttr.max(1);
        let mtbf = config.mtbf.max(1);
        let mut down: Vec<Vec<(u64, u64)>> = vec![Vec::new(); mesh.edge_count()];
        let mut failed_links = 0usize;
        if config.link_fail_prob > 0.0 {
            for (e, schedule) in down.iter_mut().enumerate() {
                let mut rng = StdRng::seed_from_u64(mix64(seed ^ LINK_SALT ^ mix64(e as u64)));
                if !rng.gen_bool(config.link_fail_prob) {
                    continue;
                }
                failed_links += 1;
                match config.mode {
                    FaultMode::Permanent => {
                        let start = rng.gen_range(0..horizon.max(1));
                        schedule.push((start, u64::MAX));
                    }
                    FaultMode::Transient => {
                        let mut t = sample_duration(&mut rng, mtbf);
                        while t < horizon {
                            let outage = sample_duration(&mut rng, mttr);
                            schedule.push((t, t.saturating_add(outage)));
                            t = t
                                .saturating_add(outage)
                                .saturating_add(sample_duration(&mut rng, mtbf));
                        }
                    }
                }
            }
        }
        let mut node_down = vec![false; mesh.node_count()];
        let mut failed_nodes = 0usize;
        if config.node_fail_prob > 0.0 {
            for (n, slot) in node_down.iter_mut().enumerate() {
                let mut rng = StdRng::seed_from_u64(mix64(seed ^ NODE_SALT ^ mix64(n as u64)));
                if rng.gen_bool(config.node_fail_prob) {
                    *slot = true;
                    failed_nodes += 1;
                    let c = mesh.coord(NodeId(n));
                    for nb in mesh.neighbors(&c) {
                        // A dead endpoint takes the link down for good;
                        // any finer schedule it had is subsumed.
                        down[mesh.edge_id(&c, &nb).0] = vec![(0, u64::MAX)];
                    }
                }
            }
            failed_links = down.iter().filter(|iv| !iv.is_empty()).count();
        }
        let drop_threshold = if config.drop_prob <= 0.0 {
            0
        } else if config.drop_prob >= 1.0 {
            u64::MAX
        } else {
            (config.drop_prob * u64::MAX as f64) as u64
        };
        Self {
            down,
            node_down,
            drop_threshold,
            drop_salt: mix64(seed ^ DROP_SALT),
            seed,
            failed_links,
            failed_nodes,
        }
    }

    /// A plan with no faults at all (what `--fault-links 0` means).
    pub fn trivial(mesh: &Mesh) -> Self {
        Self::new(mesh, &FaultConfig::default(), 0, 0)
    }

    /// `true` when no fault can ever occur under this plan.
    pub fn is_trivial(&self) -> bool {
        self.failed_links == 0 && self.failed_nodes == 0 && self.drop_threshold == 0
    }

    /// Is link `e` down at step `t`?
    pub fn link_down(&self, e: EdgeId, t: u64) -> bool {
        let iv = &self.down[e.0];
        if iv.is_empty() {
            return false;
        }
        let i = iv.partition_point(|&(start, _)| start <= t);
        i > 0 && iv[i - 1].1 > t
    }

    /// Is link `e` down for the entire run (an interval `[0, ∞)`)?
    pub fn link_always_down(&self, e: EdgeId) -> bool {
        self.down[e.0].first() == Some(&(0, u64::MAX))
    }

    /// Is node `n` dead?
    pub fn node_down(&self, n: NodeId) -> bool {
        self.node_down[n.0]
    }

    /// Does the traversal of `e` at step `t` by the packet with
    /// injection index `inj` drop the packet? A stateless hash decision:
    /// identical for every thread and engine.
    pub fn drops(&self, e: EdgeId, t: u64, inj: u64) -> bool {
        if self.drop_threshold == 0 {
            return false;
        }
        let h = mix64(self.drop_salt ^ mix64(e.0 as u64) ^ mix64(t).rotate_left(17) ^ mix64(inj));
        h <= self.drop_threshold
    }

    /// The private RNG of the `attempt`-th path resample of the packet
    /// with injection index `inj` — a pure function of
    /// `(fault seed, inj, attempt)`, so resample recovery stays
    /// deterministic in any execution order.
    pub fn resample_rng(&self, inj: u64, attempt: u32) -> StdRng {
        StdRng::seed_from_u64(mix64(
            mix64(self.seed ^ RESAMPLE_SALT) ^ mix64(inj).rotate_left(1) ^ mix64(attempt.into()),
        ))
    }

    /// A 64-bit digest of the materialized schedule — every down
    /// interval, the dead-node set, and the drop-hash parameters.
    ///
    /// Because the plan is a pure function of `(mesh, config, seed,
    /// horizon prefix)`, two processes that materialize "the same" plan
    /// can verify it cheaply by comparing digests. The checkpoint layer
    /// folds this into its config hash so a snapshot never resumes under
    /// a different fault schedule.
    pub fn digest(&self) -> u64 {
        let mut h = mix64(self.seed ^ 0x4641_554C_5453_4447); // "FAULTSDG"
        h = mix64(h ^ self.drop_threshold);
        h = mix64(h ^ self.drop_salt);
        h = mix64(h ^ self.failed_links as u64);
        h = mix64(h ^ self.failed_nodes as u64);
        for (e, iv) in self.down.iter().enumerate() {
            if iv.is_empty() {
                continue;
            }
            h = mix64(h ^ e as u64);
            for &(start, end) in iv {
                h = mix64(h ^ start.rotate_left(1) ^ mix64(end));
            }
        }
        for (n, &dead) in self.node_down.iter().enumerate() {
            if dead {
                h = mix64(h ^ mix64(n as u64).rotate_left(7));
            }
        }
        h
    }

    /// Number of links with at least one down interval.
    pub fn failed_links(&self) -> usize {
        self.failed_links
    }

    /// Number of dead nodes.
    pub fn failed_nodes(&self) -> usize {
        self.failed_nodes
    }
}

/// A geometric-ish duration with the given mean: the exponential inverse
/// CDF, rounded up, clamped to at least one step.
fn sample_duration(rng: &mut StdRng, mean: u64) -> u64 {
    let u: f64 = rng.gen();
    let d = (-(1.0 - u).ln() * mean as f64).ceil();
    (d as u64).max(1)
}

/// A bounded-Pareto duration: minimum `scale`, tail index `alpha`, hard
/// cap `cap` (inclusive, in the same unit as `scale`).
///
/// This is the shared heavy-tail sampler for straggler injection: the
/// exponential `sample_duration` above models memoryless outages,
/// while real compute stragglers are heavy-tailed — a few stalls
/// dominate the tail. Smaller `alpha` means a heavier tail; `alpha`
/// around `1` makes the mean itself tail-dominated. Degenerate
/// parameters are clamped (`scale >= 1`, `cap >= scale`,
/// non-finite/non-positive `alpha` treated as `1`), so the sampler
/// never panics on hostile config.
pub fn sample_heavy_tail(rng: &mut StdRng, scale: u64, alpha: f64, cap: u64) -> u64 {
    let scale = scale.max(1);
    let cap = cap.max(scale);
    let alpha = if alpha.is_finite() && alpha > 0.0 {
        alpha
    } else {
        1.0
    };
    let u: f64 = rng.gen();
    // Pareto inverse CDF: scale / (1-u)^(1/alpha). `u` is in [0, 1), so
    // the denominator is in (0, 1] and the draw is >= scale; it can
    // still overflow to infinity for u ~ 1, which the cap absorbs.
    let d = scale as f64 / (1.0 - u).powf(1.0 / alpha);
    if !d.is_finite() {
        return cap;
    }
    (d.ceil() as u64).clamp(scale, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_mesh::Coord;

    fn cfg(link: f64, mode: FaultMode) -> FaultConfig {
        FaultConfig {
            link_fail_prob: link,
            mode,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn trivial_plan_never_faults() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let plan = FaultPlan::trivial(&mesh);
        assert!(plan.is_trivial());
        assert_eq!(plan.failed_links(), 0);
        for e in 0..mesh.edge_count() {
            for t in [0u64, 1, 100, u64::MAX - 1] {
                assert!(!plan.link_down(EdgeId(e), t));
                assert!(!plan.drops(EdgeId(e), t, 7));
            }
        }
    }

    #[test]
    fn plan_is_deterministic_in_seed() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let c = FaultConfig {
            link_fail_prob: 0.3,
            mode: FaultMode::Transient,
            mttr: 5,
            mtbf: 20,
            node_fail_prob: 0.05,
            drop_prob: 0.1,
        };
        let a = FaultPlan::new(&mesh, &c, 42, 500);
        let b = FaultPlan::new(&mesh, &c, 42, 500);
        let other = FaultPlan::new(&mesh, &c, 43, 500);
        let mut differs = false;
        for e in 0..mesh.edge_count() {
            for t in 0..500 {
                assert_eq!(a.link_down(EdgeId(e), t), b.link_down(EdgeId(e), t));
                differs |= a.link_down(EdgeId(e), t) != other.link_down(EdgeId(e), t);
            }
        }
        assert!(differs, "different seeds should give different schedules");
    }

    #[test]
    fn schedule_prefix_is_horizon_independent() {
        // Growing the horizon must not change any step below the smaller
        // horizon — the property that lets callers size the horizon to
        // their run length without changing the plan semantics.
        let mesh = Mesh::new_mesh(&[6, 6]);
        let c = FaultConfig {
            link_fail_prob: 0.5,
            mode: FaultMode::Transient,
            mttr: 4,
            mtbf: 15,
            ..FaultConfig::default()
        };
        let small = FaultPlan::new(&mesh, &c, 9, 200);
        let large = FaultPlan::new(&mesh, &c, 9, 1000);
        for e in 0..mesh.edge_count() {
            for t in 0..200 {
                assert_eq!(
                    small.link_down(EdgeId(e), t),
                    large.link_down(EdgeId(e), t),
                    "edge {e} step {t}"
                );
            }
        }
    }

    #[test]
    fn permanent_faults_never_repair() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let plan = FaultPlan::new(&mesh, &cfg(0.4, FaultMode::Permanent), 7, 300);
        assert!(plan.failed_links() > 0);
        for e in 0..mesh.edge_count() {
            let mut was_down = false;
            for t in 0..600 {
                let d = plan.link_down(EdgeId(e), t);
                assert!(!was_down || d, "edge {e} repaired at {t}");
                was_down = d;
            }
        }
    }

    #[test]
    fn transient_faults_repair() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let c = FaultConfig {
            link_fail_prob: 1.0,
            mode: FaultMode::Transient,
            mttr: 3,
            mtbf: 10,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&mesh, &c, 11, 400);
        assert_eq!(plan.failed_links(), mesh.edge_count());
        // Some link must be seen both down and up within the horizon.
        let e = EdgeId(0);
        let downs = (0..400).filter(|&t| plan.link_down(e, t)).count();
        assert!(downs > 0 && downs < 400, "downs = {downs}");
    }

    #[test]
    fn dead_nodes_take_incident_links_down() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let c = FaultConfig {
            node_fail_prob: 0.2,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&mesh, &c, 3, 100);
        assert!(plan.failed_nodes() > 0);
        for n in mesh.node_ids() {
            if plan.node_down(n) {
                let coord = mesh.coord(n);
                for nb in mesh.neighbors(&coord) {
                    let e = mesh.edge_id(&coord, &nb);
                    assert!(plan.link_always_down(e));
                    assert!(plan.link_down(e, 0));
                }
            }
        }
    }

    #[test]
    fn drop_hash_extremes_and_determinism() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let never = FaultPlan::new(
            &mesh,
            &FaultConfig {
                drop_prob: 0.0,
                ..FaultConfig::default()
            },
            1,
            10,
        );
        let always = FaultPlan::new(
            &mesh,
            &FaultConfig {
                drop_prob: 1.0,
                ..FaultConfig::default()
            },
            1,
            10,
        );
        let half = FaultPlan::new(
            &mesh,
            &FaultConfig {
                drop_prob: 0.5,
                ..FaultConfig::default()
            },
            1,
            10,
        );
        let mut dropped = 0;
        for e in 0..mesh.edge_count() {
            for t in 0..50 {
                for inj in 0..4 {
                    assert!(!never.drops(EdgeId(e), t, inj));
                    assert!(always.drops(EdgeId(e), t, inj));
                    assert_eq!(half.drops(EdgeId(e), t, inj), half.drops(EdgeId(e), t, inj));
                    dropped += u64::from(half.drops(EdgeId(e), t, inj));
                }
            }
        }
        let total = (mesh.edge_count() * 50 * 4) as u64;
        assert!(
            dropped > total / 4 && dropped < 3 * total / 4,
            "half-rate drops wildly off: {dropped}/{total}"
        );
    }

    #[test]
    fn resample_rng_is_a_pure_function() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let plan = FaultPlan::new(&mesh, &FaultConfig::default(), 5, 10);
        let x: u64 = plan.resample_rng(3, 1).gen();
        assert_eq!(x, plan.resample_rng(3, 1).gen());
        assert_ne!(x, plan.resample_rng(3, 2).gen::<u64>());
        assert_ne!(x, plan.resample_rng(4, 1).gen::<u64>());
    }

    #[test]
    fn digest_tracks_schedule_identity() {
        let mesh = Mesh::new_mesh(&[6, 6]);
        let c = FaultConfig {
            link_fail_prob: 0.3,
            mode: FaultMode::Transient,
            mttr: 5,
            mtbf: 20,
            node_fail_prob: 0.05,
            drop_prob: 0.1,
        };
        let a = FaultPlan::new(&mesh, &c, 42, 500);
        let b = FaultPlan::new(&mesh, &c, 42, 500);
        assert_eq!(a.digest(), b.digest(), "same inputs, same digest");
        let other_seed = FaultPlan::new(&mesh, &c, 43, 500);
        assert_ne!(a.digest(), other_seed.digest());
        let other_horizon = FaultPlan::new(&mesh, &c, 42, 2000);
        assert_ne!(
            a.digest(),
            other_horizon.digest(),
            "longer horizon extends transient schedules"
        );
        assert_ne!(a.digest(), FaultPlan::trivial(&mesh).digest());
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(FaultMode::parse("permanent"), Ok(FaultMode::Permanent));
        assert_eq!(FaultMode::parse("transient"), Ok(FaultMode::Transient));
        assert!(FaultMode::parse("flaky").is_err());
        assert_eq!(RecoveryPolicy::parse("wait"), Ok(RecoveryPolicy::Wait));
        assert_eq!(
            RecoveryPolicy::parse("resample"),
            Ok(RecoveryPolicy::Resample)
        );
        assert_eq!(
            RecoveryPolicy::parse("drop"),
            Ok(RecoveryPolicy::DropAfterBudget)
        );
        assert!(RecoveryPolicy::parse("pray").is_err());
        assert_eq!(RecoveryPolicy::DropAfterBudget.name(), "drop");
    }

    #[test]
    #[should_panic]
    fn bad_probability_rejected() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let _ = FaultPlan::new(
            &mesh,
            &FaultConfig {
                link_fail_prob: 1.5,
                ..FaultConfig::default()
            },
            0,
            10,
        );
    }

    #[test]
    fn node_coord_round_trip_for_plan_queries() {
        // Regression guard: node ids used for node_down must match the
        // mesh's row-major ids.
        let mesh = Mesh::new_mesh(&[3, 5]);
        let c = Coord::new(&[2, 4]);
        assert_eq!(mesh.coord(mesh.node_id(&c)), c);
    }

    #[test]
    fn heavy_tail_sampler_is_bounded_deterministic_and_heavy() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let scale = 10;
        let cap = 10_000;
        let mut draws = Vec::new();
        for _ in 0..20_000 {
            let x = sample_heavy_tail(&mut a, scale, 1.1, cap);
            assert_eq!(x, sample_heavy_tail(&mut b, scale, 1.1, cap));
            assert!((scale..=cap).contains(&x), "draw {x} out of bounds");
            draws.push(x);
        }
        draws.sort_unstable();
        // Heavy tail: the p99 draw dwarfs the minimum (for alpha = 1.1
        // the theoretical p99 is ~66x the scale; the cap trims it, but
        // 10x clears any exponential with the same scale).
        assert!(
            draws[draws.len() * 99 / 100] >= scale * 10,
            "p99 {} not heavy-tailed",
            draws[draws.len() * 99 / 100]
        );
        // Degenerate parameters are clamped, never panic.
        let mut r = StdRng::seed_from_u64(1);
        assert_eq!(sample_heavy_tail(&mut r, 0, f64::NAN, 0), 1);
        assert!(sample_heavy_tail(&mut r, 5, -2.0, 3) >= 5);
    }
}
