//! Signal-aware graceful shutdown, without libc as a dependency.
//!
//! The workspace is dependency-free, so instead of the `libc`/`signal-hook`
//! crates this crate declares the one POSIX entry point it needs —
//! `signal(2)` — directly. The installed handler only sets a static
//! atomic flag (the only async-signal-safe action we need); pollers
//! check [`shutdown_requested`] at their own natural boundaries:
//! the simulation engines at step boundaries (to write a final
//! checkpoint, see `oblivion-ckpt`), and the request server between
//! accepts (to stop admitting work and drain, see `oblivion-serve`).
//!
//! There is exactly one installer in the process: both consumers call
//! [`install`], which is idempotent, so whichever subsystem starts first
//! wins and the other reuses the same flag.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// POSIX SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX SIGTERM (polite kill, e.g. from a job scheduler preempting us).
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: a single relaxed store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

// `signal(2)` from the platform C library (already linked by std).
// Declared by hand to keep the workspace free of external crates.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs SIGINT/SIGTERM handlers that request a graceful shutdown.
/// Idempotent; later calls are no-ops.
pub fn install() {
    INSTALL.call_once(|| {
        // SAFETY: `signal` is the POSIX C-library function; the handler is
        // a valid `extern "C" fn(i32)` for the whole program lifetime and
        // performs only an async-signal-safe atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    });
}

/// Whether a SIGINT/SIGTERM has arrived (or [`request_shutdown`] ran)
/// since the last [`reset`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Sets the shutdown flag from normal code — lets tests exercise the
/// graceful-shutdown path without delivering a real signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the shutdown flag (between runs in one process, and in tests).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
