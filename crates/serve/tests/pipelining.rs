//! Pipelining edge cases on the raw wire: frames split across reads,
//! malformed lines mid-pipeline, per-line deadlines inside a burst, and
//! drain with a half-consumed pipeline. Every scenario ends with the
//! request-unit conservation law holding.

use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_serve::{Control, ServeConfig};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Reads reply lines until `n` have arrived or `deadline` passes.
fn read_lines(stream: &TcpStream, n: usize, deadline: Instant) -> Vec<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let lines = buf.iter().filter(|&&b| b == b'\n').count();
        if lines >= n || Instant::now() >= deadline {
            break;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match (&mut (&*stream)).read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => buf.extend_from_slice(&chunk[..got]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&buf)
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn frames_split_across_reads_answer_in_order() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 1,
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // Three pipelined requests, written in deliberately hostile
        // chunks: a frame boundary mid-token, two frames in one write,
        // and a trailing fragment completed later.
        let wire = b"PATH 1 0,0 3,3 id=a-1\nPATH 2 1,1 5,5 id=a-2\nPATH 3 2,2 7,7 id=a-3\n";
        let cuts = [5usize, 23, 27, 50, wire.len()];
        let mut from = 0;
        for cut in cuts {
            (&stream).write_all(&wire[from..cut]).expect("write chunk");
            (&stream).flush().expect("flush");
            from = cut;
            std::thread::sleep(Duration::from_millis(20));
        }

        let replies = read_lines(&stream, 3, Instant::now() + Duration::from_secs(5));
        assert_eq!(replies.len(), 3, "replies: {replies:?}");
        for (i, reply) in replies.iter().enumerate() {
            assert!(
                reply.starts_with(&format!("OK id=a-{} ", i + 1)),
                "reply {i} out of order or failed: {reply:?}"
            );
        }

        drop(stream);
        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.completed, 3, "{s:?}");
        assert_eq!(s.bad_request, 0, "{s:?}");
    });
}

#[test]
fn malformed_line_mid_pipeline_answers_in_order_without_desync() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 1,
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // good, malformed (bad seed, salvageable id), over-long, good —
        // one write, four in-order replies expected.
        let mut burst = String::new();
        burst.push_str("PATH 1 0,0 3,3 id=b-1\n");
        burst.push_str("PATH nonsense 0,0 3,3 id=b-2\n");
        burst.push_str(&format!("PATH 1 0,0 3,3 id={}\n", "x".repeat(400)));
        burst.push_str("PATH 4 1,1 6,6 id=b-4\n");
        (&stream).write_all(burst.as_bytes()).expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");

        let replies = read_lines(&stream, 4, Instant::now() + Duration::from_secs(5));
        assert_eq!(replies.len(), 4, "replies: {replies:?}");
        assert!(replies[0].starts_with("OK id=b-1 "), "{:?}", replies[0]);
        assert!(
            replies[1].starts_with("ERR BAD_REQUEST id=b-2"),
            "{:?}",
            replies[1]
        );
        assert!(
            replies[2].starts_with("ERR BAD_REQUEST"),
            "{:?}",
            replies[2]
        );
        assert!(replies[3].starts_with("OK id=b-4 "), "{:?}", replies[3]);

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.completed, 2, "{s:?}");
        assert_eq!(s.bad_request, 2, "{s:?}");
    });
}

#[test]
fn deadline_expires_for_late_requests_of_a_pipeline() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    // batch_max 1 forces one burst per line, so the simulated work is
    // paid per request and the pipeline backs up past the deadline.
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 1,
        batch_max: 1,
        work: Duration::from_millis(400),
        deadline: Duration::from_millis(600),
        drain: Duration::from_secs(5),
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // Three requests land together; all three deadlines start at
        // frame time. Request 1 routes at ~400ms (inside 600ms);
        // request 2's work is capped by its deadline and expires;
        // request 3 is already stale when its burst starts.
        let burst = "PATH 1 0,0 3,3 id=c-1\nPATH 2 1,1 5,5 id=c-2\nPATH 3 2,2 7,7 id=c-3\n";
        (&stream).write_all(burst.as_bytes()).expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");

        let replies = read_lines(&stream, 3, Instant::now() + Duration::from_secs(10));
        assert_eq!(replies.len(), 3, "replies: {replies:?}");
        assert!(replies[0].starts_with("OK id=c-1 "), "{:?}", replies[0]);
        assert!(
            replies[1].starts_with("ERR DEADLINE_EXCEEDED id=c-2"),
            "{:?}",
            replies[1]
        );
        assert!(
            replies[2].starts_with("ERR DEADLINE_EXCEEDED id=c-3"),
            "{:?}",
            replies[2]
        );

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.completed, 1, "{s:?}");
        assert_eq!(s.deadline_exceeded, 2, "{s:?}");
    });
}

#[test]
fn drain_rejects_the_unconsumed_tail_of_a_pipeline() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 1,
        batch_max: 1,
        work: Duration::from_millis(150),
        deadline: Duration::from_secs(5),
        drain: Duration::ZERO,
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // Four requests at ~150ms of work each; shutdown lands while
        // the pipeline is half-consumed, with a zero drain budget, so
        // the unstarted tail must be answered ERR SHUTTING_DOWN (typed,
        // with IDs) rather than dropped.
        let burst =
            "PATH 1 0,0 3,3 id=d-1\nPATH 2 1,1 5,5 id=d-2\nPATH 3 2,2 7,7 id=d-3\nPATH 4 3,3 6,6 id=d-4\n";
        (&stream).write_all(burst.as_bytes()).expect("write");
        std::thread::sleep(Duration::from_millis(225));
        ctl.request_shutdown();

        let replies = read_lines(&stream, 4, Instant::now() + Duration::from_secs(10));
        assert_eq!(replies.len(), 4, "replies: {replies:?}");
        assert!(replies[0].starts_with("OK id=d-1 "), "{:?}", replies[0]);
        // The boundary request (in flight when the drain stamped) may
        // land either way; everything behind it must be typed shutdown.
        for (i, reply) in replies.iter().enumerate().skip(1) {
            let id = format!("d-{}", i + 1);
            assert!(
                reply.starts_with(&format!("OK id={id} "))
                    || reply.starts_with(&format!("ERR SHUTTING_DOWN id={id}")),
                "reply {i}: {reply:?}"
            );
        }
        assert!(
            replies[3].starts_with("ERR SHUTTING_DOWN id=d-4"),
            "{:?}",
            replies[3]
        );

        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.drain_rejected >= 1, "{s:?}");
        assert!(s.completed >= 1, "{s:?}");
        assert_eq!(
            s.completed + s.drain_rejected,
            4,
            "every pipelined unit settled typed: {s:?}"
        );
    });
}
