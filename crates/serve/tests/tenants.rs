//! Multi-tenant serving end-to-end: `MESH <id>` prefixes interleaved on
//! one pipelined connection, per-tenant quota isolation, typed
//! `UNKNOWN_MESH`, and hot `ADMIN RETIRE`/`ADD` through the health port
//! under live traffic. Every scenario ends with both the global and the
//! per-tenant conservation laws holding.

use oblivion_core::{build_router, parse_mesh_spec};
use oblivion_serve::{Client, Control, Registry, RouterHandle, ServeConfig};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Reads reply lines until `n` have arrived or `deadline` passes.
fn read_lines(stream: &TcpStream, n: usize, deadline: Instant) -> Vec<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let lines = buf.iter().filter(|&&b| b == b'\n').count();
        if lines >= n || Instant::now() >= deadline {
            break;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match (&mut (&*stream)).read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => buf.extend_from_slice(&chunk[..got]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&buf)
        .lines()
        .map(str::to_string)
        .collect()
}

/// One request/reply exchange on the health port (HEALTH, METRICS, or
/// an ADMIN verb): fresh connection, one line each way.
fn health_exchange(health: &SocketAddr, line: &str) -> String {
    let stream =
        TcpStream::connect_timeout(health, Duration::from_secs(5)).expect("health connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    (&stream)
        .write_all(format!("{line}\n").as_bytes())
        .expect("health write");
    let mut reply = String::new();
    BufReader::new(&stream)
        .read_line(&mut reply)
        .expect("health read");
    reply.trim_end().to_string()
}

/// A two-tenant registry: `a` is the default mesh (8x8), `b` a smaller
/// 4x4 — so a destination like `7,7` is valid on `a` and out of range
/// on `b`, which lets the tests prove each line routed on *its* mesh.
fn two_tenant_registry<'a>(quota: Option<u64>) -> Registry<'a> {
    let reg = Registry::new("a", quota);
    for (id, spec) in [("a", "8x8"), ("b", "4x4")] {
        let mesh = parse_mesh_spec(spec, false).expect("mesh");
        let router = build_router("dim-order", &mesh).expect("router");
        reg.add(id, RouterHandle::Owned(router)).expect("add");
    }
    reg
}

fn quiet_config() -> ServeConfig {
    ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 1,
        announce: false,
        ..ServeConfig::default()
    }
}

#[test]
fn interleaved_mesh_prefixes_route_on_their_own_mesh_in_order() {
    let registry = two_tenant_registry(None);
    let cfg = quiet_config();
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run_registry(&registry, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // One pipelined burst interleaving both tenants plus a
        // prefix-free line (which must resolve to the default `a`).
        // `7,7` exists on a's 8x8 but not on b's 4x4: the same
        // coordinates succeed or fail depending only on the prefix.
        let mut burst = String::new();
        burst.push_str("MESH a PATH 1 0,0 7,7 id=t-1\n");
        burst.push_str("MESH b PATH 2 0,0 3,3 id=t-2\n");
        burst.push_str("MESH b PATH 3 0,0 7,7 id=t-3\n");
        burst.push_str("PATH 4 1,1 7,7 id=t-4\n");
        burst.push_str("MESH a PATH 5 2,2 5,5 id=t-5\n");
        (&stream).write_all(burst.as_bytes()).expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");

        let replies = read_lines(&stream, 5, Instant::now() + Duration::from_secs(5));
        assert_eq!(replies.len(), 5, "replies: {replies:?}");
        assert!(replies[0].starts_with("OK id=t-1 "), "{:?}", replies[0]);
        assert!(replies[1].starts_with("OK id=t-2 "), "{:?}", replies[1]);
        assert!(
            replies[2].starts_with("ERR BAD_REQUEST id=t-3"),
            "7,7 is outside b's 4x4: {:?}",
            replies[2]
        );
        assert!(
            replies[3].starts_with("OK id=t-4 "),
            "prefix-free resolves to the default mesh: {:?}",
            replies[3]
        );
        assert!(replies[4].starts_with("OK id=t-5 "), "{:?}", replies[4]);

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.tenants_conserved(), "{s:?}");
        let a = s.tenant("a").expect("tenant a row");
        let b = s.tenant("b").expect("tenant b row");
        assert_eq!(a.accepted, 3, "{s:?}");
        assert_eq!(a.completed, 3, "{s:?}");
        assert_eq!(b.accepted, 2, "{s:?}");
        assert_eq!(b.completed, 1, "{s:?}");
        assert_eq!(b.bad_request, 1, "{s:?}");
        assert!(
            a.state_bytes > 0 && b.state_bytes > 0,
            "state gauges populated: {s:?}"
        );
    });
}

#[test]
fn over_quota_tenant_sheds_alone() {
    // Quota 2: a burst of three b-lines keeps at most two unsettled
    // admissions; the third is shed OVERLOADED — while a's line on the
    // same connection is untouched.
    let registry = two_tenant_registry(Some(2));
    let cfg = quiet_config();
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run_registry(&registry, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        let mut burst = String::new();
        burst.push_str("MESH b PATH 1 0,0 3,3 id=q-1\n");
        burst.push_str("MESH b PATH 2 1,1 2,2 id=q-2\n");
        burst.push_str("MESH b PATH 3 0,1 3,0 id=q-3\n");
        burst.push_str("MESH a PATH 4 0,0 7,7 id=q-4\n");
        (&stream).write_all(burst.as_bytes()).expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");

        let replies = read_lines(&stream, 4, Instant::now() + Duration::from_secs(5));
        assert_eq!(replies.len(), 4, "replies: {replies:?}");
        assert!(replies[0].starts_with("OK id=q-1 "), "{:?}", replies[0]);
        assert!(replies[1].starts_with("OK id=q-2 "), "{:?}", replies[1]);
        assert!(
            replies[2].starts_with("ERR OVERLOADED id=q-3"),
            "third b-line is over quota 2: {:?}",
            replies[2]
        );
        assert!(
            replies[3].starts_with("OK id=q-4 "),
            "a is not b; its admission is untouched: {:?}",
            replies[3]
        );

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.tenants_conserved(), "{s:?}");
        let a = s.tenant("a").expect("tenant a row");
        let b = s.tenant("b").expect("tenant b row");
        assert_eq!(b.shed_overloaded, 1, "shed charged to b: {s:?}");
        assert_eq!(a.shed_overloaded, 0, "none charged to a: {s:?}");
        assert_eq!(a.completed, 1, "{s:?}");
        assert_eq!(b.completed, 2, "{s:?}");
    });
}

#[test]
fn unknown_mesh_is_typed_and_unattributed() {
    let registry = two_tenant_registry(None);
    let cfg = quiet_config();
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run_registry(&registry, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        let burst = "MESH nope PATH 1 0,0 3,3 id=u-1\nMESH a PATH 2 0,0 3,3 id=u-2\n";
        (&stream).write_all(burst.as_bytes()).expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");

        let replies = read_lines(&stream, 2, Instant::now() + Duration::from_secs(5));
        assert_eq!(replies.len(), 2, "replies: {replies:?}");
        assert!(
            replies[0].starts_with("ERR UNKNOWN_MESH id=u-1"),
            "{:?}",
            replies[0]
        );
        assert!(replies[1].starts_with("OK id=u-2 "), "{:?}", replies[1]);

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.tenants_conserved(), "{s:?}");
        assert_eq!(s.unknown_mesh, 1, "{s:?}");
        assert!(s.tenant("nope").is_none(), "no ledger for unknown ids");
        let a = s.tenant("a").expect("tenant a row");
        assert_eq!(a.accepted, 1, "unknown line never attributed: {s:?}");
    });
}

#[test]
fn admin_retire_drains_in_flight_then_sheds_typed_and_add_revives() {
    let registry = two_tenant_registry(None);
    // Per-line bursts with real work, so a line can be *in flight* on a
    // tenant when the retire lands.
    let cfg = ServeConfig {
        batch_max: 1,
        work: Duration::from_millis(200),
        deadline: Duration::from_secs(5),
        ..quiet_config()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run_registry(&registry, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let health = ctl.health_addr().expect("no health listener");
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // r-1 starts routing (~200ms of work); the retire lands while it
        // is in flight. It must still complete — that is the drain.
        (&stream)
            .write_all(b"MESH b PATH 1 0,0 3,3 id=r-1\n")
            .expect("write");
        std::thread::sleep(Duration::from_millis(50));
        let retired = health_exchange(&health, "ADMIN RETIRE b");
        assert_eq!(retired, "OK retired b", "{retired:?}");
        // Lines parsed after the retire answer MESH_RETIRED, typed and
        // id-echoed, on the same still-healthy connection.
        (&stream)
            .write_all(b"MESH b PATH 2 1,1 2,2 id=r-2\nMESH a PATH 3 0,0 7,7 id=r-3\n")
            .expect("write");

        let replies = read_lines(&stream, 3, Instant::now() + Duration::from_secs(5));
        assert_eq!(replies.len(), 3, "replies: {replies:?}");
        assert!(
            replies[0].starts_with("OK id=r-1 "),
            "in-flight line completes across the retire: {:?}",
            replies[0]
        );
        assert!(
            replies[1].starts_with("ERR MESH_RETIRED id=r-2"),
            "{:?}",
            replies[1]
        );
        assert!(
            replies[2].starts_with("OK id=r-3 "),
            "other tenants keep routing: {:?}",
            replies[2]
        );

        // Double-retire and retiring the default are refused.
        let again = health_exchange(&health, "ADMIN RETIRE b");
        assert!(again.starts_with("ERR BAD_REQUEST"), "{again:?}");
        let default = health_exchange(&health, "ADMIN RETIRE a");
        assert!(default.starts_with("ERR BAD_REQUEST"), "{default:?}");
        let listed = health_exchange(&health, "ADMIN LIST");
        assert!(listed.contains("b:retired:0"), "{listed:?}");

        // Re-adding the id revives it; the next line routes again.
        let added = health_exchange(&health, "ADMIN ADD b 4x4 dim-order");
        assert!(added.starts_with("OK added b state_bytes="), "{added:?}");
        (&stream)
            .write_all(b"MESH b PATH 4 0,0 3,3 id=r-4\n")
            .expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let tail = read_lines(&stream, 1, Instant::now() + Duration::from_secs(5));
        assert_eq!(tail.len(), 1, "replies: {tail:?}");
        assert!(tail[0].starts_with("OK id=r-4 "), "{:?}", tail[0]);

        // A live scrape mid-lifecycle still satisfies both conservation
        // laws and carries the per-tenant rows.
        let scrape = Client::new(&health.to_string(), Duration::from_secs(5))
            .expect("client")
            .scrape()
            .expect("scrape");
        let exp = oblivion_serve::parse_exposition(&scrape).expect("parse");
        exp.check_conservation().expect("live scrape conserves");
        assert!(exp.tenant_ids().contains(&"b".to_string()), "{scrape}");

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.tenants_conserved(), "{s:?}");
        let b = s.tenant("b").expect("tenant b row");
        assert_eq!(b.completed, 2, "r-1 and r-4: {s:?}");
        assert_eq!(b.mesh_retired, 1, "r-2: {s:?}");
        assert_eq!(s.mesh_retired, 1, "{s:?}");
    });
}

#[test]
fn admin_add_rejects_garbage() {
    let registry = two_tenant_registry(None);
    let cfg = quiet_config();
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run_registry(&registry, &cfg, &ctl));
        let _addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let health = ctl.health_addr().expect("no health listener");
        for bad in [
            "ADMIN ADD",                  // missing everything
            "ADMIN ADD c",                // missing spec + router
            "ADMIN ADD c 4x4",            // missing router
            "ADMIN ADD c 4x4 frobnicate", // unknown router
            "ADMIN ADD c 0x4 dim-order",  // bad mesh spec
            "ADMIN ADD a 4x4 dim-order",  // id already live
            "ADMIN ADD bad*id 4x4 romm",  // invalid id
            "ADMIN FROB",                 // unknown verb
        ] {
            let reply = health_exchange(&health, bad);
            assert!(reply.starts_with("ERR BAD_REQUEST"), "{bad}: {reply:?}");
        }
        // And the registry is unchanged by all of it.
        let listed = health_exchange(&health, "ADMIN LIST");
        assert!(listed.starts_with("OK meshes a:live:"), "{listed:?}");
        assert!(!listed.contains(" c:"), "{listed:?}");
        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        assert!(summary.stats.conserved());
    });
}
