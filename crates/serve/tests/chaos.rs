//! Chaos-injection contract tests.
//!
//! Three properties keep the chaos layer honest:
//! 1. **Determinism** — the injected schedule is a pure function of
//!    `chaos seed x request stream`: two servers with the same seed fed
//!    the same sequential requests produce identical per-request
//!    outcomes and identical injected-event counters.
//! 2. **Zero-cost off switch** — a server with a trivial (all-zero)
//!    chaos config answers byte-identically to a vanilla server and
//!    counts zero events.
//! 3. **Conservation under fire** — an open-loop hedged load against a
//!    chaotic server conserves the request ledger on *every* METRICS
//!    scrape and in the final book: injected stalls settle as
//!    completions (or deadline), injected resets as io errors, and
//!    hedged losers never double-settle.

use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_serve::{
    parse_exposition, run_loadgen, ChaosConfig, Client, Control, HedgeAfter, LoadgenConfig,
    ServeConfig,
};
use std::time::Duration;

/// Requests server shutdown when dropped. A panicking assertion unwinds
/// through `thread::scope`, which still waits for every spawned thread —
/// without this guard a failed assert deadlocks behind a server nobody
/// told to stop, and the panic message is never printed.
struct StopOnDrop<'a>(&'a Control);
impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.request_shutdown();
    }
}

fn chaotic_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        stall_prob: 0.3,
        stall: Duration::from_millis(2),
        write_prob: 0.3,
        write_stall: Duration::from_millis(1),
        reset_prob: 0.25,
        pause_prob: 0.1,
        pause: Duration::from_millis(1),
    }
}

/// Runs `n` sequential single-connection requests against a server with
/// the given chaos config; returns (per-request outcomes, final stats).
fn run_sequential(
    mesh: &Mesh,
    chaos: Option<ChaosConfig>,
    n: u64,
) -> (Vec<String>, oblivion_serve::StatsSnapshot) {
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 2,
        deadline: Duration::from_secs(2),
        announce: false,
        chaos,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let _stop = StopOnDrop(&ctl);
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let client = Client::to(addr, Duration::from_secs(5));
        let mut outcomes = Vec::with_capacity(n as usize);
        for id in 0..n {
            let (seed, src, dst) = oblivion_serve::loadgen::request_of(mesh, 11, id);
            let line = format!(
                "PATH {seed} {} {}\n",
                oblivion_serve::wire::format_coord(&src, mesh.dim()),
                oblivion_serve::wire::format_coord(&dst, mesh.dim())
            );
            // Transport detail (reset vs eof) can depend on socket
            // timing; the *decision* to kill the connection is what must
            // be deterministic, so all transport errors fold together.
            outcomes.push(match client.round_trip(&line) {
                Ok(payload) => format!("OK {payload}"),
                Err(oblivion_serve::ClientError::Transport(_)) => "transport".to_string(),
                Err(e) => format!("{e:?}"),
            });
        }
        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        assert!(summary.stats.conserved(), "{:?}", summary.stats);
        (outcomes, summary.stats)
    })
}

#[test]
fn chaos_schedule_is_a_pure_function_of_the_seed() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let (out_a, stats_a) = run_sequential(&mesh, Some(chaotic_config(0xC4A0)), 120);
    let (out_b, stats_b) = run_sequential(&mesh, Some(chaotic_config(0xC4A0)), 120);
    assert_eq!(out_a, out_b, "same seed, same requests, different replies");
    for (name, a, b) in [
        ("stalls", stats_a.chaos_stalls, stats_b.chaos_stalls),
        (
            "slow_writes",
            stats_a.chaos_slow_writes,
            stats_b.chaos_slow_writes,
        ),
        ("resets", stats_a.chaos_resets, stats_b.chaos_resets),
        (
            "worker_pauses",
            stats_a.chaos_worker_pauses,
            stats_b.chaos_worker_pauses,
        ),
    ] {
        assert_eq!(a, b, "chaos_{name} diverged across same-seed runs");
    }
    // The probabilities above make a silent no-op plan vanishingly
    // unlikely: the schedule must actually have fired.
    assert!(stats_a.chaos_stalls > 0, "{stats_a:?}");
    assert!(stats_a.chaos_resets > 0, "{stats_a:?}");
    assert_eq!(stats_a.io_errors, stats_a.chaos_resets, "{stats_a:?}");

    // A different seed must produce a different schedule (the counters
    // all colliding is possible but astronomically unlikely).
    let (_, stats_c) = run_sequential(&mesh, Some(chaotic_config(0xC4A1)), 120);
    assert!(
        stats_c.chaos_stalls != stats_a.chaos_stalls
            || stats_c.chaos_slow_writes != stats_a.chaos_slow_writes
            || stats_c.chaos_resets != stats_a.chaos_resets
            || stats_c.chaos_worker_pauses != stats_a.chaos_worker_pauses,
        "different seeds produced an identical schedule: {stats_a:?}"
    );
}

#[test]
fn trivial_chaos_is_byte_identical_to_vanilla() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let trivial = ChaosConfig {
        seed: 99,
        ..ChaosConfig::default()
    };
    assert!(trivial.is_trivial());
    let (chaotic, stats_chaos) = run_sequential(&mesh, Some(trivial), 80);
    let (vanilla, stats_plain) = run_sequential(&mesh, None, 80);
    assert_eq!(chaotic, vanilla, "trivial chaos changed reply bytes");
    for s in [&stats_chaos, &stats_plain] {
        assert_eq!(s.chaos_stalls, 0, "{s:?}");
        assert_eq!(s.chaos_slow_writes, 0, "{s:?}");
        assert_eq!(s.chaos_resets, 0, "{s:?}");
        assert_eq!(s.chaos_worker_pauses, 0, "{s:?}");
        assert_eq!(s.io_errors, 0, "{s:?}");
    }
}

#[test]
fn hedged_open_loop_load_conserves_on_every_mid_chaos_scrape() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 3,
        deadline: Duration::from_secs(2),
        work: Duration::from_micros(300),
        announce: false,
        chaos: Some(ChaosConfig {
            seed: 7,
            stall_prob: 0.25,
            stall: Duration::from_millis(10),
            write_prob: 0.2,
            write_stall: Duration::from_millis(2),
            reset_prob: 0.2,
            pause_prob: 0.05,
            pause: Duration::from_millis(2),
        }),
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let _stop = StopOnDrop(&ctl);
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let health = ctl.health_addr().expect("no health listener");
        let lg = LoadgenConfig {
            addr: addr.to_string(),
            mesh: mesh.clone(),
            requests: 200,
            concurrency: 8,
            retries: 8,
            timeout: Duration::from_secs(4),
            seed: 7,
            open_loop: true,
            rate: 300.0,
            hedge_after: Some(HedgeAfter::After(Duration::from_millis(15))),
            ..LoadgenConfig::default()
        };
        let stampede = scope.spawn(move || run_loadgen(&lg));

        // The soak half of the ledger audit: with stalls, resets, and
        // abandoned hedge losers all in flight, *every* scrape must
        // still satisfy the live conservation law.
        let scraper = Client::to(health, Duration::from_secs(2));
        let mut scrapes = 0u32;
        while !stampede.is_finished() || scrapes < 10 {
            let text = scraper.scrape().expect("scrape failed under chaos");
            let exp = parse_exposition(&text)
                .unwrap_or_else(|why| panic!("unparseable scrape #{scrapes}: {why}\n{text}"));
            exp.check_conservation()
                .unwrap_or_else(|why| panic!("scrape #{scrapes} violates conservation: {why}"));
            scrapes += 1;
            std::thread::sleep(Duration::from_millis(5));
        }

        let report = stampede.join().expect("stampede panicked");
        assert_eq!(report.malformed, 0, "{}", report.render());
        assert_eq!(report.failed, 0, "{}", report.render());
        assert_eq!(report.ok, 200, "{}", report.render());
        // The chaos profile above reliably trips the hedge threshold.
        assert!(report.hedge_launched > 0, "{}", report.render());
        assert!(
            report.hedge_won <= report.hedge_launched,
            "{}",
            report.render()
        );
        assert!(
            report.hedge_wasted <= report.hedge_launched,
            "{}",
            report.render()
        );

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = &summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.phases_within_accepted(), "{s:?}");
        assert!(s.chaos_stalls > 0, "{s:?}");
        assert!(s.chaos_resets > 0, "{s:?}");
    });
}
