//! Differential test: the served answer must be *byte-identical* to the
//! in-process answer for the same `(mesh, router, seed, src, dst)`.
//!
//! Oblivious path selection is a pure function of those five inputs, so
//! the wire layer adds exactly zero entropy: any divergence here is a
//! serialization bug, an RNG-plumbing bug, or state leaking between
//! requests.

use oblivion_core::{Busch2D, BuschD, DimOrder, ObliviousRouter};
use oblivion_mesh::{Coord, Mesh};
use oblivion_serve::{wire, Client, Control, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn routers(mesh: &Mesh) -> Vec<Box<dyn ObliviousRouter>> {
    vec![
        Box::new(Busch2D::new(mesh.clone())),
        Box::new(BuschD::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
    ]
}

/// Deterministic request sample covering corners, the center, and
/// neighbors.
fn sample_pairs(mesh: &Mesh) -> Vec<(u64, Coord, Coord)> {
    let side = mesh.side(0);
    let c = |x: u32, y: u32| {
        let mut p = Coord::origin(2);
        p[0] = x;
        p[1] = y;
        p
    };
    vec![
        (0, c(0, 0), c(side - 1, side - 1)),
        (1, c(side - 1, 0), c(0, side - 1)),
        (42, c(3, 4), c(12, 9)),
        (0xDEAD_BEEF, c(side / 2, side / 2), c(0, 0)),
        (7, c(5, 5), c(5, 6)), // adjacent pair: shortest possible path
        (u64::MAX, c(1, 14), c(14, 1)),
    ]
}

#[test]
fn served_paths_are_byte_identical_to_in_process_answers() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    for router in routers(&mesh) {
        let cfg = ServeConfig {
            port: 0,           // ephemeral: tests never fight over ports
            health_port: None, // not under test here
            threads: 2,
            announce: false,
            ..ServeConfig::default()
        };
        let ctl = Control::new();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| oblivion_serve::run(router.as_ref(), &cfg, &ctl));
            let addr = ctl
                .wait_addr(Duration::from_secs(5))
                .expect("server did not bind");
            let client = Client::to(addr, Duration::from_secs(5));
            for (seed, src, dst) in sample_pairs(&mesh) {
                // The in-process ground truth, computed exactly the way
                // the server computes it.
                let mut rng = StdRng::seed_from_u64(seed);
                let routed = router.select_path(&src, &dst, &mut rng);
                let expected_line = wire::format_path_line(&routed.path, mesh.dim());

                // Structured comparison through the validating client...
                let hops = client
                    .request_path(&mesh, seed, &src, &dst)
                    .unwrap_or_else(|e| panic!("{}: request failed: {e:?}", router.name()));
                assert_eq!(
                    hops,
                    routed.path.nodes(),
                    "{}: served hops diverge for seed {seed}",
                    router.name()
                );

                // ...and the raw wire line, byte for byte.
                let raw = client
                    .round_trip(&format!(
                        "PATH {seed} {} {}\n",
                        wire::format_coord(&src, mesh.dim()),
                        wire::format_coord(&dst, mesh.dim())
                    ))
                    .expect("raw round trip failed");
                assert_eq!(
                    format!("OK {raw}\n"),
                    expected_line,
                    "{}: wire bytes diverge for seed {seed}",
                    router.name()
                );
            }
            // Repeating a request must reproduce the answer exactly: the
            // server holds no per-connection RNG state.
            let (seed, src, dst) = sample_pairs(&mesh)[2];
            let a = client.request_path(&mesh, seed, &src, &dst).unwrap();
            let b = client.request_path(&mesh, seed, &src, &dst).unwrap();
            assert_eq!(a, b, "{}: repeated request diverged", router.name());

            ctl.request_shutdown();
            let summary = server
                .join()
                .expect("server thread panicked")
                .expect("server run failed");
            assert!(summary.stats.conserved(), "{:?}", summary.stats);
            assert_eq!(summary.stats.bad_request, 0);
            assert_eq!(summary.stats.io_errors, 0);
        });
    }
}

#[test]
fn bad_requests_get_typed_errors_not_paths() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 1,
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).unwrap();
        let client = Client::to(addr, Duration::from_secs(5));
        for bad in [
            "PATH\n",                 // missing everything
            "PATH 7 0,0\n",           // missing dst
            "PATH x 0,0 1,1\n",       // non-numeric seed
            "PATH 7 0,0 9,9 extra\n", // trailing garbage
            "PATH 7 0,0 8,8\n",       // dst outside the 8x8 mesh
            "PATH 7 0,0 3,3,3\n",     // wrong dimensionality
            "FETCH 7 0,0 1,1\n",      // unknown verb
            "\n",                     // empty line
        ] {
            match client.round_trip(bad) {
                Err(oblivion_serve::ClientError::Server(
                    oblivion_serve::ErrorKind::BadRequest,
                    _,
                )) => {}
                other => panic!("{bad:?} should be BAD_REQUEST, got {other:?}"),
            }
        }
        ctl.request_shutdown();
        let summary = server.join().unwrap().unwrap();
        assert!(summary.stats.conserved(), "{:?}", summary.stats);
        assert_eq!(summary.stats.bad_request, 8);
        assert_eq!(summary.stats.completed, 0);
    });
}
