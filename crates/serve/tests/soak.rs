//! Soak test: the server under deliberate overload — far more concurrent
//! clients than workers, a tiny admission queue, simulated per-request
//! work, and one adversarial stalled connection — must stay responsive,
//! shed with typed errors, answer health probes throughout, and account
//! for every accepted connection (the conservation law).

use oblivion_core::BuschD;
use oblivion_mesh::Mesh;
use oblivion_serve::{
    loadgen, parse_exposition, run_loadgen, Client, Control, LoadgenConfig, ServeConfig,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[test]
fn overloaded_server_sheds_answers_probes_and_conserves() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 2,
        queue_cap: 4,
        // Simulated service time: 2 workers * 3ms each means anything
        // past ~666 req/s must queue, and the queue holds only 4.
        work: Duration::from_millis(3),
        deadline: Duration::from_millis(400),
        drain: Duration::from_secs(5),
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let health = ctl.health_addr().expect("no health listener");

        // The adversarial client: connects, sends nothing useful, holds
        // the socket open. A naive per-connection blocking read would
        // park a worker forever; the deadline-re-arming read must answer
        // it DEADLINE_EXCEEDED and move on. Connect (and wait for the
        // acceptor to admit it) *before* the stampede, so it can't be
        // shed at admission instead.
        let stalled_stream =
            TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        let admit_deadline = Instant::now() + Duration::from_secs(5);
        while ctl.stats().snapshot().conns_opened < 1 {
            assert!(Instant::now() < admit_deadline, "stall never admitted");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stalled = scope.spawn(move || {
            let started = Instant::now();
            // Drip one byte (not a full line) to defeat a first-read-only
            // timeout implementation, then go silent.
            std::thread::sleep(Duration::from_millis(50));
            let _ = (&stalled_stream).write_all(b"P");
            let mut buf = Vec::new();
            use std::io::Read as _;
            let _ = stalled_stream.try_clone().and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_secs(5)))?;
                s.read_to_end(&mut buf)
            });
            (started.elapsed(), String::from_utf8_lossy(&buf).to_string())
        });

        // The stampede: 32 closed-loop clients, no retries — every
        // OVERLOADED/DEADLINE_EXCEEDED lands in the report as observed.
        let lg = LoadgenConfig {
            addr: addr.to_string(),
            mesh: mesh.clone(),
            requests: 300,
            concurrency: 32,
            retries: 0,
            timeout: Duration::from_secs(5),
            seed: 1234,
            ..LoadgenConfig::default()
        };
        let stampede = scope.spawn(move || run_loadgen(&lg));

        // Health probes keep answering while the stampede runs: the
        // health listener bypasses admission entirely.
        let probe = Client::to(health, Duration::from_secs(2));
        let mut probes_ok = 0u32;
        for _ in 0..20 {
            match probe.probe("HEALTH") {
                Ok(payload) => {
                    assert!(
                        payload.starts_with("healthy"),
                        "odd health payload: {payload}"
                    );
                    probes_ok += 1;
                }
                Err(e) => panic!("health probe failed under load: {e:?}"),
            }
            match probe.probe("READY") {
                Ok(payload) => assert_eq!(payload, "ready"),
                Err(e) => panic!("readiness probe failed under load: {e:?}"),
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(probes_ok, 20);

        let report = stampede.join().expect("stampede panicked");
        let (stall_elapsed, stall_answer) = stalled.join().expect("stalled client panicked");

        // The stalled connection was answered (typed, in finite time),
        // not parked: well under the 5s passive read timeout, and with
        // the DEADLINE_EXCEEDED taxonomy on the wire.
        assert!(
            stall_elapsed < Duration::from_secs(3),
            "stalled connection took {stall_elapsed:?}"
        );
        assert!(
            stall_answer.contains("ERR DEADLINE_EXCEEDED"),
            "stalled connection got: {stall_answer:?}"
        );

        // No malformed bytes ever, even when shedding hard.
        assert_eq!(report.malformed, 0, "{}", report.render());
        assert_eq!(report.bad_request, 0, "{}", report.render());
        // Some work completed and, with 32 clients against 2 workers and
        // a 4-deep queue, some was shed with a typed error.
        assert!(report.ok > 0, "{}", report.render());
        assert!(
            report.overloaded + report.deadline > 0,
            "no shedding under 8x overload? {}",
            report.render()
        );

        // Quiesce and check the books.
        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(
            s.conserved(),
            "accepted {} != settled {} ({s:?})",
            s.accepted,
            s.settled()
        );
        assert!(s.shed_overloaded + s.deadline_exceeded > 0, "{s:?}");
        assert!(s.health_probes >= 40, "probes bypassed admission: {s:?}");
        assert!(s.max_queue_depth <= cfg.max_queued() as u64, "{s:?}");
    });
}

#[test]
fn metrics_scrapes_conserve_under_full_overload() {
    // Hammer the daemon well past capacity while a scraper loops on the
    // health port's METRICS verb. Every single scrape — taken
    // mid-stampede, with connections in every lifecycle stage — must
    // parse, satisfy the live conservation law, and keep every phase
    // histogram count within `accepted`. The background flusher writes
    // JSONL snapshots to disk at the same time; its lines must agree
    // with the same invariants.
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = BuschD::new(mesh.clone());
    let stats_path =
        std::env::temp_dir().join(format!("oblivion-scrape-soak-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&stats_path);
    let cfg = ServeConfig {
        port: 0,
        health_port: Some(0),
        threads: 2,
        queue_cap: 4,
        work: Duration::from_millis(3),
        deadline: Duration::from_millis(400),
        drain: Duration::from_secs(5),
        stats_every: Some(Duration::from_millis(20)),
        stats_path: Some(stats_path.clone()),
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let health = ctl.health_addr().expect("no health listener");
        let lg = LoadgenConfig {
            addr: addr.to_string(),
            mesh: mesh.clone(),
            requests: 400,
            concurrency: 32,
            retries: 0,
            timeout: Duration::from_secs(5),
            seed: 7,
            ..LoadgenConfig::default()
        };
        let stampede = scope.spawn(move || run_loadgen(&lg));

        let scraper = Client::to(health, Duration::from_secs(2));
        let mut scrapes = 0u32;
        let mut last_accepted = 0u64;
        while !stampede.is_finished() || scrapes < 10 {
            let text = scraper.scrape().expect("scrape failed under load");
            let exp = parse_exposition(&text)
                .unwrap_or_else(|why| panic!("unparseable scrape #{scrapes}: {why}\n{text}"));
            exp.check_conservation()
                .unwrap_or_else(|why| panic!("scrape #{scrapes} violates conservation: {why}"));
            let (accepted, ..) = exp.headline().expect("headline");
            assert!(
                accepted >= last_accepted,
                "accepted went backwards: {last_accepted} -> {accepted}"
            );
            last_accepted = accepted;
            scrapes += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(scrapes >= 10);

        let report = stampede.join().expect("stampede panicked");
        assert_eq!(report.malformed, 0, "{}", report.render());
        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = &summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert!(s.phases_within_accepted(), "{s:?}");
        // The stampede really drove every phase.
        for (name, h) in &s.phases {
            assert!(h.count > 0, "phase {name} never recorded");
        }

        // The flusher left a parseable JSONL trail whose lines carry
        // monotone accepted counts bounded by the final book.
        let flushed = std::fs::read_to_string(&stats_path).expect("flusher wrote nothing");
        let mut prev = 0i64;
        let mut lines = 0u32;
        for line in flushed.lines() {
            let v = oblivion_obs::Json::parse(line)
                .unwrap_or_else(|e| panic!("bad flusher line: {e}\n{line}"));
            assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("serve_stats"));
            let accepted = v
                .get("serve_accepted")
                .and_then(|a| a.as_i64())
                .expect("serve_accepted");
            assert!(accepted >= prev, "flusher accepted went backwards");
            assert!(accepted as u64 <= s.accepted);
            prev = accepted;
            lines += 1;
        }
        assert!(lines >= 2, "flusher only wrote {lines} lines");
        assert_eq!(prev as u64, s.accepted, "final flush missed the drain");
        let _ = std::fs::remove_file(&stats_path);
    });
}

#[test]
fn request_ids_round_trip_byte_for_byte() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 2,
        queue_cap: 16,
        deadline: Duration::from_secs(2),
        drain: Duration::from_secs(2),
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let client = Client::to(addr, Duration::from_secs(5));

        // The high-level client verifies the echo itself.
        let (seed, src, dst) = loadgen::request_of(&mesh, 21, 0);
        client
            .request_path_with_id(&mesh, seed, &src, &dst, Some("trace-7.a:b_c"))
            .expect("id round trip");

        // And on the raw wire the echo is byte-for-byte at the head of
        // the payload.
        let raw = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        (&raw).write_all(b"PATH 3 0,0 2,2 id=x-1\n").expect("write");
        // Half-close: the keep-alive server closes its side once the
        // last reply is out, so read_to_end terminates.
        raw.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let mut buf = Vec::new();
        use std::io::Read as _;
        raw.try_clone()
            .and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_secs(5)))?;
                s.read_to_end(&mut buf)
            })
            .expect("read");
        let reply = String::from_utf8(buf).expect("utf8");
        assert!(reply.starts_with("OK id=x-1 "), "reply: {reply:?}");

        // A bad request with a salvageable ID still echoes it.
        let raw = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        (&raw)
            .write_all(b"PATH nonsense 0,0 2,2 id=y-2\n")
            .expect("write");
        raw.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let mut buf = Vec::new();
        raw.try_clone()
            .and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_secs(5)))?;
                s.read_to_end(&mut buf)
            })
            .expect("read");
        let reply = String::from_utf8(buf).expect("utf8");
        assert!(
            reply.starts_with("ERR BAD_REQUEST id=y-2"),
            "reply: {reply:?}"
        );

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        assert!(summary.stats.conserved(), "{:?}", summary.stats);
    });
}

#[test]
fn retries_converge_under_overload() {
    // Same overload, but with the retry budget on: every request must
    // eventually succeed, because OVERLOADED/DEADLINE_EXCEEDED are
    // retryable and the server never wedges.
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 2,
        queue_cap: 4,
        work: Duration::from_millis(2),
        deadline: Duration::from_millis(500),
        drain: Duration::from_secs(5),
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let lg = LoadgenConfig {
            addr: addr.to_string(),
            mesh: mesh.clone(),
            requests: 200,
            concurrency: 16,
            retries: 20,
            backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            timeout: Duration::from_secs(5),
            seed: 99,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(&lg);
        assert_eq!(report.ok, 200, "{}", report.render());
        assert_eq!(report.failed, 0, "{}", report.render());
        assert_eq!(report.malformed, 0, "{}", report.render());

        // Sanity: the deterministic request stream really exercises the
        // mesh (distinct pairs), so convergence wasn't a cache artifact.
        let distinct: std::collections::HashSet<_> = (0..200)
            .map(|id| {
                let (_, s, d) = loadgen::request_of(&mesh, 99, id);
                (s, d)
            })
            .collect();
        assert!(
            distinct.len() > 150,
            "only {} distinct pairs",
            distinct.len()
        );

        ctl.request_shutdown();
        let summary = server.join().expect("server panicked").expect("run failed");
        assert!(summary.stats.conserved(), "{:?}", summary.stats);
    });
}

#[test]
fn drain_budget_rejects_backlog_with_shutting_down() {
    // A server killed with a zero drain budget must still answer its
    // queued backlog — with ERR SHUTTING_DOWN, not silence — and the
    // books must balance.
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = BuschD::new(mesh.clone());
    let cfg = ServeConfig {
        port: 0,
        health_port: None,
        threads: 1,
        queue_cap: 16,
        work: Duration::from_millis(20),
        deadline: Duration::from_secs(2),
        drain: Duration::ZERO,
        announce: false,
        ..ServeConfig::default()
    };
    let ctl = Control::new();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| oblivion_serve::run(&router, &cfg, &ctl));
        let addr = ctl.wait_addr(Duration::from_secs(5)).expect("no bind");
        let lg = LoadgenConfig {
            addr: addr.to_string(),
            mesh: mesh.clone(),
            requests: 60,
            concurrency: 12,
            retries: 0,
            timeout: Duration::from_secs(5),
            seed: 5,
            ..LoadgenConfig::default()
        };
        let stampede = scope.spawn(move || run_loadgen(&lg));
        // Let the queue fill, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(80));
        ctl.request_shutdown();
        let report = stampede.join().expect("stampede panicked");
        let summary = server.join().expect("server panicked").expect("run failed");
        let s = summary.stats;
        assert!(s.conserved(), "{s:?}");
        assert_eq!(report.malformed, 0, "{}", report.render());
        // Everything the client saw is typed: ok, shed, shutting-down,
        // or a transport error from the closed listener — never garbage.
        let accounted = report.ok
            + report.overloaded
            + report.deadline
            + report.shutting_down
            + report.transport;
        assert!(accounted >= 60, "{}", report.render());
    });
}
