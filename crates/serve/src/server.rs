//! The overload-safe, pipelined request server.
//!
//! Thread layout (all on one [`run_crew`] scoped pool, so a panic
//! anywhere propagates instead of silently losing a worker):
//!
//! ```text
//! crew[0]            acceptor: accept → hand the socket to a worker
//!                    mailbox (round-robin) or the shared overflow
//!                    queue; both full → shed with ERR OVERLOADED
//! crew[1..=threads]  workers: each OWNS its accepted sockets for their
//!                    whole life — reads pipelined frames, batches them
//!                    through `route_batch`, writes replies in order
//! crew[..]           stats flusher (optional): appends a JSONL snapshot
//!                    to --metrics-out every --stats-every interval, so
//!                    a crash loses at most one interval of telemetry
//! crew[last]         health listener (optional): HEALTH/READY/METRICS
//!                    on a dedicated port, bypassing admission so they
//!                    answer even at 10x overload
//! ```
//!
//! Connections are keep-alive: a client may send many LF-framed `PATH`
//! lines without waiting, and replies come back strictly in request
//! order (IDs are echoed per line for correlation). A worker services
//! its connections run-to-completion in bursts: it frames up to
//! `batch_max` pending lines, routes all `PATH` queries in one
//! [`route_batch`] call over a reused scratch buffer, and writes the
//! whole burst of replies with a single syscall. The shared overflow
//! queue exists only for bursts of new connections that outpace the
//! round-robin mailboxes.
//!
//! Overload behavior is still the design center: mailboxes and the
//! overflow queue are bounded, pushes never block, and every admitted
//! *request line* settles into exactly one counter bucket (see
//! [`crate::stats`] — the conservation unit is the framed line, not the
//! connection). Each burst is timed through explicit phases — accept,
//! queue-wait, parse, route-compute, reply-write — into per-phase
//! histograms that `METRICS` exposes live. On shutdown
//! (SIGTERM/SIGINT or [`Control::request_shutdown`]) the acceptor
//! closes the listener, stamps the drain deadline, and closes the
//! queues; workers finish in-flight pipelines while the drain budget
//! lasts and reject the rest with `ERR SHUTTING_DOWN`. The process then
//! exits 0 with conserved counters — that is the "graceful" in graceful
//! drain.
//!
//! [`run_crew`]: oblivion_sim::pool::run_crew
//! [`route_batch`]: oblivion_core::ObliviousRouter::route_batch

use crate::chaos::{ChaosConfig, ChaosPlan};
use crate::metrics::render_exposition;
use crate::queue::{Bounded, Pop};
use crate::registry::{Registry, Resolved, RouterHandle, Tenant};
use crate::stats::{ChaosEvent, Counter, Phase, ServeStats, StatsSnapshot};
use crate::wire::{self, ErrorKind, Framed, Request, MAX_REQUEST_LINE};
use oblivion_core::{build_router, parse_mesh_spec, ObliviousRouter, PathQuery, RoutedPath};
use oblivion_obs::Json;
use oblivion_sim::pool::run_crew;
use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`run`]. Validation of user-facing values (nonzero
/// port, threads, deadline, queue) is the CLI's job; the library only
/// requires what it structurally needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind, e.g. `127.0.0.1`.
    pub host: String,
    /// Port for the request listener; `0` lets the OS pick (tests).
    pub port: u16,
    /// Dedicated probe port; `Some(0)` lets the OS pick, `None`
    /// disables the health listener.
    pub health_port: Option<u16>,
    /// Request worker threads (the acceptor, flusher, and health
    /// listener are extra).
    pub threads: usize,
    /// Overflow queue capacity; connections beyond the per-worker
    /// mailboxes *and* the overflow are shed.
    pub queue_cap: usize,
    /// Per-request deadline, measured from the moment the request line
    /// is framed (for a connection that stalls mid-line: from the first
    /// partial byte).
    pub deadline: Duration,
    /// Drain budget: how long in-flight pipelines may still complete
    /// after shutdown is requested.
    pub drain: Duration,
    /// Simulated extra service time per dispatch burst — overload knob
    /// for tests and the `exp_serve` load sweep. With pipelining the
    /// cost is amortized over the whole burst, which is exactly the
    /// point of batched dispatch.
    pub work: Duration,
    /// Most pending request lines a worker answers per burst (also the
    /// `route_batch` batch size). Larger values amortize dispatch
    /// overhead further; smaller values bound per-burst latency.
    pub batch_max: usize,
    /// Background stats flusher interval; `None` disables the flusher.
    pub stats_every: Option<Duration>,
    /// File the flusher appends JSONL snapshots to (requires
    /// `stats_every`).
    pub stats_path: Option<PathBuf>,
    /// Also poll the process-wide `oblivion-signal` flag (SIGTERM /
    /// SIGINT), not just [`Control::request_shutdown`].
    pub honor_process_signals: bool,
    /// Announce the bound addresses on stderr (the CLI's readiness
    /// signal for scripts).
    pub announce: bool,
    /// Deterministic straggler injection (see [`crate::chaos`]);
    /// `None`, or a trivial config, leaves the request path
    /// byte-identical to a chaos-free build of the server.
    pub chaos: Option<ChaosConfig>,
}

impl ServeConfig {
    /// Most connections that can sit queued for a worker at once: the
    /// shared overflow plus every per-worker mailbox. This is the bound
    /// the `queue_depth` gauge (and its high-water mark) honors.
    pub fn max_queued(&self) -> usize {
        self.queue_cap + self.threads.max(1) * MAILBOX_CAP
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".into(),
            port: 0,
            health_port: Some(0),
            threads: 4,
            queue_cap: 64,
            deadline: Duration::from_millis(1000),
            drain: Duration::from_millis(2000),
            work: Duration::ZERO,
            batch_max: 64,
            stats_every: None,
            stats_path: None,
            honor_process_signals: false,
            announce: false,
            chaos: None,
        }
    }
}

/// Shared handle between [`run`] (which blocks) and whoever supervises
/// it from another thread: readiness, live stats, and shutdown.
#[derive(Default)]
pub struct Control {
    shutdown: AtomicBool,
    bound: OnceLock<SocketAddr>,
    health_bound: OnceLock<SocketAddr>,
    drain_until: OnceLock<Instant>,
    started: OnceLock<Instant>,
    /// Workers still draining; the flusher and health listener exit
    /// once the drain is stamped *and* this reaches zero (only then are
    /// the counters quiescent).
    live_workers: AtomicUsize,
    stats: ServeStats,
}

impl Control {
    /// A fresh control block.
    pub fn new() -> Self {
        Control::default()
    }

    /// Asks the server to stop accepting and drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutdown_requested(&self, cfg: &ServeConfig) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || (cfg.honor_process_signals && oblivion_signal::shutdown_requested())
    }

    fn drained(&self) -> bool {
        self.drain_until.get().is_some() && self.live_workers.load(Ordering::SeqCst) == 0
    }

    /// The request listener's bound address, once bound.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.bound.get().copied()
    }

    /// The health listener's bound address, once bound.
    pub fn health_addr(&self) -> Option<SocketAddr> {
        self.health_bound.get().copied()
    }

    /// Polls for the bound address (for supervising threads that start
    /// [`run`] in the background).
    pub fn wait_addr(&self, timeout: Duration) -> Option<SocketAddr> {
        let end = Instant::now() + timeout;
        loop {
            if let Some(a) = self.addr() {
                return Some(a);
            }
            if Instant::now() >= end {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    fn uptime(&self) -> Duration {
        self.started.get().map(|s| s.elapsed()).unwrap_or_default()
    }
}

/// What [`run`] reports after draining.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final counters (quiescent, so the conservation law holds).
    pub stats: StatsSnapshot,
    /// Wall-clock time the server was up.
    pub uptime: Duration,
    /// Wall-clock time from shutdown request to full drain.
    pub drain_took: Duration,
    /// Request listener address.
    pub addr: SocketAddr,
}

/// How often idle loops re-check flags. Short enough that shutdown and
/// accept latency stay invisible, long enough to cost no CPU.
const POLL: Duration = Duration::from_millis(2);

/// Bytes read per nonblocking poll of a connection.
const READ_CHUNK: usize = 4096;

/// Most live connections a single worker owns; beyond this the worker
/// stops adopting and new sockets wait in the mailboxes/overflow.
const MAX_OWNED_CONNS: usize = 64;

/// Per-worker mailbox depth. Small on purpose: the mailboxes are a
/// hand-off, not a buffer — sustained excess spills to the shared
/// overflow queue whose capacity is the admission-control knob.
const MAILBOX_CAP: usize = 2;

/// One accepted connection waiting for a worker to adopt it.
struct Inbound {
    stream: TcpStream,
    accepted_at: Instant,
    /// Time the acceptor spent on this socket (the accept phase),
    /// recorded when the worker admits the connection's first line.
    accept_us: u64,
}

/// A connection owned by a worker: socket, partial-frame buffer, and
/// the queue of framed-but-unanswered lines (each stamped with its
/// frame time, from which its deadline derives).
struct ConnState {
    stream: TcpStream,
    fb: wire::FrameBuf,
    pending: VecDeque<(Framed, Instant)>,
    accepted_at: Instant,
    adopted_at: Instant,
    accept_us: u64,
    /// Accept / queue-wait phases are recorded once per connection,
    /// lazily with its first admitted line (so phase counts never
    /// exceed admitted units).
    conn_phases_recorded: bool,
    /// First instant at which the frame buffer held an unterminated
    /// partial line with nothing answerable pending — the slow-loris
    /// clock.
    partial_since: Option<Instant>,
    /// Chaos reset schedule drawn at adoption: kill the connection once
    /// it has answered this many lines and more are pending.
    reset_after: Option<u64>,
    /// Lines answered on this connection (drives `reset_after`).
    answered: u64,
    eof: bool,
    dead: bool,
}

/// One slot of a dispatch burst, in request order. `tenant` carries the
/// live mesh the line was attributed to (paired `begin`/`end` on the
/// quota share, tenant-ledger settle at write time); `None` for
/// unattributed lines — frame errors, drain rejections, probes, unknown
/// or retired mesh ids.
enum Slot<'a> {
    /// Already answered at parse time (probe, error, expiry, drain).
    Done {
        reply: String,
        bucket: Counter,
        tenant: Option<Arc<Tenant<'a>>>,
    },
    /// A `PATH` query awaiting the batched route; `qi` indexes into the
    /// burst's query/routed scratch once assigned.
    Route {
        q: PathQuery,
        id: Option<String>,
        deadline: Instant,
        qi: usize,
        tenant: Arc<Tenant<'a>>,
    },
}

impl<'a> Slot<'a> {
    /// The attributed tenant, if any.
    fn tenant(&self) -> Option<&Arc<Tenant<'a>>> {
        match self {
            Slot::Done { tenant, .. } => tenant.as_ref(),
            Slot::Route { tenant, .. } => Some(tenant),
        }
    }

    /// The terminal bucket this slot settles into on a successful
    /// write.
    fn bucket(&self) -> Counter {
        match self {
            Slot::Done { bucket, .. } => *bucket,
            Slot::Route { .. } => Counter::Completed,
        }
    }
}

/// Binds and serves a single borrowed router until shutdown, then
/// drains. The legacy single-tenant entry point: it wraps the router in
/// a one-mesh [`Registry`] (default id, no quota), which keeps the wire
/// behavior of prefix-free traffic byte-identical to the registry-less
/// server — the differential test pins this.
pub fn run(
    router: &dyn ObliviousRouter,
    cfg: &ServeConfig,
    ctl: &Control,
) -> std::io::Result<ServeSummary> {
    let registry = Registry::single(router);
    run_registry(&registry, cfg, ctl)
}

/// Binds and serves every mesh in `registry` until shutdown is
/// requested, then drains; returns the final summary. Blocks the
/// calling thread for the server's whole life — supervise from another
/// thread via the shared [`Control`]. The health listener additionally
/// answers `ADMIN LIST|ADD|RETIRE` verbs that mutate the registry at
/// runtime.
pub fn run_registry<'a>(
    registry: &'a Registry<'a>,
    cfg: &ServeConfig,
    ctl: &Control,
) -> std::io::Result<ServeSummary> {
    let started = Instant::now();
    let _ = ctl.started.set(started);
    // Materialize every tenant's ledger row and state gauge up front,
    // so a quiet tenant is visible in the first scrape.
    for (id, live, bytes) in registry.list() {
        if live {
            ctl.stats.set_tenant_state_bytes(&id, bytes);
        }
    }
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let _ = ctl.bound.set(addr);
    let health_listener = match cfg.health_port {
        Some(p) => {
            let l = TcpListener::bind((cfg.host.as_str(), p))?;
            l.set_nonblocking(true)?;
            let _ = ctl.health_bound.set(l.local_addr()?);
            Some(l)
        }
        None => None,
    };
    if cfg.announce {
        match ctl.health_addr() {
            Some(h) => eprintln!("serve: listening on {addr} (health {h})"),
            None => eprintln!("serve: listening on {addr} (health disabled)"),
        }
    }

    // Materialize the chaos plan once; a trivial plan is dropped
    // entirely so the chaos-off request path is the vanilla one,
    // byte for byte (the differential test relies on this).
    let chaos_plan = cfg
        .chaos
        .as_ref()
        .map(|c| ChaosPlan::new(c.clone()))
        .filter(|p| !p.is_trivial());
    let mailboxes: Vec<Bounded<Inbound>> = (0..cfg.threads.max(1))
        .map(|_| Bounded::new(MAILBOX_CAP))
        .collect();
    let overflow: Bounded<Inbound> = Bounded::new(cfg.queue_cap);
    ctl.live_workers.store(cfg.threads, Ordering::SeqCst);
    let has_health = health_listener.is_some();
    let has_flusher = cfg.stats_every.is_some() && cfg.stats_path.is_some();
    let listener = Mutex::new(Some(listener));
    let health_listener = Mutex::new(health_listener);
    let crew = 1 + cfg.threads + usize::from(has_flusher) + usize::from(has_health);
    run_crew(crew, |w| {
        if w == 0 {
            let listener = listener
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("acceptor runs once"); // ci-allow-unwrap: single take by worker 0
            accept_loop(&listener, &mailboxes, &overflow, cfg, ctl);
            // Shutdown: stop accepting (drop the listener), stamp the
            // drain deadline, and let the workers run their pipelines
            // down.
            let _ = ctl.drain_until.set(Instant::now() + cfg.drain);
            drop(listener);
            for mb in &mailboxes {
                mb.close();
            }
            overflow.close();
        } else if w <= cfg.threads {
            worker_loop(
                registry,
                w - 1,
                &mailboxes,
                &overflow,
                cfg,
                ctl,
                chaos_plan.as_ref(),
            );
            ctl.live_workers.fetch_sub(1, Ordering::SeqCst);
        } else if has_flusher && w == cfg.threads + 1 {
            flusher_loop(cfg, ctl);
        } else {
            let listener = health_listener
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("health listener runs once"); // ci-allow-unwrap: single take by last worker
            health_loop(&listener, registry, cfg, ctl);
        }
    });
    // All workers joined: the backlog is settled and counters conserve.
    // drain_started = drain_until - budget, so elapsed-since-then is
    // (now + budget) - drain_until.
    let drain_took = ctl
        .drain_until
        .get()
        .map(|until| (Instant::now() + cfg.drain).saturating_duration_since(*until))
        .unwrap_or_default()
        .min(started.elapsed());
    Ok(ServeSummary {
        stats: ctl.stats.snapshot(),
        uptime: started.elapsed(),
        drain_took,
        addr,
    })
}

fn accept_loop(
    listener: &TcpListener,
    mailboxes: &[Bounded<Inbound>],
    overflow: &Bounded<Inbound>,
    cfg: &ServeConfig,
    ctl: &Control,
) {
    let mut rr = 0usize;
    loop {
        if ctl.shutdown_requested(cfg) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let accepted_at = Instant::now();
                ctl.stats.conn_opened();
                let _ = stream.set_nodelay(true);
                // Accounting precedes publication: the depth gauge is
                // bumped before the socket is visible to workers, so
                // the racing `conn_dequeued()` can never drive it
                // negative.
                let depth = ctl.stats.enqueue_started();
                let inbound = Inbound {
                    stream,
                    accepted_at,
                    accept_us: elapsed_us(accepted_at),
                };
                let target = &mailboxes[rr % mailboxes.len()];
                rr = rr.wrapping_add(1);
                let spill = match target.try_push(inbound) {
                    Ok(_) => {
                        ctl.stats.enqueue_committed(depth);
                        continue;
                    }
                    Err(inbound) => inbound,
                };
                match overflow.try_push(spill) {
                    Ok(_) => ctl.stats.enqueue_committed(depth),
                    Err(inbound) => {
                        ctl.stats.enqueue_aborted();
                        // Admission control: every queue is full, so
                        // shed *now* with a typed rejection instead of
                        // queueing unboundedly. The whole turned-away
                        // connection is one shed unit. No trace ID on
                        // the reply: no request line was ever read. The
                        // write is best-effort and strictly bounded.
                        ctl.stats.accept();
                        ctl.stats.shed_at_admission();
                        let _ = wire::write_line(
                            &inbound.stream,
                            &wire::format_err_line(ErrorKind::Overloaded, ""),
                            Instant::now() + Duration::from_millis(100),
                        );
                        ctl.stats.conn_closed();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly; the listener itself stays valid.
                std::thread::sleep(POLL);
            }
        }
    }
}

/// Scratch buffers a worker reuses across every burst it dispatches —
/// the allocation-amortization half of the batching story. `group` is
/// the per-tenant staging area of the grouped route (queries are
/// gathered group-major into `queries`, routed per group into `group`,
/// and concatenated into `routed`).
struct Scratch<'a> {
    queries: Vec<PathQuery>,
    routed: Vec<RoutedPath>,
    group: Vec<RoutedPath>,
    slots: Vec<Slot<'a>>,
    reply: String,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<'a>(
    registry: &'a Registry<'a>,
    me: usize,
    mailboxes: &[Bounded<Inbound>],
    overflow: &Bounded<Inbound>,
    cfg: &ServeConfig,
    ctl: &Control,
    chaos: Option<&ChaosPlan>,
) {
    let mailbox = &mailboxes[me];
    let mut conns: Vec<ConnState> = Vec::new();
    let mut mailbox_closed = false;
    let mut overflow_closed = false;
    let mut scratch = Scratch {
        queries: Vec::new(),
        routed: Vec::new(),
        group: Vec::new(),
        slots: Vec::new(),
        reply: String::new(),
    };
    loop {
        // Adopt new connections: own mailbox first, then the shared
        // overflow, up to the ownership cap.
        while !mailbox_closed && conns.len() < MAX_OWNED_CONNS {
            match mailbox.try_pop() {
                Pop::Item(inbound) => conns.push(adopt(inbound, ctl, chaos)),
                Pop::Closed => {
                    mailbox_closed = true;
                    break;
                }
                Pop::Timeout => break,
            }
        }
        while !overflow_closed && conns.len() < MAX_OWNED_CONNS {
            match overflow.try_pop() {
                Pop::Item(inbound) => conns.push(adopt(inbound, ctl, chaos)),
                Pop::Closed => {
                    overflow_closed = true;
                    break;
                }
                Pop::Timeout => break,
            }
        }
        // Steal from sibling mailboxes: the round-robin acceptor parks
        // connections behind a specific worker, and a worker mid-stall
        // (simulated work, an injected pause) would otherwise make its
        // mailbox wait out the entire straggle while idle siblings spin.
        // Closed siblings are their owner's business — only items are
        // taken.
        for (i, sib) in mailboxes.iter().enumerate() {
            if i == me || conns.len() >= MAX_OWNED_CONNS {
                continue;
            }
            if let Pop::Item(inbound) = sib.try_pop() {
                conns.push(adopt(inbound, ctl, chaos));
            }
        }
        if conns.is_empty() && mailbox_closed && overflow_closed {
            return;
        }
        // Service every owned connection once, run-to-completion.
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            let (moved, keep) =
                service_conn(registry, &mut conns[i], &mut scratch, cfg, ctl, chaos);
            progress |= moved;
            if keep {
                i += 1;
            } else {
                drop(conns.swap_remove(i));
            }
        }
        if !progress {
            // Idle: block briefly on the mailbox so adoption doubles as
            // the sleep. With live but quiet connections the wait stays
            // short to keep per-line latency bounded.
            let wait = if conns.is_empty() {
                Duration::from_millis(5)
            } else {
                Duration::from_micros(500)
            };
            if mailbox_closed {
                std::thread::sleep(wait.min(POLL));
            } else {
                match mailbox.pop_timeout(wait) {
                    Pop::Item(inbound) => conns.push(adopt(inbound, ctl, chaos)),
                    Pop::Closed => mailbox_closed = true,
                    Pop::Timeout => {}
                }
            }
        }
    }
}

fn adopt(inbound: Inbound, ctl: &Control, chaos: Option<&ChaosPlan>) -> ConnState {
    ctl.stats.conn_dequeued();
    let _ = inbound.stream.set_nonblocking(true);
    ConnState {
        stream: inbound.stream,
        fb: wire::FrameBuf::new(MAX_REQUEST_LINE),
        pending: VecDeque::new(),
        accepted_at: inbound.accepted_at,
        adopted_at: Instant::now(),
        accept_us: inbound.accept_us,
        conn_phases_recorded: false,
        partial_since: None,
        reset_after: chaos.and_then(|p| p.conn_reset()),
        answered: 0,
        eof: false,
        dead: false,
    }
}

/// One service pass over a connection: read + frame, dispatch a burst,
/// apply deadline/EOF/drain close rules. Returns `(made_progress,
/// keep_connection)`.
fn service_conn<'a>(
    registry: &'a Registry<'a>,
    conn: &mut ConnState,
    scratch: &mut Scratch<'a>,
    cfg: &ServeConfig,
    ctl: &Control,
    chaos: Option<&ChaosPlan>,
) -> (bool, bool) {
    let mut progress = false;
    // 1. Read whatever the socket has and frame it. New lines are
    //    admitted (enter the conservation ledger) the moment they are
    //    framed, stamped with their frame time for per-line deadlines.
    if !conn.eof && !conn.dead && conn.pending.len() < cfg.batch_max.max(1) {
        let mut chunk = [0u8; READ_CHUNK];
        match (&mut (&conn.stream)).read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                progress = true;
            }
            Ok(n) => {
                progress = true;
                conn.fb.extend(&chunk[..n]);
                let framed_at = Instant::now();
                let mut fresh: u64 = 0;
                while let Some(f) = conn.fb.next_line() {
                    conn.pending.push_back((f, framed_at));
                    fresh += 1;
                }
                if conn.fb.has_partial() {
                    conn.partial_since.get_or_insert(framed_at);
                } else {
                    conn.partial_since = None;
                }
                if fresh > 0 {
                    ctl.stats.admit(fresh);
                    if !conn.conn_phases_recorded {
                        conn.conn_phases_recorded = true;
                        ctl.stats.record_phase(Phase::Accept, conn.accept_us);
                        ctl.stats.record_phase(
                            Phase::QueueWait,
                            duration_us(
                                conn.adopted_at.saturating_duration_since(conn.accepted_at),
                            ),
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                progress = true;
            }
        }
    }
    // 1b. Chaos reset: a connection whose seed-derived schedule says
    //     "die after `k` answers" is killed the moment it has answered
    //     `k` lines with more admitted and waiting — a mid-pipeline
    //     reset. The close rules below settle its pending lines as
    //     `io_errors`, exactly like an organically dead peer.
    if !conn.dead && !conn.pending.is_empty() {
        if let Some(k) = conn.reset_after {
            if conn.answered >= k {
                conn.dead = true;
                ctl.stats.chaos_event(ChaosEvent::Reset);
                progress = true;
            }
        }
    }
    // 2. Dispatch a burst of pending lines.
    if !conn.dead && !conn.pending.is_empty() {
        progress = true;
        dispatch_burst(registry, conn, scratch, cfg, ctl, chaos);
    }
    // 3. The slow-loris clock: a partial line with nothing answerable
    //    pending that outlives the deadline settles as one
    //    deadline-exceeded unit and closes the connection.
    if !conn.dead && !conn.eof && conn.pending.is_empty() {
        if let Some(since) = conn.partial_since {
            if Instant::now() >= since + cfg.deadline {
                ctl.stats.admit(1);
                ctl.stats.settle(Counter::DeadlineExceeded);
                let _ = conn.stream.set_nonblocking(false);
                let _ = wire::write_line(
                    &conn.stream,
                    &wire::format_err_line(ErrorKind::DeadlineExceeded, ""),
                    Instant::now() + Duration::from_millis(100),
                );
                ctl.stats.conn_closed();
                return (true, false);
            }
        }
    }
    // 4. Close rules.
    if conn.dead {
        // Admitted-but-unanswered lines settle as I/O errors; a partial
        // line was never admitted and owes the ledger nothing.
        let unanswered = conn.pending.len() as u64;
        ctl.stats.settle_batch(Counter::IoError, unanswered);
        conn.pending.clear();
        ctl.stats.conn_closed();
        return (true, false);
    }
    if conn.eof && conn.pending.is_empty() {
        if conn.fb.has_partial() {
            // The peer hung up mid-line: one bad-request unit.
            ctl.stats.admit(1);
            ctl.stats.settle(Counter::BadRequest);
        }
        // A clean keep-alive close after the last reply is zero units.
        ctl.stats.conn_closed();
        return (true, false);
    }
    if ctl.drain_until.get().is_some() && conn.pending.is_empty() && !conn.fb.has_partial() {
        // Draining and this connection is idle: close it so the worker
        // can exit; clients see EOF and reconnect elsewhere.
        ctl.stats.conn_closed();
        return (true, false);
    }
    (progress, true)
}

/// Parses one request line already resolved to a live tenant. Probes
/// answer from the global ledger and stay unattributed; `PATH` lines
/// (and unparseable ones) are attributed to the tenant and charged
/// against its quota share — an over-quota line sheds `ERR OVERLOADED`
/// for this tenant alone, which is the isolation the quota exists for.
#[allow(clippy::too_many_arguments)]
fn parse_on_tenant<'a>(
    req: &str,
    tenant: Arc<Tenant<'a>>,
    line_deadline: Instant,
    latest_path_deadline: &mut Option<Instant>,
    cfg: &ServeConfig,
    ctl: &Control,
    chaos: Option<&ChaosPlan>,
    chaos_stall: &mut Duration,
    chaos_pause: &mut Duration,
    chaos_slow_write: &mut bool,
) -> Slot<'a> {
    match wire::parse_request(req, tenant.router().mesh()) {
        Ok(Request::Health) => {
            let snap = ctl.stats.snapshot();
            Slot::Done {
                reply: format!(
                    "OK healthy accepted={} completed={} shed={} queue_depth={}\n",
                    snap.accepted, snap.completed, snap.shed_overloaded, snap.queue_depth
                ),
                bucket: Counter::Completed,
                tenant: None,
            }
        }
        Ok(Request::Ready) => Slot::Done {
            reply: if ctl.shutdown_requested(cfg) {
                wire::format_err_line(ErrorKind::ShuttingDown, "")
            } else {
                "OK ready\n".to_string()
            },
            bucket: Counter::Completed,
            tenant: None,
        },
        Ok(Request::Metrics) => Slot::Done {
            // Also served here on the request port (subject to
            // admission); the health listener serves it
            // admission-free.
            reply: render_exposition(&ctl.stats.snapshot(), ctl.uptime()),
            bucket: Counter::Completed,
            tenant: None,
        },
        Ok(Request::Path { seed, src, dst, id }) => {
            ctl.stats.tenant_admit(tenant.id(), 1);
            if !tenant.begin() {
                // Over this tenant's quota (rate or share): shed for
                // this tenant only; other meshes never see it.
                Slot::Done {
                    reply: wire::format_err_line_with_id(ErrorKind::Overloaded, id.as_deref(), ""),
                    bucket: Counter::ShedOverloaded,
                    tenant: Some(tenant),
                }
            } else if Instant::now() >= line_deadline {
                // Stale before we even routed it (overload backed the
                // pipeline up).
                Slot::Done {
                    reply: wire::format_err_line_with_id(
                        ErrorKind::DeadlineExceeded,
                        id.as_deref(),
                        "",
                    ),
                    bucket: Counter::DeadlineExceeded,
                    tenant: Some(tenant),
                }
            } else {
                *latest_path_deadline =
                    Some(latest_path_deadline.map_or(line_deadline, |d| d.max(line_deadline)));
                // Chaos decisions key on the wire seed mixed with the
                // trace id, so the same request stream injects the
                // same events in any worker interleaving (the
                // determinism test's contract), while retries and
                // hedged duplicates draw independently. Concurrent
                // injections fold like concurrent stragglers: the
                // burst takes the max, each marked request still
                // counts its own event.
                if let Some(plan) = chaos {
                    let ckey = crate::chaos::request_key(seed, id.as_deref());
                    if let Some(d) = plan.stall(ckey) {
                        *chaos_stall = (*chaos_stall).max(d);
                        ctl.stats.chaos_event(ChaosEvent::Stall);
                    }
                    if let Some(d) = plan.worker_pause(ckey) {
                        *chaos_pause = (*chaos_pause).max(d);
                        ctl.stats.chaos_event(ChaosEvent::WorkerPause);
                    }
                    if plan.slow_write(ckey) {
                        *chaos_slow_write = true;
                        ctl.stats.chaos_event(ChaosEvent::SlowWrite);
                    }
                }
                Slot::Route {
                    q: PathQuery { seed, src, dst },
                    id,
                    deadline: line_deadline,
                    qi: usize::MAX,
                    tenant,
                }
            }
        }
        Err(detail) => {
            // A malformed line mid-pipeline answers in order with its
            // ID when salvageable; the stream stays in sync. It is
            // attributed (and charged) like any other line the tenant's
            // client sent.
            ctl.stats.tenant_admit(tenant.id(), 1);
            let _ = tenant.begin();
            let id = salvage_id(req);
            Slot::Done {
                reply: wire::format_err_line_with_id(ErrorKind::BadRequest, id.as_deref(), &detail),
                bucket: Counter::BadRequest,
                tenant: Some(tenant),
            }
        }
    }
}

/// Answers up to `batch_max` pending lines in one pass: parse them all
/// (resolving each line's `MESH` prefix against the registry and
/// charging its tenant's quota), run the simulated work *once*, route
/// every live `PATH` query through `route_batch` grouped by tenant,
/// then write every reply — in request order — with a single syscall.
fn dispatch_burst<'a>(
    registry: &'a Registry<'a>,
    conn: &mut ConnState,
    scratch: &mut Scratch<'a>,
    cfg: &ServeConfig,
    ctl: &Control,
    chaos: Option<&ChaosPlan>,
) {
    let n = conn.pending.len().min(cfg.batch_max.max(1));
    // Chaos accumulators for this burst: per-request decisions are made
    // (and counted) at parse time; the injections apply burst-wide,
    // mirroring how `cfg.work` amortizes over the batch.
    let mut chaos_stall = Duration::ZERO;
    let mut chaos_pause = Duration::ZERO;
    let mut chaos_slow_write = false;
    let drain_expired = ctl
        .drain_until
        .get()
        .is_some_and(|until| Instant::now() >= *until);
    let parse_started = Instant::now();
    scratch.slots.clear();
    let mut latest_path_deadline: Option<Instant> = None;
    // Per-burst resolution memo: pipelined bursts overwhelmingly name
    // one mesh (usually none), so the registry's read lock is taken
    // once per burst, not once per line.
    let mut memo: Option<(Option<String>, Resolved<'a>)> = None;
    for _ in 0..n {
        let Some((framed, framed_at)) = conn.pending.pop_front() else {
            break;
        };
        let line_deadline = framed_at + cfg.deadline;
        let slot = match framed {
            Framed::Bad(detail) => Slot::Done {
                reply: wire::format_err_line(ErrorKind::BadRequest, detail),
                bucket: Counter::BadRequest,
                tenant: None,
            },
            Framed::Line(line) => {
                if drain_expired {
                    // Past the drain budget: typed rejection, not
                    // silence — with the ID echoed when salvageable.
                    let id = salvage_id(&line);
                    Slot::Done {
                        reply: wire::format_err_line_with_id(
                            ErrorKind::ShuttingDown,
                            id.as_deref(),
                            "",
                        ),
                        bucket: Counter::DrainRejected,
                        tenant: None,
                    }
                } else {
                    match wire::split_mesh_prefix(&line) {
                        Err(detail) => {
                            let id = salvage_id(&line);
                            Slot::Done {
                                reply: wire::format_err_line_with_id(
                                    ErrorKind::BadRequest,
                                    id.as_deref(),
                                    &detail,
                                ),
                                bucket: Counter::BadRequest,
                                tenant: None,
                            }
                        }
                        Ok((mesh_id, req)) => {
                            let resolved = match &memo {
                                Some((key, res)) if key.as_deref() == mesh_id => res.clone(),
                                _ => {
                                    let res = registry.resolve(mesh_id);
                                    memo = Some((mesh_id.map(str::to_string), res.clone()));
                                    res
                                }
                            };
                            match resolved {
                                Resolved::Unknown => {
                                    // Never attributed: there is no
                                    // tenant to charge.
                                    let id = salvage_id(&line);
                                    Slot::Done {
                                        reply: wire::format_err_line_with_id(
                                            ErrorKind::UnknownMesh,
                                            id.as_deref(),
                                            "",
                                        ),
                                        bucket: Counter::UnknownMesh,
                                        tenant: None,
                                    }
                                }
                                Resolved::Retired => {
                                    // Attributed to the retired id's
                                    // ledger in one atomic transition
                                    // (nothing routes, so it is never
                                    // in flight for the tenant).
                                    let id = salvage_id(&line);
                                    if let Some(mid) = mesh_id {
                                        ctl.stats.tenant_mesh_retired(mid, 1);
                                    }
                                    Slot::Done {
                                        reply: wire::format_err_line_with_id(
                                            ErrorKind::MeshRetired,
                                            id.as_deref(),
                                            "",
                                        ),
                                        bucket: Counter::MeshRetired,
                                        tenant: None,
                                    }
                                }
                                Resolved::Live(tenant) => parse_on_tenant(
                                    req,
                                    tenant,
                                    line_deadline,
                                    &mut latest_path_deadline,
                                    cfg,
                                    ctl,
                                    chaos,
                                    &mut chaos_stall,
                                    &mut chaos_pause,
                                    &mut chaos_slow_write,
                                ),
                            }
                        }
                    }
                }
            }
        };
        scratch.slots.push(slot);
    }
    ctl.stats
        .record_phase(Phase::Parse, elapsed_us(parse_started));
    // Injected worker pause: deliberately *uncapped* — a stopped worker
    // does not honor deadlines, and every connection this worker owns
    // waits it out. Lines it pushes past their deadline settle as
    // deadline-exceeded through the post-work sweep below.
    if !chaos_pause.is_zero() {
        std::thread::sleep(chaos_pause);
    }
    // Simulated service time: one sleep per burst, not per line — the
    // amortization that pipelined dispatch exists to buy. An injected
    // compute stall extends it. Capped by the latest live deadline so
    // an overloaded (or stalled) burst still answers: that is why
    // injected stalls settle as completions, never leak.
    let route_started = Instant::now();
    if let Some(latest) = latest_path_deadline {
        let service = cfg.work + chaos_stall;
        if !service.is_zero() {
            std::thread::sleep(service.min(latest.saturating_duration_since(Instant::now())));
        }
    }
    // Post-work expiry check, then batch-route the survivors grouped
    // by tenant — one `route_batch` call per distinct mesh in
    // first-appearance order, so a single-tenant burst (the only kind
    // prefix-free traffic produces) is exactly one call over the slots
    // in request order, identical to the single-mesh server. Each
    // query reseeds from its own wire seed inside `route_batch`, so
    // batched answers stay byte-identical to single-shot routing.
    let now = Instant::now();
    for slot in &mut scratch.slots {
        let expired = matches!(&*slot, Slot::Route { deadline, .. } if now >= *deadline);
        if expired {
            if let Slot::Route { id, tenant, .. } = &*slot {
                let done = Slot::Done {
                    reply: wire::format_err_line_with_id(
                        ErrorKind::DeadlineExceeded,
                        id.as_deref(),
                        "",
                    ),
                    bucket: Counter::DeadlineExceeded,
                    tenant: Some(Arc::clone(tenant)),
                };
                *slot = done;
            }
        }
    }
    scratch.queries.clear();
    scratch.routed.clear();
    let mut burst_tenants: Vec<Arc<Tenant<'a>>> = Vec::new();
    for slot in &scratch.slots {
        if let Slot::Route { tenant, .. } = slot {
            if !burst_tenants.iter().any(|t| Arc::ptr_eq(t, tenant)) {
                burst_tenants.push(Arc::clone(tenant));
            }
        }
    }
    for group in &burst_tenants {
        let base = scratch.queries.len();
        for slot in &mut scratch.slots {
            if let Slot::Route { q, qi, tenant, .. } = slot {
                if Arc::ptr_eq(tenant, group) {
                    *qi = scratch.queries.len();
                    scratch.queries.push(q.clone());
                }
            }
        }
        group
            .router()
            .route_batch(&scratch.queries[base..], &mut scratch.group);
        scratch.routed.append(&mut scratch.group);
    }
    ctl.stats
        .record_phase(Phase::RouteCompute, elapsed_us(route_started));
    // Assemble the burst's replies in request order and write them with
    // one syscall.
    scratch.reply.clear();
    // completed, bad, deadline, drain, shed, unknown_mesh, mesh_retired
    let mut settled = [0u64; 7];
    for slot in &scratch.slots {
        match slot {
            Slot::Done { reply, bucket, .. } => {
                scratch.reply.push_str(reply);
                match bucket {
                    Counter::Completed => settled[0] += 1,
                    Counter::BadRequest => settled[1] += 1,
                    Counter::DeadlineExceeded => settled[2] += 1,
                    Counter::ShedOverloaded => settled[4] += 1,
                    Counter::UnknownMesh => settled[5] += 1,
                    Counter::MeshRetired => settled[6] += 1,
                    _ => settled[3] += 1,
                }
            }
            Slot::Route { id, qi, tenant, .. } => {
                let routed = &scratch.routed[*qi];
                scratch.reply.push_str(&wire::format_path_line_with_id(
                    &routed.path,
                    tenant.router().mesh().dim(),
                    id.as_deref(),
                ));
                settled[0] += 1;
            }
        }
    }
    let write_started = Instant::now();
    let _ = conn.stream.set_nonblocking(false);
    let write_deadline = Instant::now() + cfg.deadline;
    let wrote = match chaos {
        // Injected slow write: the burst's reply goes out in two chunks
        // with a stall between them — a mid-line partial write, exactly
        // what a congested peer socket produces. The split point is the
        // byte middle (protocol lines are ASCII; the boundary walk is
        // cheap insurance), so the first chunk usually ends mid-line.
        Some(plan) if chaos_slow_write && scratch.reply.len() > 1 => {
            let mut mid = scratch.reply.len() / 2;
            while !scratch.reply.is_char_boundary(mid) {
                mid += 1;
            }
            wire::write_line(&conn.stream, &scratch.reply[..mid], write_deadline).and_then(|()| {
                std::thread::sleep(
                    plan.write_stall()
                        .min(write_deadline.saturating_duration_since(Instant::now())),
                );
                wire::write_line(&conn.stream, &scratch.reply[mid..], write_deadline)
            })
        }
        _ => wire::write_line(&conn.stream, &scratch.reply, write_deadline),
    };
    let _ = conn.stream.set_nonblocking(true);
    match wrote {
        Ok(()) => {
            conn.answered += scratch.slots.len() as u64;
            ctl.stats
                .record_phase(Phase::ReplyWrite, elapsed_us(write_started));
            ctl.stats.settle_batch(Counter::Completed, settled[0]);
            ctl.stats.settle_batch(Counter::BadRequest, settled[1]);
            ctl.stats
                .settle_batch(Counter::DeadlineExceeded, settled[2]);
            ctl.stats.settle_batch(Counter::DrainRejected, settled[3]);
            ctl.stats.settle_batch(Counter::ShedOverloaded, settled[4]);
            ctl.stats.settle_batch(Counter::UnknownMesh, settled[5]);
            ctl.stats.settle_batch(Counter::MeshRetired, settled[6]);
            settle_tenants(ctl, &scratch.slots, None);
        }
        Err(_) => {
            // The peer is gone: nothing in this burst is known
            // delivered, so the whole burst settles as I/O errors and
            // the close path below sweeps any still-pending lines.
            ctl.stats.settle_batch(Counter::IoError, n as u64);
            settle_tenants(ctl, &scratch.slots, Some(Counter::IoError));
            conn.dead = true;
        }
    }
}

/// Settles every tenant-attributed slot of a burst into its tenant
/// ledger and releases its quota share, aggregating consecutive runs of
/// the same `(tenant, bucket)` into one ledger transition. `force`
/// overrides the per-slot bucket (the whole-burst I/O-error path: an
/// unwritable reply is an `io_error` for its tenant too).
fn settle_tenants(ctl: &Control, slots: &[Slot<'_>], force: Option<Counter>) {
    let mut run: Option<(&Arc<Tenant<'_>>, Counter, u64)> = None;
    for slot in slots {
        let Some(tenant) = slot.tenant() else {
            continue;
        };
        tenant.end();
        let bucket = force.unwrap_or_else(|| slot.bucket());
        match &mut run {
            Some((t, b, count)) if Arc::ptr_eq(t, tenant) && *b == bucket => *count += 1,
            _ => {
                if let Some((t, b, count)) = run.take() {
                    ctl.stats.tenant_settle(t.id(), b, count);
                }
                run = Some((tenant, bucket, 1));
            }
        }
    }
    if let Some((t, b, count)) = run {
        ctl.stats.tenant_settle(t.id(), b, count);
    }
}

/// Microseconds since `t`, saturating.
fn elapsed_us(t: Instant) -> u64 {
    duration_us(t.elapsed())
}

/// A duration in whole microseconds, saturating.
fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Pulls a valid `id=<token>` out of a request line that failed to
/// parse, so the rejection can still be correlated client-side.
fn salvage_id(line: &str) -> Option<String> {
    line.split_ascii_whitespace()
        .filter_map(|tok| tok.strip_prefix("id="))
        .find(|id| wire::valid_request_id(id))
        .map(str::to_string)
}

/// The background stats flusher: appends one `{"type":"serve_stats"}`
/// JSONL line per interval to `stats_path` (only when something
/// changed), plus a final line at drain. A crash therefore loses at
/// most one interval of telemetry; everything before it is already on
/// disk.
fn flusher_loop(cfg: &ServeConfig, ctl: &Control) {
    let (Some(every), Some(path)) = (cfg.stats_every, cfg.stats_path.as_ref()) else {
        return;
    };
    let mut file = match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("serve: stats flusher cannot open {}: {e}", path.display());
            return;
        }
    };
    let mut last_digest: Option<(u64, u64, u64)> = None;
    let mut next_flush = Instant::now() + every;
    loop {
        let draining = ctl.drained();
        if Instant::now() >= next_flush || draining {
            next_flush = Instant::now() + every;
            let snap = ctl.stats.snapshot();
            let digest = (
                snap.accepted,
                snap.settled() + snap.health_probes,
                snap.phases.iter().map(|(_, h)| h.count).sum(),
            );
            if last_digest != Some(digest) {
                last_digest = Some(digest);
                let line = serve_stats_json(&snap, ctl.uptime());
                if writeln!(file, "{line}").is_err() {
                    return; // disk gone; stop burning the crew slot
                }
                let _ = file.flush();
            }
            if draining {
                return;
            }
        }
        std::thread::sleep(POLL.min(every));
    }
}

/// One flushed snapshot as a JSONL object (cumulative, not a delta on
/// the wire — deltas are trivially derivable and cumulative lines stay
/// meaningful when an interval is lost to a crash).
fn serve_stats_json(snap: &StatsSnapshot, uptime: Duration) -> String {
    let mut obj = Json::obj();
    obj.set("type", "serve_stats").set(
        "uptime_ms",
        uptime.as_millis().min(u128::from(u64::MAX)) as u64,
    );
    for (name, value) in snap.obs_counters() {
        obj.set(name, value);
    }
    obj.set("serve_queue_depth", snap.queue_depth)
        .set("serve_in_flight", snap.in_flight)
        .set("serve_connections", snap.connections)
        .set("serve_open_conns", snap.open_conns)
        .set("serve_max_queue_depth", snap.max_queue_depth);
    for (phase, hist) in &snap.phases {
        obj.set(
            format!("phase_{phase}_us"),
            oblivion_obs::histogram_json("histogram", phase, hist),
        );
    }
    obj.to_string()
}

/// The dedicated probe listener: single-threaded, admission-free, with
/// aggressively short timeouts so a stalled prober cannot wedge it for
/// long. Runs until the workers have drained, so probes still answer
/// (READY → `ERR SHUTTING_DOWN`) during the drain window. `METRICS` is
/// served here precisely because it bypasses admission: the telemetry
/// stays scrapeable when the request port is shedding. The `ADMIN`
/// verbs live here for the same reason — an operator must be able to
/// add or retire a mesh while the request port is melting down.
fn health_loop<'a>(
    listener: &TcpListener,
    registry: &'a Registry<'a>,
    cfg: &ServeConfig,
    ctl: &Control,
) {
    let probe_budget = Duration::from_millis(250);
    loop {
        // Probes keep answering through the drain window (READY says
        // `ERR SHUTTING_DOWN`); the loop exits with the crew once the
        // acceptor has stamped the drain and the workers are done.
        if ctl.drained() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                ctl.stats.health_probe();
                let deadline = Instant::now() + probe_budget;
                let _ = stream.set_nodelay(true);
                let reply = match wire::read_line(&stream, MAX_REQUEST_LINE, deadline) {
                    Ok(line) => match line.trim() {
                        "HEALTH" => {
                            let snap = ctl.stats.snapshot();
                            format!(
                                "OK healthy accepted={} completed={} shed={} queue_depth={}\n",
                                snap.accepted,
                                snap.completed,
                                snap.shed_overloaded,
                                snap.queue_depth
                            )
                        }
                        "READY" => {
                            if ctl.shutdown_requested(cfg) {
                                wire::format_err_line(ErrorKind::ShuttingDown, "")
                            } else {
                                "OK ready\n".to_string()
                            }
                        }
                        "METRICS" => render_exposition(&ctl.stats.snapshot(), ctl.uptime()),
                        line => match line.strip_prefix("ADMIN ") {
                            Some(verb) => handle_admin(verb.trim(), registry, ctl),
                            None => wire::format_err_line(
                                ErrorKind::BadRequest,
                                "health port accepts HEALTH|READY|METRICS|ADMIN ...",
                            ),
                        },
                    },
                    Err(_) => wire::format_err_line(ErrorKind::BadRequest, "no probe line"),
                };
                let _ = wire::write_line(&stream, &reply, deadline);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One `ADMIN` verb against the live registry (always a single reply
/// line):
///
/// ```text
/// ADMIN LIST                          -> OK meshes <id>:<live|retired>:<state_bytes> ...
/// ADMIN ADD <id> <mesh-spec> <router> -> OK added <id> state_bytes=<n>
/// ADMIN RETIRE <id>                   -> OK retired <id>
/// ```
///
/// `ADD` builds the router by its CLI name (torus topology is implied
/// by `busch-torus`); a revived id starts a fresh ledger-state gauge,
/// `RETIRE` zeroes it — the freed memory is visible in the next scrape.
fn handle_admin<'a>(verb: &str, registry: &'a Registry<'a>, ctl: &Control) -> String {
    let mut it = verb.split_ascii_whitespace();
    let result = match it.next() {
        Some("LIST") => {
            let rows: Vec<String> = registry
                .list()
                .into_iter()
                .map(|(id, live, bytes)| {
                    format!("{id}:{}:{bytes}", if live { "live" } else { "retired" })
                })
                .collect();
            Ok(format!("meshes {}", rows.join(" ")))
        }
        Some("ADD") => match (it.next(), it.next(), it.next(), it.next()) {
            (Some(id), Some(spec), Some(router), None) => {
                parse_mesh_spec(spec, router == "busch-torus")
                    .and_then(|mesh| build_router(router, &mesh))
                    .and_then(|r| registry.add(id, RouterHandle::Owned(r)))
                    .map(|bytes| {
                        ctl.stats.set_tenant_state_bytes(id, bytes);
                        format!("added {id} state_bytes={bytes}")
                    })
            }
            _ => Err("usage: ADMIN ADD <id> <mesh-spec> <router>".into()),
        },
        Some("RETIRE") => match (it.next(), it.next()) {
            (Some(id), None) => registry.retire(id).map(|()| {
                ctl.stats.set_tenant_state_bytes(id, 0);
                format!("retired {id}")
            }),
            _ => Err("usage: ADMIN RETIRE <id>".into()),
        },
        _ => Err("ADMIN verbs: LIST | ADD <id> <mesh-spec> <router> | RETIRE <id>".into()),
    };
    match result {
        Ok(payload) => format!("OK {payload}\n"),
        Err(detail) => wire::format_err_line(ErrorKind::BadRequest, &detail),
    }
}
