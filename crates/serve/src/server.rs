//! The overload-safe request server.
//!
//! Thread layout (all on one [`run_crew`] scoped pool, so a panic
//! anywhere propagates instead of silently losing a worker):
//!
//! ```text
//! crew[0]            acceptor: accept → try_push; full queue → shed
//!                    with ERR OVERLOADED; polls the shutdown flag
//! crew[1..=threads]  workers: pop → deadline check → read line →
//!                    parse → route → respond
//! crew[..]           stats flusher (optional): appends a JSONL snapshot
//!                    to --metrics-out every --stats-every interval, so
//!                    a crash loses at most one interval of telemetry
//! crew[last]         health listener (optional): HEALTH/READY/METRICS
//!                    on a dedicated port, bypassing admission so they
//!                    answer even at 10x overload
//! ```
//!
//! Overload behavior is the design center: the queue is bounded, pushes
//! never block, and every admitted connection settles into exactly one
//! counter bucket (see [`crate::stats`]). Each request is timed through
//! explicit phases — accept, queue-wait, parse, route-compute,
//! reply-write — into per-phase histograms that `METRICS` exposes live.
//! On shutdown (SIGTERM/SIGINT or [`Control::request_shutdown`]) the
//! acceptor closes the listener, stamps the drain deadline, and closes
//! the queue; workers finish the backlog while the drain budget lasts
//! and reject the rest with `ERR SHUTTING_DOWN`. The process then exits
//! 0 with conserved counters — that is the "graceful" in graceful drain.
//!
//! [`run_crew`]: oblivion_sim::pool::run_crew

use crate::metrics::render_exposition;
use crate::queue::{Bounded, Pop};
use crate::stats::{Counter, Phase, ServeStats, StatsSnapshot};
use crate::wire::{self, ErrorKind, LineError, Request, MAX_REQUEST_LINE};
use oblivion_core::ObliviousRouter;
use oblivion_obs::Json;
use oblivion_sim::pool::run_crew;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`run`]. Validation of user-facing values (nonzero
/// port, threads, deadline, queue) is the CLI's job; the library only
/// requires what it structurally needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind, e.g. `127.0.0.1`.
    pub host: String,
    /// Port for the request listener; `0` lets the OS pick (tests).
    pub port: u16,
    /// Dedicated probe port; `Some(0)` lets the OS pick, `None`
    /// disables the health listener.
    pub health_port: Option<u16>,
    /// Request worker threads (the acceptor, flusher, and health
    /// listener are extra).
    pub threads: usize,
    /// Admission queue capacity; connections beyond it are shed.
    pub queue_cap: usize,
    /// Per-request deadline, measured from accept.
    pub deadline: Duration,
    /// Drain budget: how long queued requests may still complete after
    /// shutdown is requested.
    pub drain: Duration,
    /// Simulated extra service time per `PATH` request — overload knob
    /// for tests and the `exp_serve` load sweep.
    pub work: Duration,
    /// Background stats flusher interval; `None` disables the flusher.
    pub stats_every: Option<Duration>,
    /// File the flusher appends JSONL snapshots to (requires
    /// `stats_every`).
    pub stats_path: Option<PathBuf>,
    /// Also poll the process-wide `oblivion-signal` flag (SIGTERM /
    /// SIGINT), not just [`Control::request_shutdown`].
    pub honor_process_signals: bool,
    /// Announce the bound addresses on stderr (the CLI's readiness
    /// signal for scripts).
    pub announce: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".into(),
            port: 0,
            health_port: Some(0),
            threads: 4,
            queue_cap: 64,
            deadline: Duration::from_millis(1000),
            drain: Duration::from_millis(2000),
            work: Duration::ZERO,
            stats_every: None,
            stats_path: None,
            honor_process_signals: false,
            announce: false,
        }
    }
}

/// Shared handle between [`run`] (which blocks) and whoever supervises
/// it from another thread: readiness, live stats, and shutdown.
#[derive(Default)]
pub struct Control {
    shutdown: AtomicBool,
    bound: OnceLock<SocketAddr>,
    health_bound: OnceLock<SocketAddr>,
    drain_until: OnceLock<Instant>,
    started: OnceLock<Instant>,
    stats: ServeStats,
}

impl Control {
    /// A fresh control block.
    pub fn new() -> Self {
        Control::default()
    }

    /// Asks the server to stop accepting and drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutdown_requested(&self, cfg: &ServeConfig) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || (cfg.honor_process_signals && oblivion_signal::shutdown_requested())
    }

    /// The request listener's bound address, once bound.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.bound.get().copied()
    }

    /// The health listener's bound address, once bound.
    pub fn health_addr(&self) -> Option<SocketAddr> {
        self.health_bound.get().copied()
    }

    /// Polls for the bound address (for supervising threads that start
    /// [`run`] in the background).
    pub fn wait_addr(&self, timeout: Duration) -> Option<SocketAddr> {
        let end = Instant::now() + timeout;
        loop {
            if let Some(a) = self.addr() {
                return Some(a);
            }
            if Instant::now() >= end {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    fn uptime(&self) -> Duration {
        self.started.get().map(|s| s.elapsed()).unwrap_or_default()
    }
}

/// What [`run`] reports after draining.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final counters (quiescent, so the conservation law holds).
    pub stats: StatsSnapshot,
    /// Wall-clock time the server was up.
    pub uptime: Duration,
    /// Wall-clock time from shutdown request to full drain.
    pub drain_took: Duration,
    /// Request listener address.
    pub addr: SocketAddr,
}

/// How often idle loops re-check flags. Short enough that shutdown and
/// accept latency stay invisible, long enough to cost no CPU.
const POLL: Duration = Duration::from_millis(2);

/// One admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Binds and serves until shutdown is requested, then drains; returns
/// the final summary. Blocks the calling thread for the server's whole
/// life — supervise from another thread via the shared [`Control`].
pub fn run(
    router: &dyn ObliviousRouter,
    cfg: &ServeConfig,
    ctl: &Control,
) -> std::io::Result<ServeSummary> {
    let started = Instant::now();
    let _ = ctl.started.set(started);
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let _ = ctl.bound.set(addr);
    let health_listener = match cfg.health_port {
        Some(p) => {
            let l = TcpListener::bind((cfg.host.as_str(), p))?;
            l.set_nonblocking(true)?;
            let _ = ctl.health_bound.set(l.local_addr()?);
            Some(l)
        }
        None => None,
    };
    if cfg.announce {
        match ctl.health_addr() {
            Some(h) => eprintln!("serve: listening on {addr} (health {h})"),
            None => eprintln!("serve: listening on {addr} (health disabled)"),
        }
    }

    let queue: Bounded<Job> = Bounded::new(cfg.queue_cap);
    let has_health = health_listener.is_some();
    let has_flusher = cfg.stats_every.is_some() && cfg.stats_path.is_some();
    let listener = Mutex::new(Some(listener));
    let health_listener = Mutex::new(health_listener);
    let crew = 1 + cfg.threads + usize::from(has_flusher) + usize::from(has_health);
    run_crew(crew, |w| {
        if w == 0 {
            let listener = listener
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("acceptor runs once"); // ci-allow-unwrap: single take by worker 0
            accept_loop(&listener, &queue, cfg, ctl);
            // Shutdown: stop accepting (drop the listener), stamp the
            // drain deadline, and let the workers run the backlog down.
            let _ = ctl.drain_until.set(Instant::now() + cfg.drain);
            drop(listener);
            queue.close();
        } else if w <= cfg.threads {
            worker_loop(router, &queue, cfg, ctl);
        } else if has_flusher && w == cfg.threads + 1 {
            flusher_loop(&queue, cfg, ctl);
        } else {
            let listener = health_listener
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("health listener runs once"); // ci-allow-unwrap: single take by last worker
            health_loop(&listener, &queue, cfg, ctl);
        }
    });
    // All workers joined: the backlog is settled and counters conserve.
    // drain_started = drain_until - budget, so elapsed-since-then is
    // (now + budget) - drain_until.
    let drain_took = ctl
        .drain_until
        .get()
        .map(|until| (Instant::now() + cfg.drain).saturating_duration_since(*until))
        .unwrap_or_default()
        .min(started.elapsed());
    Ok(ServeSummary {
        stats: ctl.stats.snapshot(),
        uptime: started.elapsed(),
        drain_took,
        addr,
    })
}

fn accept_loop(listener: &TcpListener, queue: &Bounded<Job>, cfg: &ServeConfig, ctl: &Control) {
    loop {
        if ctl.shutdown_requested(cfg) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctl.stats.accept();
                let accepted_at = Instant::now();
                let _ = stream.set_nodelay(true);
                let job = Job {
                    stream,
                    accepted_at,
                };
                // Accounting precedes publication: the depth gauge is
                // bumped before the job is visible to workers, so the
                // racing `dequeued()` can never drive it negative.
                let depth = ctl.stats.enqueue_started();
                match queue.try_push(job) {
                    Ok(_) => {
                        ctl.stats.enqueue_committed(depth);
                        ctl.stats
                            .record_phase(Phase::Accept, elapsed_us(accepted_at));
                    }
                    Err(job) => {
                        ctl.stats.enqueue_aborted();
                        // Admission control: the queue is full, so shed
                        // *now* with a typed rejection instead of
                        // queueing unboundedly. No trace ID on the
                        // reply: the request line was never read. The
                        // write is best-effort and strictly bounded.
                        ctl.stats.shed_at_admission();
                        let _ = wire::write_line(
                            &job.stream,
                            &wire::format_err_line(ErrorKind::Overloaded, ""),
                            Instant::now() + Duration::from_millis(100),
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly; the listener itself stays valid.
                std::thread::sleep(POLL);
            }
        }
    }
}

fn worker_loop(
    router: &dyn ObliviousRouter,
    queue: &Bounded<Job>,
    cfg: &ServeConfig,
    ctl: &Control,
) {
    loop {
        match queue.pop_timeout(Duration::from_millis(50)) {
            Pop::Item(job) => {
                ctl.stats.dequeued();
                ctl.stats
                    .record_phase(Phase::QueueWait, elapsed_us(job.accepted_at));
                handle(router, job, cfg, ctl);
            }
            Pop::Closed => return,
            Pop::Timeout => {}
        }
    }
}

/// Microseconds since `t`, saturating.
fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Serves one admitted connection, settling it into exactly one
/// counter bucket.
fn handle(router: &dyn ObliviousRouter, job: Job, cfg: &ServeConfig, ctl: &Control) {
    let deadline = job.accepted_at + cfg.deadline;
    let stream = job.stream;
    // Queued past the drain budget? Typed rejection, not silence.
    if let Some(until) = ctl.drain_until.get() {
        if Instant::now() >= *until {
            ctl.stats.settle(Counter::DrainRejected);
            let _ = wire::write_line(
                &stream,
                &wire::format_err_line(ErrorKind::ShuttingDown, ""),
                Instant::now() + Duration::from_millis(100),
            );
            return;
        }
    }
    // Queued past the request deadline (overload made it stale)?
    if Instant::now() >= deadline {
        ctl.stats.settle(Counter::DeadlineExceeded);
        let _ = wire::write_line(
            &stream,
            &wire::format_err_line(ErrorKind::DeadlineExceeded, ""),
            Instant::now() + Duration::from_millis(100),
        );
        return;
    }
    let parse_started = Instant::now();
    let line = match wire::read_line(&stream, MAX_REQUEST_LINE, deadline) {
        Ok(line) => line,
        Err(LineError::Deadline) => {
            // The slow-loris bucket: the peer connected but never
            // finished a line within the deadline. No ID to echo — the
            // line never arrived.
            ctl.stats.settle(Counter::DeadlineExceeded);
            let _ = wire::write_line(
                &stream,
                &wire::format_err_line(ErrorKind::DeadlineExceeded, ""),
                Instant::now() + Duration::from_millis(100),
            );
            return;
        }
        Err(LineError::TooLong) => {
            ctl.stats.settle(Counter::BadRequest);
            let _ = wire::write_line(
                &stream,
                &wire::format_err_line(ErrorKind::BadRequest, "request line too long"),
                deadline,
            );
            return;
        }
        Err(LineError::Eof(saw_bytes)) => {
            if saw_bytes {
                ctl.stats.settle(Counter::BadRequest);
            } else {
                // Connect-and-close (port scan, aborted client): an I/O
                // settlement, nothing to answer.
                ctl.stats.settle(Counter::IoError);
            }
            return;
        }
        Err(LineError::Io(_)) => {
            ctl.stats.settle(Counter::IoError);
            return;
        }
    };
    let parsed = wire::parse_request(&line, router.mesh());
    ctl.stats
        .record_phase(Phase::Parse, elapsed_us(parse_started));
    match parsed {
        Ok(Request::Health) => {
            let snap = ctl.stats.snapshot();
            let body = format!(
                "OK healthy accepted={} completed={} shed={} queue_depth={}\n",
                snap.accepted, snap.completed, snap.shed_overloaded, snap.queue_depth
            );
            settle_write(ctl, &stream, &body, deadline);
        }
        Ok(Request::Ready) => {
            let body = if ctl.shutdown_requested(cfg) {
                wire::format_err_line(ErrorKind::ShuttingDown, "")
            } else {
                "OK ready\n".to_string()
            };
            settle_write(ctl, &stream, &body, deadline);
        }
        Ok(Request::Metrics) => {
            // The exposition is also served here on the request port
            // (subject to admission); the health listener serves it
            // admission-free for scraping at full overload.
            let body = render_exposition(&ctl.stats.snapshot(), ctl.uptime());
            settle_write(ctl, &stream, &body, deadline);
        }
        Ok(Request::Path { seed, src, dst, id }) => {
            let route_started = Instant::now();
            if !cfg.work.is_zero() {
                // Simulated service time: lets tests and the load sweep
                // drive the server past capacity deterministically.
                std::thread::sleep(
                    cfg.work
                        .min(deadline.saturating_duration_since(Instant::now())),
                );
            }
            if Instant::now() >= deadline {
                ctl.stats.settle(Counter::DeadlineExceeded);
                let _ = wire::write_line(
                    &stream,
                    &wire::format_err_line_with_id(ErrorKind::DeadlineExceeded, id.as_deref(), ""),
                    Instant::now() + Duration::from_millis(100),
                );
                return;
            }
            // The seed travels in the request, so the answer is a pure
            // function of (mesh, router, seed, src, dst) — stateless,
            // horizontally shardable, and bit-reproducible. The trace
            // ID is echoed, never mixed into the RNG.
            let mut rng = StdRng::seed_from_u64(seed);
            let routed = router.select_path(&src, &dst, &mut rng);
            ctl.stats
                .record_phase(Phase::RouteCompute, elapsed_us(route_started));
            let body =
                wire::format_path_line_with_id(&routed.path, router.mesh().dim(), id.as_deref());
            settle_write(ctl, &stream, &body, deadline);
        }
        Err(detail) => {
            // Echo an ID even on a bad request when one is salvageable
            // from the line, so the client can correlate the rejection.
            let id = salvage_id(&line);
            ctl.stats.settle(Counter::BadRequest);
            let _ = wire::write_line(
                &stream,
                &wire::format_err_line_with_id(ErrorKind::BadRequest, id.as_deref(), &detail),
                deadline,
            );
        }
    }
}

/// Pulls a valid `id=<token>` out of a request line that failed to
/// parse, so the rejection can still be correlated client-side.
fn salvage_id(line: &str) -> Option<String> {
    line.split_ascii_whitespace()
        .filter_map(|tok| tok.strip_prefix("id="))
        .find(|id| wire::valid_request_id(id))
        .map(str::to_string)
}

/// Writes a success response and settles the request: `completed` when
/// the bytes made it out, `io_errors` when the peer was gone. The write
/// itself is the reply-write phase.
fn settle_write(ctl: &Control, stream: &TcpStream, body: &str, deadline: Instant) {
    let write_started = Instant::now();
    match wire::write_line(stream, body, deadline) {
        Ok(()) => {
            ctl.stats
                .record_phase(Phase::ReplyWrite, elapsed_us(write_started));
            ctl.stats.settle(Counter::Completed);
        }
        Err(_) => ctl.stats.settle(Counter::IoError),
    }
}

/// The background stats flusher: appends one `{"type":"serve_stats"}`
/// JSONL line per interval to `stats_path` (only when something
/// changed), plus a final line at drain. A crash therefore loses at
/// most one interval of telemetry; everything before it is already on
/// disk.
fn flusher_loop(queue: &Bounded<Job>, cfg: &ServeConfig, ctl: &Control) {
    let (Some(every), Some(path)) = (cfg.stats_every, cfg.stats_path.as_ref()) else {
        return;
    };
    let mut file = match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("serve: stats flusher cannot open {}: {e}", path.display());
            return;
        }
    };
    let mut last_digest: Option<(u64, u64, u64)> = None;
    let mut next_flush = Instant::now() + every;
    loop {
        let draining = ctl.drain_until.get().is_some() && queue.is_empty();
        if Instant::now() >= next_flush || draining {
            next_flush = Instant::now() + every;
            let snap = ctl.stats.snapshot();
            let digest = (
                snap.accepted,
                snap.settled() + snap.health_probes,
                snap.phases.iter().map(|(_, h)| h.count).sum(),
            );
            if last_digest != Some(digest) {
                last_digest = Some(digest);
                let line = serve_stats_json(&snap, ctl.uptime());
                if writeln!(file, "{line}").is_err() {
                    return; // disk gone; stop burning the crew slot
                }
                let _ = file.flush();
            }
            if draining {
                return;
            }
        }
        std::thread::sleep(POLL.min(every));
    }
}

/// One flushed snapshot as a JSONL object (cumulative, not a delta on
/// the wire — deltas are trivially derivable and cumulative lines stay
/// meaningful when an interval is lost to a crash).
fn serve_stats_json(snap: &StatsSnapshot, uptime: Duration) -> String {
    let mut obj = Json::obj();
    obj.set("type", "serve_stats").set(
        "uptime_ms",
        uptime.as_millis().min(u128::from(u64::MAX)) as u64,
    );
    for (name, value) in snap.obs_counters() {
        obj.set(name, value);
    }
    obj.set("serve_queue_depth", snap.queue_depth)
        .set("serve_in_flight", snap.in_flight)
        .set("serve_connections", snap.connections)
        .set("serve_max_queue_depth", snap.max_queue_depth);
    for (phase, hist) in &snap.phases {
        obj.set(
            format!("phase_{phase}_us"),
            oblivion_obs::histogram_json("histogram", phase, hist),
        );
    }
    obj.to_string()
}

/// The dedicated probe listener: single-threaded, admission-free, with
/// aggressively short timeouts so a stalled prober cannot wedge it for
/// long. Runs until the main queue is closed and drained, so probes
/// still answer (READY → `ERR SHUTTING_DOWN`) during the drain window.
/// `METRICS` is served here precisely because it bypasses admission:
/// the telemetry stays scrapeable when the request port is shedding.
fn health_loop(listener: &TcpListener, queue: &Bounded<Job>, cfg: &ServeConfig, ctl: &Control) {
    let probe_budget = Duration::from_millis(250);
    loop {
        // Probes keep answering through the drain window (READY says
        // `ERR SHUTTING_DOWN`); the loop exits with the crew once the
        // acceptor has stamped the drain and the backlog is gone.
        if ctl.drain_until.get().is_some() && queue.is_empty() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                ctl.stats.health_probe();
                let deadline = Instant::now() + probe_budget;
                let _ = stream.set_nodelay(true);
                let reply = match wire::read_line(&stream, 64, deadline) {
                    Ok(line) => match line.trim() {
                        "HEALTH" => {
                            let snap = ctl.stats.snapshot();
                            format!(
                                "OK healthy accepted={} completed={} shed={} queue_depth={}\n",
                                snap.accepted,
                                snap.completed,
                                snap.shed_overloaded,
                                queue.len()
                            )
                        }
                        "READY" => {
                            if ctl.shutdown_requested(cfg) {
                                wire::format_err_line(ErrorKind::ShuttingDown, "")
                            } else {
                                "OK ready\n".to_string()
                            }
                        }
                        "METRICS" => render_exposition(&ctl.stats.snapshot(), ctl.uptime()),
                        _ => wire::format_err_line(
                            ErrorKind::BadRequest,
                            "health port accepts HEALTH|READY|METRICS",
                        ),
                    },
                    Err(_) => wire::format_err_line(ErrorKind::BadRequest, "no probe line"),
                };
                let _ = wire::write_line(&stream, &reply, deadline);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}
